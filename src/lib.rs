//! # GreFar — energy- and fairness-aware geo-distributed job scheduling
//!
//! This is the facade crate of the `grefar` workspace, a full reproduction of
//! *"Provably-Efficient Job Scheduling for Energy and Fairness in
//! Geographically Distributed Data Centers"* (Ren, He, Xu — ICDCS 2012).
//! It re-exports the workspace crates under stable module names:
//!
//! * [`types`] — domain vocabulary (server classes, job classes, accounts,
//!   states, decisions, configuration),
//! * [`lp`] — the dense two-phase simplex LP solver substrate,
//! * [`convex`] — Frank–Wolfe / projected-subgradient convex toolkit,
//! * [`cluster`] — data-center fleets, availability processes, energy model,
//! * [`trace`] — electricity-price and Cosmos-like workload generators,
//! * [`core`] — the GreFar scheduler, baselines and Theorem 1 machinery,
//! * [`faults`] — seeded fault-injection plans (outages, price spikes,
//!   arrival bursts, solver squeezes) for resilience testing,
//! * [`ingest`] — the unreliable-feed model: seeded feed disturbances,
//!   retry/backoff/circuit-breaker resilient clients, and staleness-bounded
//!   state estimation for stale-state scheduling,
//! * [`sim`] — the discrete-time simulator and experiment runner,
//! * [`obs`] — the structured telemetry layer (observers, JSONL export,
//!   timing histograms); see `Simulation::run_with_observer`.
//!
//! # Quickstart
//!
//! ```
//! use grefar::prelude::*;
//!
//! // The paper's evaluation scenario: 3 data centers, 4 organizations.
//! let scenario = PaperScenario::default();
//! let config = scenario.config().clone();
//!
//! // GreFar with cost-delay parameter V = 7.5, no fairness term.
//! let scheduler = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).unwrap();
//!
//! // Simulate 48 hours.
//! let mut sim = Simulation::new(config, scenario.into_inputs(48), Box::new(scheduler));
//! let report = sim.run();
//! assert!(report.average_energy_cost() >= 0.0);
//! ```

pub use grefar_cluster as cluster;
pub use grefar_convex as convex;
pub use grefar_core as core;
pub use grefar_faults as faults;
pub use grefar_ingest as ingest;
pub use grefar_lp as lp;
pub use grefar_obs as obs;
pub use grefar_sim as sim;
pub use grefar_trace as trace;
pub use grefar_types as types;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use grefar_core::{
        Always, FairnessFunction, GreFar, GreFarParams, QueueState, Scheduler, TStepLookahead,
    };
    pub use grefar_sim::{PaperScenario, Simulation, SimulationReport};
    pub use grefar_trace::{PriceModel, WorkloadModel};
    pub use grefar_types::{
        Account, AccountId, DataCenterId, DataCenterState, Decision, Grid, JobClass, JobTypeId,
        ServerClass, ServerClassId, Slot, SystemConfig, SystemState, Tariff,
    };
}
