//! The energy-fairness frontier: sweeping the energy-fairness parameter β
//! on the paper scenario, with both the paper's quadratic-deviation
//! fairness function (3) and the α-fair alternative of footnote 5.
//!
//! Run with: `cargo run --release --example fairness_tradeoff`

use grefar::core::AlphaFair;
use grefar::prelude::*;
use grefar::sim::sweep;

fn main() {
    let scenario = PaperScenario::default().with_seed(11);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 30);

    // Part 1: the β frontier with the paper's fairness function.
    let betas = [0.0, 10.0, 50.0, 100.0, 500.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = betas
        .iter()
        .map(|&beta| {
            let g = GreFar::new(&config, GreFarParams::new(7.5, beta)).expect("valid");
            (format!("beta={beta}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    println!("quadratic-deviation fairness (paper eq. (3)), V = 7.5\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "beta", "avg_energy", "fairness", "share1", "share2", "share3", "share4"
    );
    for ((_, r), &beta) in reports.iter().zip(&betas) {
        println!(
            "{:>8} {:>12.2} {:>12.4} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            beta,
            r.average_energy_cost(),
            r.average_fairness(),
            r.average_account_share(0),
            r.average_account_share(1),
            r.average_account_share(2),
            r.average_account_share(3),
        );
    }
    println!(
        "(γ targets are {:?}; larger β pulls the realized shares toward them)",
        config.gammas()
    );

    // Part 2: α-fair utilities as the fairness function.
    println!("\nalpha-fair utilities (footnote 5), beta = 100, V = 7.5\n");
    println!(
        "{:>8} {:>12} {:>12}",
        "alpha", "avg_energy", "quad_fairness"
    );
    for alpha in [0.5, 1.0, 2.0] {
        let scheduler = GreFar::with_fairness(
            &config,
            GreFarParams::new(7.5, 100.0),
            Box::new(AlphaFair::new(alpha, 1e-3)),
        )
        .expect("valid");
        let report = Simulation::new(config.clone(), inputs.clone(), Box::new(scheduler)).run();
        println!(
            "{:>8} {:>12.2} {:>12.4}",
            alpha,
            report.average_energy_cost(),
            report.average_fairness(),
        );
    }
    println!("\n(the reported fairness column is always the paper's quadratic score, so");
    println!(" rows are comparable across fairness functions)");
}
