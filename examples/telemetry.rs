//! Telemetry: instrument a simulation run with the `grefar-obs` layer.
//!
//! Streams every structured event to `telemetry.jsonl` while aggregating
//! counters and timing histograms in memory, then prints the aggregate
//! summary and re-parses the file to demonstrate the JSONL round-trip.
//!
//! Run with: `cargo run --example telemetry`

use grefar::obs::json::{self, JsonValue};
use grefar::obs::{JsonlSink, MemoryObserver, Tee};
use grefar::prelude::*;

fn main() {
    let scenario = PaperScenario::default().with_seed(2012);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(200);
    let scheduler = GreFar::new(&config, GreFarParams::new(7.5, 300.0)).expect("valid params");
    let mut sim = Simulation::new(config, inputs, Box::new(scheduler));

    // Fan the event stream out to a JSONL file and an in-memory aggregator.
    let path = std::env::temp_dir().join("grefar_telemetry.jsonl");
    let mut memory = MemoryObserver::new();
    let mut sink = JsonlSink::create(&path).expect("create telemetry file");
    let mut tee = Tee::new(&mut memory, &mut sink);
    let report = sim.run_with_observer(&mut tee);
    sink.flush().expect("flush telemetry file");
    assert_eq!(sink.io_errors(), 0);

    println!("scheduler       : {}", report.scheduler);
    println!("avg energy cost : {:.3}", report.average_energy_cost());
    println!("events recorded : {}", memory.total_events());
    print!("{}", memory.summary());

    // The emitted file is plain JSONL: one flat JSON object per line, which
    // the bundled parser (or any JSON tool) reads back.
    let text = std::fs::read_to_string(&path).expect("read telemetry file");
    let events = json::parse_lines(&text).expect("every line parses");
    let fw_iterations: Vec<f64> = events
        .iter()
        .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some("grefar.decide"))
        .filter_map(|e| e.get("fw_iterations").and_then(JsonValue::as_f64))
        .collect();
    let mean = fw_iterations.iter().sum::<f64>() / fw_iterations.len() as f64;
    println!(
        "\nparsed {} events back from {}",
        events.len(),
        path.display()
    );
    println!("mean Frank-Wolfe iterations per slot: {mean:.1}");
}
