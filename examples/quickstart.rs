//! Quickstart: simulate one week of the paper's scenario under GreFar and
//! print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use grefar::prelude::*;

fn main() {
    // The §VI-A evaluation setup: three data centers (Table I), four
    // organizations (fairness weights 40/30/15/15), hourly prices and a
    // Cosmos-like workload — all reproducible from one seed.
    let scenario = PaperScenario::default().with_seed(7);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 7);

    // GreFar with cost-delay parameter V = 7.5 and fairness weight β = 100.
    let scheduler = GreFar::new(&config, GreFarParams::new(7.5, 100.0)).expect("valid parameters");

    let report = Simulation::new(config.clone(), inputs, Box::new(scheduler)).run();

    println!("scheduler           : {}", report.scheduler);
    println!("simulated hours     : {}", report.horizon);
    println!("avg energy cost     : {:.2}", report.average_energy_cost());
    println!(
        "avg fairness score  : {:.4} (0 is ideal)",
        report.average_fairness()
    );
    for i in 0..report.num_data_centers() {
        println!(
            "{}: avg work {:.1}/h, avg job delay {:.2} h",
            config.data_centers()[i].name(),
            report.average_work_per_dc(i),
            report.average_dc_delay(i),
        );
    }
    println!(
        "jobs completed      : {}",
        report.completions.completed_total
    );
    println!(
        "mean sojourn        : {:.2} h",
        report.completions.mean_sojourn
    );
    println!(
        "max queue observed  : {:.0} jobs",
        report.max_queue_length()
    );
}
