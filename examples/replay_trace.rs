//! Replaying recorded traces: export the synthetic price/workload traces
//! to CSV, reload them, and drive a simulation from the files — the same
//! path a user of *real* FERC/CAISO prices or an internal job log would
//! take (see `grefar_trace::import`).
//!
//! Run with: `cargo run --release --example replay_trace`

use grefar::cluster::{AvailabilityProcess, FullAvailability};
use grefar::prelude::*;
use grefar::sim::SimulationInputs;
use grefar::trace::import::{
    load_price_trace, load_workload_trace, save_price_trace, save_workload_trace,
};
use grefar::trace::{PriceTrace, ReplayPrice, ReplayWorkload, WorkloadTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hours = 24 * 14;
    let scenario = PaperScenario::default().with_seed(3);
    let config = scenario.config().clone();

    // 1. Record one realization of the synthetic processes.
    let mut price_models = scenario.price_processes();
    let price_trace = PriceTrace::generate(&mut price_models, hours, scenario.seed());
    let mut workload_model = scenario.workload();
    let workload_trace = WorkloadTrace::generate(&mut workload_model, hours, scenario.seed());

    // 2. Export to CSV — the interchange format for real market/job data.
    let dir = std::env::temp_dir().join(format!("grefar-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let price_path = dir.join("prices.csv");
    let work_path = dir.join("workload.csv");
    save_price_trace(&price_path, &price_trace)?;
    save_workload_trace(&work_path, &workload_trace)?;
    println!(
        "exported {} and {}",
        price_path.display(),
        work_path.display()
    );

    // 3. Reload and rebuild simulation inputs from the files alone.
    let prices = load_price_trace(&price_path)?;
    let workload = load_workload_trace(&work_path)?;
    let mut price_procs: Vec<Box<dyn PriceModel + Send>> = (0..3)
        .map(|i| Box::new(ReplayPrice::new(prices.rates(i))) as Box<dyn PriceModel + Send>)
        .collect();
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> = (0..3)
        .map(|_| Box::new(FullAvailability) as Box<dyn AvailabilityProcess + Send>)
        .collect();
    let mut workload_proc = ReplayWorkload::new(
        (0..hours)
            .map(|t| workload.arrivals(t as u64).to_vec())
            .collect(),
    );
    let inputs = SimulationInputs::generate(
        &config,
        hours,
        0, // replays consume no randomness
        &mut price_procs,
        &mut availability,
        &mut workload_proc,
    );

    // 4. Simulate against the replayed inputs.
    let grefar = GreFar::new(&config, GreFarParams::new(7.5, 0.0))?;
    let report = Simulation::new(config, inputs, Box::new(grefar)).run();
    println!(
        "replayed {} hours: avg energy {:.2}, delay DC#1 {:.2} h, {} jobs completed",
        hours,
        report.average_energy_cost(),
        report.average_dc_delay(0),
        report.completions.completed_total,
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
