//! Failure injection: a full-day outage of the cheapest data center.
//!
//! Availability is one of the arbitrary time-varying processes GreFar is
//! provably robust to (§III-A.1) — no assumption of stationarity. This
//! example schedules a 24-hour total outage of DC #2 (the most
//! energy-efficient site) in the middle of the run and shows GreFar
//! absorbing it: work shifts to the surviving sites and the queues drain
//! back down afterwards.
//!
//! Run with: `cargo run --release --example failure_injection`

use grefar::cluster::{AvailabilityProcess, OutageSchedule, UniformAvailability};
use grefar::prelude::*;
use grefar::sim::SimulationInputs;

fn main() {
    let scenario = PaperScenario::default().with_seed(23);
    let config = scenario.config().clone();

    let hours = 24 * 12;
    let outage_slots: (u64, u64) = (24 * 6, 24 * 7); // day 6
    let outage = (outage_slots.0 as usize, outage_slots.1 as usize);

    // The paper scenario's processes, with DC #2's availability wrapped in
    // an outage schedule.
    let mut prices = scenario.price_processes();
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> = vec![
        Box::new(UniformAvailability::new(0.92, 1.0)),
        Box::new(OutageSchedule::new(
            Box::new(UniformAvailability::new(0.92, 1.0)),
            vec![outage_slots],
        )),
        Box::new(UniformAvailability::new(0.92, 1.0)),
    ];
    let mut workload = scenario.workload();
    let inputs = SimulationInputs::generate(
        &config,
        hours,
        scenario.seed(),
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let scheduler = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid");
    let report = Simulation::new(config.clone(), inputs, Box::new(scheduler)).run();

    println!(
        "24-hour outage of dc-2 during day 6 (hours {}..{})\n",
        outage.0, outage.1
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "day", "work_dc1", "work_dc2", "work_dc3", "queue_total", "energy"
    );
    for day in 0..hours / 24 {
        let lo = day * 24;
        let hi = lo + 24;
        let day_mean = |xs: &[f64]| xs[lo..hi].iter().sum::<f64>() / 24.0;
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>10.1}{}",
            day,
            day_mean(report.work_per_dc[0].instant()),
            day_mean(report.work_per_dc[1].instant()),
            day_mean(report.work_per_dc[2].instant()),
            day_mean(&report.queue_total),
            day_mean(report.energy.instant()),
            if lo == outage.0 { "   <- outage" } else { "" },
        );
    }

    let outage_day = outage.0 / 24;
    let w2_before: f64 = report.work_per_dc[1].instant()[..outage.0]
        .iter()
        .sum::<f64>()
        / outage.0 as f64;
    let w2_during: f64 = report.work_per_dc[1].instant()[outage.0..outage.1]
        .iter()
        .sum::<f64>()
        / 24.0;
    println!(
        "\ndc-2 served {w2_before:.1} work/h before the outage and {w2_during:.1} during it; \
         day {outage_day}'s load was absorbed by dc-1/dc-3 and the backlog,\n\
         and queues returned to normal within the following days"
    );
    assert!(w2_during < 1e-9, "no work can run in a fully-down site");
}
