//! Usage-dependent (convex) electricity pricing — the §III-A.2 extension:
//! "the electricity cost can be an increasing and convex function of the
//! energy consumption".
//!
//! A single data center is billed on a two-tier tariff: the first block of
//! energy each hour is cheap, everything above costs 2.5×. GreFar's exact
//! greedy slot solver handles the convex tariff natively (it serves work
//! tier-by-tier while the marginal value exceeds the marginal cost), so a
//! larger `V` makes it spread work across hours to stay inside the cheap
//! block — peak shaving.
//!
//! Run with: `cargo run --release --example convex_tariff`

use grefar::cluster::{AvailabilityProcess, FullAvailability};
use grefar::prelude::*;
use grefar::sim::{sweep, SimulationInputs};
use grefar::trace::{ConstantPrice, CosmosLikeWorkload, JobArrivalSpec, TieredPrice};

fn main() {
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("solo", vec![80.0])
        .account("tenant", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(40.0)
                .with_max_route(60.0)
                .with_max_process(80.0),
        )
        .build()
        .expect("valid configuration");

    // Flat base price 0.4; energy beyond 12 units/hour costs 1.0.
    let mut prices: Vec<Box<dyn PriceModel + Send>> =
        vec![Box::new(TieredPrice::new(ConstantPrice(0.4), 12.0, 2.5))];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(FullAvailability)];
    // Strongly diurnal arrivals: peak hours far exceed the cheap block.
    let mut workload =
        CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(10.0, 0.9, 14.0, 40.0)], 24.0);
    let inputs = SimulationInputs::generate(
        &config,
        24 * 30,
        4,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let vs = [0.0, 4.0, 15.0, 60.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    println!("peak shaving under a two-tier convex tariff (cheap block: 12 energy/h)\n");
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12}",
        "V", "avg_energy", "premium_frac", "avg_delay", "max_queue"
    );
    for (&v, (_, r)) in vs.iter().zip(&reports) {
        // Fraction of all energy billed at the premium rate (power per work
        // is 1 here, so hourly energy = hourly work).
        let work = r.work_per_dc[0].instant();
        let premium: f64 = work.iter().map(|&w| (w - 12.0).max(0.0)).sum();
        let total: f64 = work.iter().sum();
        println!(
            "{:>6} {:>12.3} {:>14.3} {:>12.2} {:>12.0}",
            v,
            r.average_energy_cost(),
            premium / total,
            r.average_dc_delay(0),
            r.max_queue_length(),
        );
    }

    let flat_like = reports.first().expect("runs exist");
    let shaved = reports.last().expect("runs exist");
    println!(
        "\nwith V = {} the scheduler defers peak-hour work into the cheap block:\n\
         energy cost {:.2} -> {:.2} at {:.1} h average delay",
        vs[vs.len() - 1],
        flat_like.1.average_energy_cost(),
        shaved.1.average_energy_cost(),
        shaved.1.average_dc_delay(0),
    );
}
