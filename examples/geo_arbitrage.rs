//! Geographic + temporal price arbitrage on a custom two-region system.
//!
//! Two data centers with *anti-phased* daily electricity prices: when the
//! east coast is expensive the west coast is cheap, and vice versa. The
//! example sweeps the cost-delay parameter `V` and prints the
//! energy-vs-delay tradeoff curve — the knob Theorem 1 provides.
//!
//! Run with: `cargo run --release --example geo_arbitrage`

use grefar::cluster::{AvailabilityProcess, FullAvailability};
use grefar::prelude::*;
use grefar::sim::{sweep, SimulationInputs};
use grefar::trace::{CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec};

fn main() {
    // Two identical data centers, one job type that can run in either.
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("east", vec![60.0])
        .data_center("west", vec![60.0])
        .account("tenant", 1.0)
        .job_class(
            JobClass::new(2.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                .with_max_arrivals(14.0)
                .with_max_route(14.0)
                .with_max_process(40.0),
        )
        .build()
        .expect("valid configuration");

    // Anti-phased prices: east peaks at noon, west twelve hours later.
    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![
        Box::new(DiurnalPriceModel::new(0.40, 0.15, 24.0, 6.0).with_noise(0.5, 0.02)),
        Box::new(DiurnalPriceModel::new(0.40, 0.15, 24.0, 18.0).with_noise(0.5, 0.02)),
    ];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(FullAvailability), Box::new(FullAvailability)];
    let mut workload =
        CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(5.0, 0.4, 14.0, 14.0)], 24.0);
    let inputs = SimulationInputs::generate(
        &config,
        24 * 40,
        99,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let vs = [0.0, 1.0, 2.5, 5.0, 10.0, 20.0, 40.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    println!("energy-delay tradeoff with anti-phased regional prices\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "V", "avg_energy", "delay_east", "delay_west", "max_queue"
    );
    for (&v, (_, r)) in vs.iter().zip(&reports) {
        println!(
            "{:>6} {:>12.3} {:>12.2} {:>12.2} {:>12.0}",
            v,
            r.average_energy_cost(),
            r.average_dc_delay(0),
            r.average_dc_delay(1),
            r.max_queue_length(),
        );
    }
    let first = reports.first().expect("runs exist");
    let last = reports.last().expect("runs exist");
    let saving = 100.0 * (1.0 - last.1.average_energy_cost() / first.1.average_energy_cost());
    println!(
        "\nwaiting out expensive hours (V={}) saves {saving:.1}% energy vs serving \
         immediately (V={}), at {:.1} h extra average delay",
        vs[vs.len() - 1],
        vs[0],
        last.1.completions.mean_sojourn - first.1.completions.mean_sojourn,
    );
}
