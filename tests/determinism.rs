//! Reproducibility: every layer of the stack is a pure function of its
//! seed, and parallel sweeps return bit-identical results to serial runs.

use grefar::prelude::*;
use grefar::sim::sweep;

fn run_once(seed: u64, v: f64, beta: f64) -> SimulationReport {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 6);
    let g = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid");
    Simulation::new(config, inputs, Box::new(g)).run()
}

#[test]
fn same_seed_same_report() {
    let a = run_once(100, 7.5, 0.0);
    let b = run_once(100, 7.5, 0.0);
    assert_eq!(a, b, "identical seeds must yield identical reports");
}

#[test]
fn same_seed_same_report_with_fairness_path() {
    // The Frank–Wolfe path must be exactly deterministic too.
    let a = run_once(101, 7.5, 100.0);
    let b = run_once(101, 7.5, 100.0);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1, 7.5, 0.0);
    let b = run_once(2, 7.5, 0.0);
    assert_ne!(
        a.energy.instant(),
        b.energy.instant(),
        "different seeds must produce different traces"
    );
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let scenario = PaperScenario::default().with_seed(7);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 6);

    let serial: Vec<SimulationReport> = [0.1, 7.5]
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            Simulation::new(config.clone(), inputs.clone(), Box::new(g)).run()
        })
        .collect();

    let runs: Vec<(String, Box<dyn Scheduler>)> = [0.1, 7.5]
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let parallel = sweep::run_all(&config, &inputs, runs);

    for (s, (_, p)) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "parallel execution changed a result");
    }
}

#[test]
fn inputs_are_identical_across_schedulers() {
    // The whole point of freezing inputs: GreFar and Always must observe
    // the very same prices.
    let scenario = PaperScenario::default().with_seed(13);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 4);
    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "g".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid")),
        ),
        ("a".into(), Box::new(Always::new(&config))),
    ];
    let reports = sweep::run_all(&config, &inputs, runs);
    assert_eq!(
        reports[0].1.prices, reports[1].1.prices,
        "schedulers must see identical price traces"
    );
    assert_eq!(
        reports[0].1.arriving_work, reports[1].1.arriving_work,
        "schedulers must see identical arrivals"
    );
}
