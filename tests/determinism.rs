//! Reproducibility: every layer of the stack is a pure function of its
//! seed, and parallel sweeps return bit-identical results to serial runs.

use grefar::obs::JsonlSink;
use grefar::prelude::*;
use grefar::sim::sweep;
use grefar_report::{diff_streams, DiffOptions};

fn run_once(seed: u64, v: f64, beta: f64) -> SimulationReport {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 6);
    let g = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid");
    Simulation::new(config, inputs, Box::new(g)).run()
}

#[test]
fn same_seed_same_report() {
    let a = run_once(100, 7.5, 0.0);
    let b = run_once(100, 7.5, 0.0);
    assert_eq!(a, b, "identical seeds must yield identical reports");
}

#[test]
fn same_seed_same_report_with_fairness_path() {
    // The Frank–Wolfe path must be exactly deterministic too.
    let a = run_once(101, 7.5, 100.0);
    let b = run_once(101, 7.5, 100.0);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1, 7.5, 0.0);
    let b = run_once(2, 7.5, 0.0);
    assert_ne!(
        a.energy.instant(),
        b.energy.instant(),
        "different seeds must produce different traces"
    );
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let scenario = PaperScenario::default().with_seed(7);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 6);

    let serial: Vec<SimulationReport> = [0.1, 7.5]
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            Simulation::new(config.clone(), inputs.clone(), Box::new(g)).run()
        })
        .collect();

    let runs: Vec<(String, Box<dyn Scheduler>)> = [0.1, 7.5]
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let parallel = sweep::run_all(&config, &inputs, runs);

    for (s, (_, p)) in serial.iter().zip(&parallel) {
        assert_eq!(s, p, "parallel execution changed a result");
    }
}

#[test]
fn telemetry_event_stream_is_deterministic() {
    // Two identical seeded runs must emit semantically identical event
    // streams; only the `_us` wall-clock fields may differ between runs.
    // The comparison is `grefar-report diff`'s — the same tool CI runs
    // against real telemetry files.
    fn stream(seed: u64) -> String {
        let scenario = PaperScenario::default().with_seed(seed);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(24 * 3);
        let g = GreFar::new(&config, GreFarParams::new(7.5, 100.0)).expect("valid");
        let mut sim = Simulation::new(config, inputs, Box::new(g));
        let mut sink = JsonlSink::new(Vec::new());
        sim.run_with_observer(&mut sink);
        String::from_utf8(sink.into_inner()).expect("utf8")
    }
    let a = stream(42);
    let b = stream(42);
    let same = diff_streams(&a, &b, &DiffOptions::default()).expect("parsable streams");
    assert!(same.is_match(), "replay diverged:\n{}", same.render());

    let c = stream(43);
    let different = diff_streams(&a, &c, &DiffOptions::default()).expect("parsable streams");
    assert!(
        !different.is_match(),
        "different seeds must yield different event streams"
    );
}

#[test]
fn inputs_are_identical_across_schedulers() {
    // The whole point of freezing inputs: GreFar and Always must observe
    // the very same prices.
    let scenario = PaperScenario::default().with_seed(13);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 4);
    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "g".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid")),
        ),
        ("a".into(), Box::new(Always::new(&config))),
    ];
    let reports = sweep::run_all(&config, &inputs, runs);
    assert_eq!(
        reports[0].1.prices, reports[1].1.prices,
        "schedulers must see identical price traces"
    );
    assert_eq!(
        reports[0].1.arriving_work, reports[1].1.arriving_work,
        "schedulers must see identical arrivals"
    );
}
