//! Smoke tests for the facade crate's public surface: the prelude, the
//! module re-exports, and a miniature end-to-end flow touching every layer.

use grefar::prelude::*;

#[test]
fn prelude_covers_the_common_workflow() {
    // types
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("dc", vec![10.0])
        .account("org", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(3.0)
                .with_max_route(6.0)
                .with_max_process(10.0),
        )
        .build()
        .expect("valid");

    // core
    let queues = QueueState::new(&config);
    assert_eq!(queues.total(), 0.0);
    let mut grefar = GreFar::new(&config, GreFarParams::new(1.0, 0.0)).expect("valid");
    let state = SystemState::new(0, vec![DataCenterState::new(vec![10.0], Tariff::flat(0.2))]);
    let decision: Decision = grefar.decide(&state, &queues);
    assert!(decision.is_nonnegative());

    // sim via the paper scenario
    let scenario = PaperScenario::default().with_seed(1);
    let cfg = scenario.config().clone();
    let report: SimulationReport = Simulation::new(
        cfg.clone(),
        scenario.into_inputs(48),
        Box::new(Always::new(&cfg)),
    )
    .run();
    assert_eq!(report.horizon, 48);
}

#[test]
fn module_reexports_are_wired() {
    // Each workspace crate is reachable under its facade module name.
    let _ = grefar::lp::LpProblem::minimize(1);
    let _ = grefar::convex::FwOptions::default();
    let _ = grefar::cluster::FullAvailability;
    let _ = grefar::trace::ConstantPrice(0.1);
    let _ = grefar::core::QuadraticDeviation;
    let _ = grefar::faults::FaultPlan::parse("").expect("empty plan is valid");
    let _ = grefar::sim::PaperScenario::default();
    let _ = grefar::types::Grid::zeros(1, 1);
}

#[test]
fn lookahead_and_theory_reachable_from_facade() {
    use grefar::core::theory::TheoryBounds;
    use grefar::core::TStepLookahead;

    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("dc", vec![10.0])
        .account("org", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(2.0)
                .with_max_route(4.0)
                .with_max_process(8.0),
        )
        .build()
        .expect("valid");
    let bounds = TheoryBounds::new(&config, 1.0, 1.0, 0.0);
    assert!(bounds.queue_bound(5.0).is_finite());

    let la = TStepLookahead::new(2).expect("valid");
    let states = vec![
        SystemState::new(0, vec![DataCenterState::new(vec![10.0], Tariff::flat(0.5))]),
        SystemState::new(1, vec![DataCenterState::new(vec![10.0], Tariff::flat(0.1))]),
    ];
    let arrivals = vec![vec![2.0], vec![0.0]];
    let plan = la.plan(&config, &states, &arrivals).expect("feasible");
    assert!(plan.average_cost > 0.0);
}
