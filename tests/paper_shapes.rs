//! Integration tests for the paper's headline experimental claims, on a
//! shortened horizon of the §VI-A scenario. These are the qualitative
//! *shapes* of Figs. 2–5 and §VI-B.1's work split; EXPERIMENTS.md records
//! the full-length quantitative comparison.

use grefar::prelude::*;
use grefar::sim::sweep;

const HOURS: usize = 24 * 15;

fn reports_for_vs(vs: &[f64], beta: f64, seed: u64) -> Vec<SimulationReport> {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    sweep::run_all(&config, &inputs, runs)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Fig. 2(a): average energy cost decreases monotonically in V.
#[test]
fn energy_cost_decreases_in_v() {
    let reports = reports_for_vs(&[0.1, 2.5, 7.5, 20.0], 0.0, 1);
    let costs: Vec<f64> = reports.iter().map(|r| r.average_energy_cost()).collect();
    for w in costs.windows(2) {
        assert!(
            w[1] <= w[0] + 0.15,
            "energy cost must not increase with V: {costs:?}"
        );
    }
    // And the spread is material (> 10 %).
    assert!(
        costs[0] / costs[costs.len() - 1] > 1.10,
        "V sweep saves too little energy: {costs:?}"
    );
}

/// Fig. 2(b)(c): average delays increase monotonically in V, and V = 0.1
/// behaves like immediate scheduling (delay ≈ 1).
#[test]
fn delay_increases_in_v() {
    let reports = reports_for_vs(&[0.1, 2.5, 7.5, 20.0], 0.0, 1);
    for dc in 0..2 {
        let delays: Vec<f64> = reports.iter().map(|r| r.average_dc_delay(dc)).collect();
        for w in delays.windows(2) {
            assert!(
                w[1] >= w[0] - 0.05,
                "delay in DC {dc} must grow with V: {delays:?}"
            );
        }
    }
    assert!(
        (reports[0].average_dc_delay(0) - 1.0).abs() < 0.1,
        "V = 0.1 should serve almost immediately"
    );
}

/// §VI-B.1: more work is scheduled to data centers with lower average
/// energy cost per unit work (Table I: DC2 < DC1 < DC3).
#[test]
fn work_split_follows_energy_cost_efficiency() {
    let reports = reports_for_vs(&[7.5], 0.0, 2);
    let r = &reports[0];
    let (w1, w2, w3) = (
        r.average_work_per_dc(0),
        r.average_work_per_dc(1),
        r.average_work_per_dc(2),
    );
    assert!(
        w2 > w1,
        "DC2 (cheapest/work) must get the most work: {w1} {w2} {w3}"
    );
    assert!(
        w1 > w3,
        "DC3 (priciest/work) must get the least work: {w1} {w2} {w3}"
    );
}

/// Fig. 3: β at the calibrated operating point (300 in our units; the
/// paper's "β = 100") achieves much better fairness than β = 0 at a marginal
/// energy increase, and (the paper's observed side effect) no larger delay.
#[test]
fn beta_improves_fairness_at_marginal_energy_cost() {
    let scenario = PaperScenario::default().with_seed(3);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "b0".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid")),
        ),
        (
            "b300".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(7.5, 300.0)).expect("valid")),
        ),
    ];
    let reports = sweep::run_all(&config, &inputs, runs);
    let (b0, b300) = (&reports[0].1, &reports[1].1);

    assert!(
        b300.average_fairness() > b0.average_fairness() + 1e-4,
        "beta=300 must improve fairness: {} vs {}",
        b300.average_fairness(),
        b0.average_fairness()
    );
    assert!(
        b300.average_energy_cost() < b0.average_energy_cost() * 1.10,
        "fairness must cost only marginal energy: {} vs {}",
        b300.average_energy_cost(),
        b0.average_energy_cost()
    );
    assert!(
        b300.average_dc_delay(0) <= b0.average_dc_delay(0) + 0.2,
        "the quadratic fairness term encourages resource use, reducing delay"
    );
}

/// Fig. 4: GreFar (V=7.5, calibrated β) beats Always on energy and fairness, at
/// the expense of delay; Always's delay is ≈ 1.
#[test]
fn grefar_beats_always_on_energy_and_fairness() {
    let scenario = PaperScenario::default().with_seed(4);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "grefar".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(7.5, 300.0)).expect("valid")),
        ),
        ("always".into(), Box::new(Always::new(&config))),
    ];
    let reports = sweep::run_all(&config, &inputs, runs);
    let (grefar, always) = (&reports[0].1, &reports[1].1);

    assert!(
        grefar.average_energy_cost() < always.average_energy_cost(),
        "GreFar must save energy: {} vs {}",
        grefar.average_energy_cost(),
        always.average_energy_cost()
    );
    assert!(
        grefar.average_fairness() >= always.average_fairness() - 5e-3,
        "GreFar must be at least as fair: {} vs {}",
        grefar.average_fairness(),
        always.average_fairness()
    );
    assert!(
        grefar.average_dc_delay(0) >= always.average_dc_delay(0),
        "the energy saving is paid in delay"
    );
    assert!(
        (always.average_dc_delay(0) - 1.0).abs() < 0.05,
        "Always's delay should be about one slot, got {}",
        always.average_dc_delay(0)
    );
}

/// Fig. 5's claim, quantified: the work-weighted price GreFar pays in each
/// data center is lower than what Always pays on the same inputs.
#[test]
fn grefar_pays_lower_work_weighted_prices() {
    let scenario = PaperScenario::default().with_seed(5);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "grefar".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid")),
        ),
        ("always".into(), Box::new(Always::new(&config))),
    ];
    let reports = sweep::run_all(&config, &inputs, runs);

    let weighted = |r: &SimulationReport| -> f64 {
        // Across all DCs: Σ work·price / Σ work.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..r.num_data_centers() {
            for (w, p) in r.work_per_dc[i].instant().iter().zip(&r.prices[i]) {
                num += w * p;
                den += w;
            }
        }
        num / den
    };
    let g = weighted(&reports[0].1);
    let a = weighted(&reports[1].1);
    assert!(
        g < a,
        "GreFar's work-weighted price {g} must beat Always's {a}"
    );
}

/// The arrival calibration survives end to end: total served work per slot
/// is close to the ≈ 97 units/hour of §VI-B.1, and the energy cost lands in
/// Fig. 2(a)'s 25–50 band.
#[test]
fn absolute_scales_match_the_paper() {
    let reports = reports_for_vs(&[7.5], 0.0, 6);
    let r = &reports[0];
    let total_work: f64 = (0..3).map(|i| r.average_work_per_dc(i)).sum();
    assert!(
        (85.0..=110.0).contains(&total_work),
        "total work {total_work} out of calibration"
    );
    let energy = r.average_energy_cost();
    assert!(
        (25.0..=50.0).contains(&energy),
        "energy cost {energy} outside Fig. 2(a)'s band"
    );
    let fairness = r.average_fairness();
    assert!(
        (-0.295..=0.0).contains(&fairness),
        "fairness {fairness} outside the feasible band"
    );
}
