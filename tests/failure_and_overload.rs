//! Failure injection and overload behavior: outages, price spikes, and
//! admission control under sustained overload.

use grefar::cluster::{
    AvailabilityProcess, FullAvailability, MarkovAvailability, OutageSchedule, UniformAvailability,
};
use grefar::prelude::*;
use grefar::sim::SimulationInputs;
use grefar::trace::{ConstantPrice, ConstantWorkload, PriceModel, ReplayPrice};

#[test]
fn full_outage_of_one_site_is_absorbed() {
    let scenario = PaperScenario::default().with_seed(31);
    let config = scenario.config().clone();
    let hours = 24 * 8;
    let outage = (24 * 4, 24 * 5);

    let mut prices = scenario.price_processes();
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> = vec![
        Box::new(UniformAvailability::new(0.92, 1.0)),
        Box::new(OutageSchedule::new(
            Box::new(UniformAvailability::new(0.92, 1.0)),
            vec![outage],
        )),
        Box::new(UniformAvailability::new(0.92, 1.0)),
    ];
    let mut workload = scenario.workload();
    let inputs = SimulationInputs::generate(
        &config,
        hours,
        31,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let g = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid");
    let report = Simulation::new(config.clone(), inputs, Box::new(g)).run();

    // No work can run in the downed site.
    let down_range = outage.0 as usize..outage.1 as usize;
    let during: f64 = report.work_per_dc[1].instant()[down_range].iter().sum();
    assert_eq!(during, 0.0, "the downed site must serve nothing");

    // The system keeps serving: the other sites' work rises during the
    // outage day relative to their pre-outage average.
    let pre: f64 = report.work_per_dc[0].instant()[..24 * 4]
        .iter()
        .sum::<f64>()
        / (24.0 * 4.0);
    let dur: f64 = report.work_per_dc[0].instant()[24 * 4..24 * 5]
        .iter()
        .sum::<f64>()
        / 24.0;
    assert!(
        dur > pre,
        "surviving sites must absorb load: {dur} vs {pre}"
    );

    // Queues recover: the final total backlog is not materially above the
    // pre-outage level.
    let pre_q = report.queue_total[24 * 4 - 1];
    let final_q = *report.queue_total.last().expect("non-empty");
    assert!(
        final_q <= pre_q * 2.0 + 50.0,
        "backlog failed to recover: {final_q} vs pre-outage {pre_q}"
    );
}

#[test]
fn price_spike_is_waited_out() {
    // One DC, price 0.2 except a 10-slot spike at 10.0. With a large V
    // GreFar serves (almost) nothing during the spike.
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("solo", vec![50.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(3.0)
                .with_max_route(10.0)
                .with_max_process(50.0),
        )
        .build()
        .expect("valid");
    let mut rates = vec![0.2; 60];
    for r in rates.iter_mut().take(40).skip(30) {
        *r = 10.0;
    }
    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![Box::new(ReplayPrice::new(rates))];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(FullAvailability)];
    let mut workload = ConstantWorkload::new(vec![3.0]);
    let inputs = SimulationInputs::generate(
        &config,
        60,
        1,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let g = GreFar::new(&config, GreFarParams::new(20.0, 0.0)).expect("valid");
    let report = Simulation::new(config.clone(), inputs, Box::new(g)).run();

    let spike_work: f64 = report.work_per_dc[0].instant()[30..40].iter().sum();
    let after_work: f64 = report.work_per_dc[0].instant()[40..50].iter().sum();
    assert!(
        spike_work < 1.0,
        "GreFar should not serve during a 50x price spike, served {spike_work}"
    );
    assert!(
        after_work > 25.0,
        "the deferred backlog must drain right after the spike, got {after_work}"
    );
}

#[test]
fn sustained_overload_with_admission_control_stays_bounded() {
    // Arrivals exceed capacity: 8 jobs/slot of work 1 against capacity 5.
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("tiny", vec![5.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(8.0)
                .with_max_route(20.0)
                .with_max_process(20.0),
        )
        .build()
        .expect("valid");
    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![Box::new(ConstantPrice(0.3))];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(FullAvailability)];
    let mut workload = ConstantWorkload::new(vec![8.0]);
    let inputs = SimulationInputs::generate(
        &config,
        200,
        1,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let g = GreFar::new(&config, GreFarParams::new(1.0, 0.0)).expect("valid");
    let report = Simulation::new(config.clone(), inputs, Box::new(g))
        .with_admission_cap(30.0)
        .run();

    assert!(report.dropped_jobs > 300, "overload must trigger drops");
    // The cap bounds the central queue directly; the local queue holds at
    // most the routed backlog on top of it. Without admission control the
    // total backlog would grow by (8 − 5) jobs every slot (600 by t=200);
    // with it, the total must stabilize near the cap.
    assert!(
        report.max_queue_length() <= 30.0 + 20.0 + 8.0,
        "admission control must bound every queue, saw {}",
        report.max_queue_length()
    );
    let mid = report.queue_total[100];
    let end = *report.queue_total.last().expect("non-empty");
    assert!(
        (end - mid).abs() <= 20.0,
        "backlog must stabilize under admission control: {mid} -> {end}"
    );
    // The served rate equals capacity.
    let served: f64 = report.work_per_dc[0].instant().iter().sum::<f64>() / report.horizon as f64;
    assert!(
        (served - 5.0).abs() < 0.3,
        "must serve at capacity, got {served}"
    );
}

#[test]
fn markov_churn_does_not_break_invariants() {
    // Heavy availability churn: servers failing/repairing constantly.
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("flaky", vec![40.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(6.0)
                .with_max_route(12.0)
                .with_max_process(40.0),
        )
        .build()
        .expect("valid");
    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![Box::new(ConstantPrice(0.3))];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(MarkovAvailability::new(0.2, 0.5))];
    let mut workload = ConstantWorkload::new(vec![6.0]);
    let inputs = SimulationInputs::generate(
        &config,
        400,
        5,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let g = GreFar::new(&config, GreFarParams::new(2.0, 0.0)).expect("valid");
    let report = Simulation::new(config.clone(), inputs, Box::new(g)).run();

    // Stationary capacity ≈ 40·(0.5/0.7) ≈ 28.6 > 6: the system is stable.
    assert!(report.max_queue_length() < 100.0);
    assert!(report.completions.completed_total > 6 * 350);
    assert!(report.energy.instant().iter().all(|&e| e >= 0.0));
}
