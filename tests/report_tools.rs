//! End-to-end coverage for the `grefar-report` toolchain against *real*
//! simulator telemetry: analyze (Theorem 1 occupancy), diff (replay
//! determinism) and bench-gate (BENCH_*.json comparison).

use grefar::obs::JsonlSink;
use grefar::prelude::*;
use grefar::sim::{sweep, theory_obs};
use grefar_report::{bench_gate, diff_streams, Analysis, BenchFile, DiffOptions, TelemetryStream};

/// A labeled two-point V-sweep with `theory.bounds` events, exactly the
/// stream `fig2 --telemetry` writes (smaller horizon).
fn sweep_stream(seed: u64, hours: usize) -> String {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(hours);
    let vs = [0.1, 7.5];
    let mut sink = JsonlSink::new(Vec::new());
    let bounded: Vec<(String, f64, f64)> = vs.iter().map(|&v| (format!("V={v}"), v, 0.0)).collect();
    theory_obs::emit_theory_bounds(&config, &inputs, &bounded, &mut sink)
        .expect("paper scenario is slack");
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    sweep::run_all_observed(&config, &inputs, runs, &mut sink);
    String::from_utf8(sink.into_inner()).expect("utf8")
}

#[test]
fn analyze_checks_theorem_1_on_a_real_run() {
    let stream = TelemetryStream::parse(&sweep_stream(2012, 150)).expect("parsable stream");
    assert_eq!(stream.runs.len(), 2);
    assert_eq!(stream.bounds.len(), 2);

    let analysis = Analysis::from_stream(&stream);
    assert!(
        !analysis.any_bound_exceeded(),
        "the paper scenario must respect Theorem 1(a)"
    );
    for run in &analysis.runs {
        let bound = run.bound.as_ref().expect("every run has matched bounds");
        assert!(
            bound.occupancy_pct < 100.0,
            "run {} occupies {:.1}% of its queue bound",
            run.label,
            bound.occupancy_pct
        );
        assert!(run.slots == 150);
        assert!(run.avg_cost > 0.0);
    }
    let rendered = analysis.render();
    assert!(rendered.contains("[ok]"), "{rendered}");
    assert!(
        rendered.contains("Theorem 1(b) cost-gap table"),
        "{rendered}"
    );
    assert!(
        !rendered.contains(" NO\n"),
        "a run violated its gap bound:\n{rendered}"
    );
}

#[test]
fn diff_accepts_replays_and_rejects_different_seeds() {
    let a = sweep_stream(77, 48);
    let b = sweep_stream(77, 48);
    let same = diff_streams(&a, &b, &DiffOptions::default()).expect("parsable");
    assert!(same.is_match(), "{}", same.render());

    let c = sweep_stream(78, 48);
    let different = diff_streams(&a, &c, &DiffOptions::default()).expect("parsable");
    assert!(!different.is_match(), "different seeds must diverge");
}

#[test]
fn bench_gate_round_trips_the_criterion_json_format() {
    // The exact line format the vendored criterion shim writes with --json.
    let old = "{\"schema\":1,\"event\":\"bench.meta\",\"crate\":\"lp\",\"arch\":\"x86_64\",\
               \"os\":\"linux\",\"family\":\"unix\",\"cpus\":8,\"profile\":\"release\",\
               \"harness\":\"0.5.1\"}\n\
               {\"schema\":1,\"event\":\"bench.case\",\"name\":\"lp/solve/3dc\",\
               \"min_ns\":52100,\"mean_ns\":55000,\"median_ns\":54000,\"samples\":60}\n";
    let file = BenchFile::parse(old).expect("parsable BENCH json");
    assert_eq!(file.cases.len(), 1);

    let report = bench_gate::gate(&file, &file, 0.10);
    assert!(report.passes(), "self-comparison must pass");

    let slower = old.replace("\"min_ns\":52100", "\"min_ns\":99999");
    let new = BenchFile::parse(&slower).expect("parsable");
    assert!(!bench_gate::gate(&file, &new, 0.10).passes());
}
