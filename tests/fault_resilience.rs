//! End-to-end resilience: a faulted run on the paper scenario completes
//! without panicking, tells the truth about it in telemetry (`fault.inject`,
//! `degraded.mode`), recovers its backlog after the fault window closes,
//! and a run killed mid-flight resumes into a telemetry stream the report
//! tooling certifies as identical to the uninterrupted one.

use grefar::faults::FaultPlan;
use grefar::obs::JsonlSink;
use grefar::prelude::*;
use grefar::sim::{Checkpoint, RunPolicy, SimError};
use grefar_report::{diff_streams, Analysis, DiffOptions, TelemetryStream};

const HOURS: usize = 120;
const OUTAGE: &str = "outage:dc=0,start=30,end=40";

fn faulted_sim(seed: u64, plan: &str) -> Simulation {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let g = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid params");
    Simulation::new(config, inputs, Box::new(g))
        .with_fault_plan(FaultPlan::parse(plan).expect("valid plan"))
        .expect("plan fits the paper scenario")
}

fn telemetry_of(sim: &mut Simulation) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    sim.run_with_observer(&mut sink);
    assert_eq!(sink.io_errors(), 0);
    String::from_utf8(sink.into_inner()).expect("utf8")
}

#[test]
fn full_outage_degrades_transparently_and_recovers() {
    let text = telemetry_of(&mut faulted_sim(2012, OUTAGE));
    let stream = TelemetryStream::parse(&text).expect("valid telemetry");
    assert_eq!(stream.runs.len(), 1);
    let run = &stream.runs[0];
    assert_eq!(run.slots.len(), HOURS, "the faulted run must complete");

    // The fault is announced once, at its start slot.
    assert_eq!(run.faults.len(), 1);
    assert_eq!(run.faults[0].kind, "outage");
    assert_eq!((run.faults[0].start, run.faults[0].end), (30, 40));
    assert_eq!(run.faults[0].dc, Some(0));
    assert_eq!(run.faults[0].t, 30);

    // Every slot of the window reports the offline data center.
    let offline: Vec<u64> = run
        .degraded
        .iter()
        .filter(|d| d.reason == "dc_offline" && d.dc == Some(0))
        .map(|d| d.t)
        .collect();
    assert_eq!(offline, (30..40).collect::<Vec<u64>>());

    // Backlog recovers: some post-window slot returns to the pre-fault level.
    let baseline = run
        .slots
        .iter()
        .rev()
        .find(|s| s.t < 30)
        .expect("pre-fault slots")
        .queue_max;
    let peak = run
        .slots
        .iter()
        .filter(|s| (30..40).contains(&s.t))
        .map(|s| s.queue_max)
        .fold(0.0, f64::max);
    assert!(
        peak > baseline,
        "an outage must build backlog ({peak} vs {baseline})"
    );
    assert!(
        run.slots
            .iter()
            .any(|s| s.t >= 40 && s.queue_max <= baseline + 1e-9),
        "backlog must drain back to the pre-fault level after the window"
    );

    // The analyzer surfaces all of it as a resilience section.
    let analysis = Analysis::from_stream(&stream);
    let resilience = analysis.runs[0]
        .resilience
        .as_ref()
        .expect("faulted runs get a resilience section");
    assert_eq!(resilience.faults.len(), 1);
    let impact = &resilience.faults[0];
    assert!(impact.overshoot > 0.0);
    assert!(impact.recovery_slots.is_some(), "recovery must be detected");
    let rendered = analysis.render();
    assert!(
        rendered.contains("resilience"),
        "render carries the section:\n{rendered}"
    );
    assert!(
        rendered.contains("fault outage"),
        "render names the fault:\n{rendered}"
    );
}

#[test]
fn killed_faulted_run_resumes_into_an_identical_stream() {
    // Reference: the same faulted run, uninterrupted.
    let full = telemetry_of(&mut faulted_sim(7, OUTAGE));

    let dir = std::env::temp_dir().join(format!("grefar-fault-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ck_path = dir.join("run.ckpt.jsonl");

    // Crash half: kill at slot 60 (inside nothing, after the outage window).
    let mut sink = JsonlSink::new(Vec::new());
    let policy = RunPolicy::new(&ck_path, 25).with_kill_at(60);
    match faulted_sim(7, OUTAGE).run_resumable(&mut sink, &policy) {
        Err(SimError::Killed { slot: 60, .. }) => {}
        other => panic!("expected kill at slot 60, got {other:?}"),
    }

    // Recovery half: resume from the checkpoint, appending to the same
    // buffer — resume skips `run.start`, so the result is one well-formed
    // stream.
    let ck = Checkpoint::load(&ck_path).expect("checkpoint readable");
    let buf = sink.into_inner();
    let mut sink = JsonlSink::new(buf);
    faulted_sim(7, OUTAGE)
        .resume(ck, &mut sink, None)
        .expect("resume completes");
    let stitched = String::from_utf8(sink.into_inner()).expect("utf8");

    // The report tooling must certify the stitched stream as identical to
    // the uninterrupted one (timing fields excepted).
    let diff = diff_streams(&full, &stitched, &DiffOptions::default()).expect("both parse");
    assert!(diff.is_match(), "kill+resume diverged:\n{}", diff.render());

    std::fs::remove_dir_all(&dir).ok();
}
