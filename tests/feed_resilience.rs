//! End-to-end feed resilience: GreFar scheduling on *estimated* state from
//! lossy feeds completes without panicking, the realized queues respect the
//! degraded Theorem 1(a) certificate (plain bound (23) plus `S·q_max` for
//! the profile's admissible staleness `S`), identical seeds reproduce a
//! byte-identical telemetry stream, and a perfect feed profile leaves the
//! run byte-identical to one with no feed layer at all.

use grefar::core::theory::{slackness_delta_trace, TheoryBounds};
use grefar::ingest::FeedProfile;
use grefar::obs::JsonlSink;
use grefar::prelude::*;
use grefar_report::{diff_streams, DiffOptions, TelemetryStream};

const HOURS: usize = 24 * 10;
const V: f64 = 7.5;
/// Price drops, an availability-feed outage, and a short retry budget: the
/// scheduler sees stale prices and stale capacity for long stretches.
const LOSSY: &str = "drop:feed=price,p=0.4,start=0,end=240;\
                     outage:feed=avail,dc=1,start=50,end=80;\
                     policy:seed=11,retries=1";

fn feed_sim(seed: u64, profile: Option<&str>) -> Simulation {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let g = GreFar::new(&config, GreFarParams::new(V, 0.0)).expect("valid params");
    let sim = Simulation::new(config, inputs, Box::new(g));
    match profile {
        Some(spec) => sim
            .with_feed_profile(FeedProfile::parse(spec).expect("valid profile"))
            .expect("profile fits the paper scenario"),
        None => sim,
    }
}

fn telemetry_of(sim: &mut Simulation) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    sim.run_with_observer(&mut sink);
    assert_eq!(sink.io_errors(), 0);
    String::from_utf8(sink.into_inner()).expect("utf8")
}

/// The headline robustness claim: under bounded staleness `S` the realized
/// peak queue stays within `V·C3/δ + S·q_max` — the plain Theorem 1(a)
/// bound degraded by at most one maximal arrival burst per stale slot.
#[test]
fn stale_state_run_respects_the_degraded_queue_bound() {
    let scenario = PaperScenario::default().with_seed(2012);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);
    let delta = slackness_delta_trace(&config, &inputs.capacities(&config), inputs.all_arrivals())
        .expect("the paper scenario is admissible");
    let price_max = (0..config.num_data_centers())
        .flat_map(|i| (0..inputs.horizon()).map(move |t| (i, t)))
        .map(|(i, t)| inputs.state(t).data_center(i).price())
        .fold(0.0f64, f64::max);
    let bounds = TheoryBounds::new(&config, delta, price_max, 0.0);

    let profile = FeedProfile::parse(LOSSY).expect("valid profile");
    let stale_slots = profile.staleness_bound(config.num_data_centers());
    assert!(stale_slots > 0, "the lossy profile must certify staleness");
    let plain = bounds.queue_bound(V);
    let degraded = bounds.stale_queue_bound(V, stale_slots);
    assert!(degraded > plain, "staleness must widen the bound");

    let mut sim = feed_sim(2012, Some(LOSSY));
    let text = telemetry_of(&mut sim);
    let stream = TelemetryStream::parse(&text).expect("valid telemetry");
    let run = &stream.runs[0];
    assert_eq!(run.slots.len(), HOURS, "the lossy run must complete");
    assert!(
        !run.stale.is_empty(),
        "the profile must actually force stale slots"
    );

    let observed = run.slots.iter().map(|s| s.queue_max).fold(0.0, f64::max);
    assert!(
        observed <= degraded,
        "peak queue {observed} exceeds the degraded Theorem 1(a) bound \
         {degraded} (= {plain} + {stale_slots} stale slots)"
    );
}

/// The `feed.*` / `state.stale` lines of a telemetry stream — the events
/// that record disturbances, retries, breaker transitions and estimates.
/// None of them carry timing fields, so they must be bit-reproducible.
fn feed_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| l.contains("\"event\":\"feed.") || l.contains("\"event\":\"state.stale\""))
        .collect()
}

/// Identical seeds — in the scenario *and* the feed policy — reproduce the
/// run exactly: the parsed streams match (timing fields excepted) and the
/// feed-event lines are byte for byte identical.
#[test]
fn identical_seeds_reproduce_the_feed_run_byte_for_byte() {
    let first = telemetry_of(&mut feed_sim(7, Some(LOSSY)));
    let second = telemetry_of(&mut feed_sim(7, Some(LOSSY)));
    assert_eq!(
        feed_lines(&first),
        feed_lines(&second),
        "feed disturbances must be deterministic"
    );
    assert!(
        !feed_lines(&first).is_empty(),
        "the lossy profile must emit feed events"
    );
    let diff = diff_streams(&first, &second, &DiffOptions::default()).expect("both parse");
    assert!(diff.is_match(), "replay diverged:\n{}", diff.render());

    // The stream really exercises the feed layer: fetch failures and stale
    // state are on record, and every stale estimate is age-bounded.
    let stream = TelemetryStream::parse(&first).expect("valid telemetry");
    let run = &stream.runs[0];
    assert!(run.feed_fetches.iter().any(|f| f.outcome != "ok"));
    let cap = FeedProfile::parse(LOSSY).expect("valid").staleness_bound(3);
    for s in &run.stale {
        assert!(
            s.max_age <= cap,
            "slot {}: stale age {} above the certified cap {cap}",
            s.t,
            s.max_age
        );
    }
}

/// A perfect feed profile is the identity: the stream matches a run with
/// no feed layer at all (timing fields excepted) and contains not a single
/// feed event.
#[test]
fn perfect_feeds_are_indistinguishable_from_no_feeds() {
    let plain = telemetry_of(&mut feed_sim(23, None));
    let perfect = {
        let scenario = PaperScenario::default().with_seed(23);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(HOURS);
        let g = GreFar::new(&config, GreFarParams::new(V, 0.0)).expect("valid params");
        let mut sim = Simulation::new(config, inputs, Box::new(g))
            .with_feed_profile(FeedProfile::perfect())
            .expect("perfect profile always fits");
        telemetry_of(&mut sim)
    };
    assert!(feed_lines(&plain).is_empty());
    assert!(
        feed_lines(&perfect).is_empty(),
        "a perfect feed layer must be invisible"
    );
    let diff = diff_streams(&plain, &perfect, &DiffOptions::default()).expect("both parse");
    assert!(
        diff.is_match(),
        "perfect feeds changed the run:\n{}",
        diff.render()
    );
}
