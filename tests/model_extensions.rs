//! Integration tests for the paper's model extensions: the parallelism
//! constraint (§III-B), convex usage-dependent tariffs (§III-A.2), and
//! alternative fairness functions (§III-C footnote 5).

use grefar::cluster::{AvailabilityProcess, FullAvailability};
use grefar::core::AlphaFair;
use grefar::prelude::*;
use grefar::sim::SimulationInputs;
use grefar::trace::{ConstantPrice, ConstantWorkload, PriceModel, TieredPrice};

fn single_dc_config(h_max: f64) -> SystemConfig {
    SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("dc", vec![100.0])
        .account("org", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(10.0)
                .with_max_route(50.0)
                .with_max_process(h_max),
        )
        .build()
        .expect("valid")
}

fn flat_inputs(config: &SystemConfig, hours: usize, rate: f64, price: f64) -> SimulationInputs {
    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![Box::new(ConstantPrice(price))];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(FullAvailability)];
    let mut workload = ConstantWorkload::new(vec![rate]);
    SimulationInputs::generate(
        config,
        hours,
        1,
        &mut prices,
        &mut availability,
        &mut workload,
    )
}

/// §III-B: "the maximum number of servers that can be used to process a job
/// simultaneously is upper bounded" — `h^max` caps per-slot service, so a
/// backlog drains at most `h^max` jobs per slot even with idle capacity.
#[test]
fn parallelism_constraint_caps_service_rate() {
    let config = single_dc_config(3.0); // at most 3 job-units served per slot
    let inputs = flat_inputs(&config, 60, 10.0, 0.01); // overload vs h^max
    let g = GreFar::new(&config, GreFarParams::new(0.1, 0.0)).expect("valid");
    let report = Simulation::new(config.clone(), inputs, Box::new(g)).run();
    // Service rate is pinned at the parallelism cap despite 100 idle servers.
    for (t, w) in report.work_per_dc[0].instant().iter().enumerate().skip(2) {
        assert!(*w <= 3.0 + 1e-9, "slot {t} served {w} > h^max");
    }
    let served: f64 = report.work_per_dc[0].instant().iter().sum();
    assert!(
        (served / report.horizon as f64 - 3.0).abs() < 0.2,
        "cap should be saturated under overload"
    );
}

/// §III-A.2: with a convex tiered tariff, a larger V spreads work to stay
/// inside the cheap tier (peak shaving), lowering the premium-tier share.
#[test]
fn convex_tariff_peak_shaving() {
    let config = single_dc_config(100.0);
    let hours = 24 * 20;
    let make_inputs = || {
        let mut prices: Vec<Box<dyn PriceModel + Send>> =
            vec![Box::new(TieredPrice::new(ConstantPrice(0.3), 6.0, 3.0))];
        let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
            vec![Box::new(FullAvailability)];
        let mut workload = grefar::trace::CosmosLikeWorkload::new(
            vec![grefar::trace::JobArrivalSpec::diurnal(5.0, 0.9, 14.0, 20.0)],
            24.0,
        );
        SimulationInputs::generate(
            &config,
            hours,
            3,
            &mut prices,
            &mut availability,
            &mut workload,
        )
    };
    let premium_fraction = |report: &SimulationReport| -> f64 {
        let work = report.work_per_dc[0].instant();
        let premium: f64 = work.iter().map(|&w| (w - 6.0).max(0.0)).sum();
        premium / work.iter().sum::<f64>()
    };
    let eager = Simulation::new(
        config.clone(),
        make_inputs(),
        Box::new(GreFar::new(&config, GreFarParams::new(0.0, 0.0)).expect("valid")),
    )
    .run();
    let patient = Simulation::new(
        config.clone(),
        make_inputs(),
        Box::new(GreFar::new(&config, GreFarParams::new(40.0, 0.0)).expect("valid")),
    )
    .run();
    assert!(
        premium_fraction(&patient) < premium_fraction(&eager) - 0.05,
        "V must shave the premium tier: {} vs {}",
        premium_fraction(&patient),
        premium_fraction(&eager)
    );
    assert!(patient.average_energy_cost() < eager.average_energy_cost());
}

/// Footnote 5: the scheduler is generic over the fairness function — an
/// α-fair GreFar runs end to end and still produces sane reports.
#[test]
fn alpha_fair_scheduler_runs_end_to_end() {
    let scenario = PaperScenario::default().with_seed(8);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 5);
    let scheduler = GreFar::with_fairness(
        &config,
        GreFarParams::new(7.5, 50.0),
        Box::new(AlphaFair::new(1.0, 1e-3)),
    )
    .expect("valid");
    let report = Simulation::new(config, inputs, Box::new(scheduler)).run();
    assert!(report.average_energy_cost() > 0.0);
    assert!(report.completions.completed_total > 0);
    assert!(report.scheduler.contains("GreFar"));
}
