//! Integration tests for Theorem 1: the queue bound (23), its O(V)
//! scaling, the slackness certificate (20)–(22), and the O(1/V) optimality
//! gap (24) against the T-step lookahead policy.

use grefar::cluster::{AvailabilityProcess, UniformAvailability};
use grefar::core::invariant;
use grefar::core::theory::{slackness_delta, slackness_delta_trace, TheoryBounds};
use grefar::core::TStepLookahead;
use grefar::prelude::*;
use grefar::sim::{sweep, SimulationInputs};
use grefar::trace::{CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec, PriceModel};

const HOURS: usize = 24 * 15;

#[test]
fn paper_scenario_is_slack_and_queue_bound_holds() {
    let scenario = PaperScenario::default().with_seed(17);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);

    // The sporadic-burst workload requires the per-slot certificate: the
    // static a^max-product witness is far too conservative for it.
    let delta = slackness_delta_trace(&config, &inputs.capacities(&config), inputs.all_arrivals())
        .expect("the paper scenario must satisfy the slackness conditions");
    assert!(delta > 0.1, "slack too small: {delta}");

    let price_max = (0..3)
        .flat_map(|i| (0..inputs.horizon()).map(move |t| (i, t)))
        .map(|(i, t)| inputs.state(t).data_center(i).price())
        .fold(0.0f64, f64::max);
    let bounds = TheoryBounds::new(&config, delta, price_max, 0.0);

    let vs = [0.1, 2.5, 7.5, 20.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    for (&v, (_, report)) in vs.iter().zip(sweep::run_all(&config, &inputs, runs)) {
        let observed = report.max_queue_length();
        let bound = bounds.queue_bound(v);
        assert!(
            observed <= bound,
            "V={v}: observed {observed} exceeds the Theorem 1(a) bound {bound}"
        );
    }
}

#[test]
fn queue_growth_is_at_most_linear_in_v() {
    let scenario = PaperScenario::default().with_seed(18);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(HOURS);

    let vs = [5.0, 10.0, 20.0, 40.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let maxima: Vec<f64> = sweep::run_all(&config, &inputs, runs)
        .into_iter()
        .map(|(_, r)| r.max_queue_length())
        .collect();
    // Doubling V should grow the max queue by at most ~2× (plus slack for
    // the additive arrival term).
    for w in maxima.windows(2) {
        assert!(
            w[1] <= 2.5 * w[0] + 10.0,
            "super-linear queue growth: {maxima:?}"
        );
    }
}

/// A small two-DC system where the frame LPs are cheap: the cost gap
/// between GreFar and the optimal 24-step lookahead shrinks as V grows
/// (Theorem 1(b)) and stays below the analytic bound.
#[test]
fn lookahead_gap_shrinks_with_v() {
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("a", vec![25.0])
        .data_center("b", vec![25.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                .with_max_arrivals(6.0)
                .with_max_route(6.0)
                .with_max_process(15.0),
        )
        .build()
        .expect("valid");

    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![
        Box::new(DiurnalPriceModel::new(0.40, 0.12, 24.0, 6.0).with_noise(0.4, 0.02)),
        Box::new(DiurnalPriceModel::new(0.44, 0.12, 24.0, 18.0).with_noise(0.4, 0.02)),
    ];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> = vec![
        Box::new(UniformAvailability::new(0.95, 1.0)),
        Box::new(UniformAvailability::new(0.95, 1.0)),
    ];
    let mut workload =
        CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(2.5, 0.5, 14.0, 6.0)], 24.0);
    let horizon = 24 * 10;
    let inputs = SimulationInputs::generate(
        &config,
        horizon,
        3,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let lookahead = TStepLookahead::new(24).expect("valid frame");
    let plan = lookahead
        .plan(&config, inputs.states(), inputs.all_arrivals())
        .expect("feasible");

    let vs = [1.0, 5.0, 25.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let gaps: Vec<f64> = sweep::run_all(&config, &inputs, runs)
        .into_iter()
        .map(|(_, r)| r.average_energy_cost() - plan.average_cost)
        .collect();

    assert!(
        gaps[2] < gaps[0],
        "the optimality gap must shrink from V=1 to V=25: {gaps:?}"
    );
    // Against the analytic bound: gap ≤ (B + D(T−1))/V, computed with the
    // certificate delta.
    let min_cap = inputs.min_capacity(&config);
    let delta = slackness_delta(&config, &min_cap).expect("slack");
    let bounds = TheoryBounds::new(&config, delta, 0.7, 0.0);
    for (&v, &gap) in vs.iter().zip(&gaps) {
        let analytic = bounds.cost_gap_bound(v, 24);
        assert!(
            gap <= analytic,
            "V={v}: gap {gap} exceeds analytic bound {analytic}"
        );
    }
}

/// The lookahead planner itself: with full knowledge it never does worse
/// than GreFar at any V on the same inputs (it is the benchmark).
#[test]
fn lookahead_lower_bounds_grefar() {
    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("solo", vec![20.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(5.0)
                .with_max_route(8.0)
                .with_max_process(20.0),
        )
        .build()
        .expect("valid");
    let mut prices: Vec<Box<dyn PriceModel + Send>> = vec![Box::new(
        DiurnalPriceModel::new(0.5, 0.2, 24.0, 6.0).with_noise(0.3, 0.03),
    )];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(grefar::cluster::FullAvailability)];
    let mut workload =
        CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(2.0, 0.4, 14.0, 5.0)], 24.0);
    let inputs = SimulationInputs::generate(
        &config,
        24 * 8,
        9,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    let plan = TStepLookahead::new(24)
        .expect("valid")
        .plan(&config, inputs.states(), inputs.all_arrivals())
        .expect("feasible");

    for v in [0.5, 5.0, 50.0] {
        let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
        let report = Simulation::new(config.clone(), inputs.clone(), Box::new(g)).run();
        assert!(
            report.average_energy_cost() >= plan.average_cost - 1e-6,
            "V={v}: online cost {} beat the offline benchmark {}",
            report.average_energy_cost(),
            plan.average_cost
        );
    }
}

/// The queue-bound invariant checker against both kinds of trace: on a
/// Theorem-1-admissible one (positive slack `δ`) the whole GreFar run
/// stays under `V·C3/δ` and the checker passes every slot; on an
/// inadmissible one (arrivals beyond capacity, no certificate) the same
/// checker fires once the queues outgrow the would-be bound.
#[test]
fn queue_bound_checker_separates_admissible_from_inadmissible() {
    let scenario = PaperScenario::default().with_seed(23);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24 * 6);
    let delta = slackness_delta_trace(&config, &inputs.capacities(&config), inputs.all_arrivals())
        .expect("the paper scenario is admissible");
    let v = 5.0;
    let bound = TheoryBounds::new(&config, delta, 1.0, 0.0).queue_bound(v);

    // Admissible trace: replay GreFar slot by slot, checking every state.
    let mut grefar = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
    let mut queues = QueueState::new(&config);
    for t in 0..inputs.horizon() {
        let decision = grefar.decide(inputs.state(t), &queues);
        queues.apply(&decision, inputs.arrivals(t));
        invariant::check_queue_bound(&queues, bound)
            .unwrap_or_else(|e| panic!("admissible trace broke the bound at slot {t}: {e}"));
    }

    // Inadmissible trace: a system whose arrivals exceed its capacity has
    // no slackness certificate, and its queues cross any finite bound.
    let overloaded = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("tiny", vec![2.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(5.0)
                .with_max_route(8.0)
                .with_max_process(10.0),
        )
        .build()
        .expect("valid");
    assert!(
        slackness_delta(&overloaded, &[2.0]).is_none(),
        "an overloaded system must not certify slack"
    );
    // The bound one would wrongly assume by pretending slack δ = 1: without
    // an actual certificate, Theorem 1(a) gives no protection and the
    // checker must eventually fire against it.
    let hypothetical = TheoryBounds::new(&overloaded, 1.0, 0.5, 0.0).queue_bound(v);
    let mut grefar = GreFar::new(&overloaded, GreFarParams::new(v, 0.0)).expect("valid");
    let mut queues = QueueState::new(&overloaded);
    let state = SystemState::new(0, vec![DataCenterState::new(vec![2.0], Tariff::flat(0.5))]);
    let mut fired = false;
    // Total backlog grows by ≥ 3/slot (5 arrivals vs capacity 2) across 2
    // queues, so this horizon is guaranteed to cross the bound.
    let slots = hypothetical.ceil() as usize + 100;
    for _ in 0..slots {
        let decision = grefar.decide(&state, &queues);
        queues.apply(&decision, &[5.0]); // 5 arrivals vs capacity 2
        if let Err(e) = invariant::check_queue_bound(&queues, hypothetical) {
            assert!(matches!(
                e,
                invariant::InvariantViolation::QueueBound { .. }
            ));
            fired = true;
            break;
        }
    }
    assert!(fired, "checker never fired on the inadmissible trace");
}

/// In the default build, `with_queue_bound` records the bound without
/// enforcing it: a run that grossly exceeds a tiny bound still completes.
/// (The enforcing counterpart lives below, feature-gated.)
#[cfg(not(feature = "strict-invariants"))]
#[test]
fn queue_bound_is_not_enforced_by_default() {
    let scenario = PaperScenario::default().with_seed(29);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(48);
    let g = GreFar::new(&config, GreFarParams::new(20.0, 0.0)).expect("valid");
    let report = Simulation::new(config, inputs, Box::new(g))
        .with_queue_bound(1e-3)
        .run();
    assert_eq!(report.horizon, 48);
}

/// Under `strict-invariants`, the simulator aborts the moment a declared
/// queue bound is crossed — end-to-end proof the enforcement is wired in.
#[cfg(feature = "strict-invariants")]
#[test]
#[should_panic(expected = "strict-invariants")]
fn queue_bound_is_enforced_under_strict_invariants() {
    let scenario = PaperScenario::default().with_seed(29);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(48);
    let g = GreFar::new(&config, GreFarParams::new(20.0, 0.0)).expect("valid");
    let _ = Simulation::new(config, inputs, Box::new(g))
        .with_queue_bound(1e-3)
        .run();
}
