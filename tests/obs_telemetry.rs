//! The telemetry layer against the simulator: JSONL round-trips, event
//! coverage, quantile parity with the simulator's own statistics, and the
//! guarantee that observation never changes results.

use grefar::obs::json::{self, JsonValue};
use grefar::obs::{Histogram, JsonlSink, MemoryObserver, NullObserver, Tee};
use grefar::prelude::*;
use grefar::sim::stats;

fn jsonl_stream(seed: u64, hours: usize, v: f64, beta: f64) -> String {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(hours);
    let g = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid");
    let mut sim = Simulation::new(config, inputs, Box::new(g));
    let mut sink = JsonlSink::new(Vec::new());
    sim.run_with_observer(&mut sink);
    assert_eq!(sink.io_errors(), 0);
    String::from_utf8(sink.into_inner()).expect("utf8")
}

#[test]
fn histogram_quantiles_match_sim_stats() {
    // Same estimator (linear interpolation, type 7) on both sides, so the
    // telemetry histograms are directly comparable to the report quantiles.
    let samples: Vec<f64> = (0..257)
        .map(|i| ((i * 7919) % 1009) as f64 * 0.25)
        .collect();
    let mut hist = Histogram::new();
    for &s in &samples {
        hist.record(s);
    }
    let ours = hist.quantiles();
    let theirs = stats::Quantiles::from_samples(&samples);
    assert_eq!(ours.count, theirs.count);
    assert_eq!(ours.p50, theirs.p50);
    assert_eq!(ours.p90, theirs.p90);
    assert_eq!(ours.p95, theirs.p95);
    assert_eq!(ours.p99, theirs.p99);
    assert_eq!(ours.max, theirs.max);
}

#[test]
fn simulation_jsonl_parses_and_covers_schema() {
    let hours = 48;
    let text = jsonl_stream(2012, hours, 7.5, 0.0);
    let events = json::parse_lines(&text).expect("every line is valid JSON");

    // run.start; per hour one slot, one soak.ledger conservation record,
    // one grefar.decide and one decision.explain per data center (the
    // paper scenario has 3); run.end.
    assert_eq!(events.len(), 2 + 6 * hours);
    let name = |e: &std::collections::BTreeMap<String, JsonValue>| {
        e.get("event")
            .and_then(JsonValue::as_str)
            .expect("event name")
            .to_string()
    };
    assert_eq!(name(&events[0]), "run.start");
    assert_eq!(name(events.last().unwrap()), "run.end");
    assert_eq!(events.iter().filter(|e| name(e) == "slot").count(), hours);
    assert_eq!(
        events.iter().filter(|e| name(e) == "grefar.decide").count(),
        hours
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| name(e) == "decision.explain")
            .count(),
        3 * hours
    );

    // Spot-check fields of the first slot event.
    let slot = events.iter().find(|e| name(e) == "slot").unwrap();
    for key in [
        "t",
        "queue_central",
        "queue_local",
        "queue_max",
        "energy",
        "fairness",
        "arrivals",
        "dropped",
        "wall_us",
    ] {
        assert!(slot.contains_key(key), "slot event missing {key}");
    }
    let decide = events.iter().find(|e| name(e) == "grefar.decide").unwrap();
    for key in [
        "objective",
        "drift",
        "penalty",
        "solver",
        "fw_iterations",
        "wall_us",
    ] {
        assert!(decide.contains_key(key), "grefar.decide missing {key}");
    }
    assert_eq!(
        decide.get("solver").and_then(JsonValue::as_str),
        Some("greedy"),
        "beta = 0 must take the greedy solver"
    );
}

#[test]
fn fairness_path_reports_frank_wolfe() {
    let text = jsonl_stream(5, 12, 7.5, 100.0);
    let events = json::parse_lines(&text).expect("valid JSONL");
    let solver_used: Vec<&str> = events
        .iter()
        .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some("grefar.decide"))
        .map(|e| e.get("solver").and_then(JsonValue::as_str).expect("solver"))
        .collect();
    assert!(!solver_used.is_empty());
    assert!(solver_used.iter().all(|&s| s == "frank_wolfe"));
}

#[test]
fn observation_does_not_change_results() {
    let run = |observed: bool| -> SimulationReport {
        let scenario = PaperScenario::default().with_seed(99);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(48);
        let g = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid");
        let mut sim = Simulation::new(config, inputs, Box::new(g));
        if observed {
            let mut memory = MemoryObserver::new();
            let mut sink = JsonlSink::new(Vec::new());
            let mut tee = Tee::new(&mut memory, &mut sink);
            sim.run_with_observer(&mut tee)
        } else {
            sim.run_with_observer(&mut NullObserver)
        }
    };
    assert_eq!(run(true), run(false), "telemetry must be read-only");
}

#[test]
fn memory_observer_aggregates_the_run() {
    let scenario = PaperScenario::default().with_seed(3);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(24);
    let g = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid");
    let mut sim = Simulation::new(config, inputs, Box::new(g));
    let mut memory = MemoryObserver::new();
    sim.run_with_observer(&mut memory);

    assert_eq!(memory.event_count("run.start"), 1);
    assert_eq!(memory.event_count("run.end"), 1);
    assert_eq!(memory.event_count("slot"), 24);
    assert_eq!(memory.counter("slots"), 24);
    let wall = memory.histogram("slot.wall_us").expect("slot timings");
    assert_eq!(wall.count(), 24);
    assert!(wall.quantiles().max > 0.0);
    assert!(!memory.summary().is_empty());
}
