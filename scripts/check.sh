#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline
# Repo-specific static analysis (see crates/verify and DESIGN.md,
# "Correctness tooling"): lexical rules plus the cross-file event-schema
# and hot-path-alloc passes. --deny-warnings makes every non-allowed
# finding — warning or error — fail the gate.
./target/release/grefar-verify --deny-warnings
./target/release/grefar-verify deps-audit --deny-warnings
cargo test -q -p grefar-verify --offline
# The machine-readable output must self-diff clean through the
# lint-diff baseline tool (grefar-report lint-diff).
lint_tmp="$(mktemp -d)"
./target/release/grefar-verify --format json > "$lint_tmp/lint.json"
./target/release/grefar-report lint-diff "$lint_tmp/lint.json" "$lint_tmp/lint.json" \
    | grep -q 'no change' || { echo "lint-diff self-comparison failed" >&2; exit 1; }
rm -rf "$lint_tmp"
echo "static analysis ok"
# The whole suite again with the runtime paper-invariant checks compiled in.
cargo test -q --offline --features strict-invariants

# Telemetry tooling end to end (see EXPERIMENTS.md, "Reading telemetry"):
# a real fig2 V-sweep must analyze clean against the Theorem 1(a) queue
# bound, and an identical-seed replay must diff as semantically identical.
report_tmp="$(mktemp -d)"
trap 'rm -rf "$report_tmp"' EXIT
./target/release/fig2 --hours 48 --telemetry "$report_tmp/run_a.jsonl" > /dev/null
./target/release/grefar-report analyze "$report_tmp/run_a.jsonl" --assert-bound > /dev/null
./target/release/fig2 --hours 48 --telemetry "$report_tmp/run_b.jsonl" > /dev/null
./target/release/grefar-report diff "$report_tmp/run_a.jsonl" "$report_tmp/run_b.jsonl" > /dev/null
# Resilience (see EXPERIMENTS.md, "Fault injection"): a run with a full
# data-center outage must complete, report degraded slots, and still hold
# the Theorem 1(a) bound; a run killed mid-flight (exit 3) must resume from
# its checkpoint into a telemetry stream the diff tool certifies as
# identical to the uninterrupted one.
outage='outage:dc=0,start=30,end=40'
./target/release/grefar_cli --hours 500 --faults "$outage" \
    --telemetry "$report_tmp/faulted.jsonl" > /dev/null
./target/release/grefar-report analyze "$report_tmp/faulted.jsonl" --assert-bound \
    | grep -q 'degraded slot' || { echo "resilience section missing" >&2; exit 1; }
if ./target/release/grefar_cli --hours 500 --faults "$outage" \
    --telemetry "$report_tmp/cut.jsonl" \
    --checkpoint "$report_tmp/run.ckpt.jsonl" --checkpoint-every 50 --kill-at 250 \
    > /dev/null 2>&1; then
    echo "killed run should exit non-zero" >&2; exit 1
else
    [ $? -eq 3 ] || { echo "killed run should exit 3" >&2; exit 1; }
fi
./target/release/grefar_cli --hours 500 --faults "$outage" \
    --telemetry "$report_tmp/cut.jsonl" \
    --checkpoint "$report_tmp/run.ckpt.jsonl" --resume > /dev/null
./target/release/grefar-report diff \
    "$report_tmp/faulted.jsonl" "$report_tmp/cut.jsonl" > /dev/null
echo "resilience ok"

# Chaos soak (see EXPERIMENTS.md, "Unreliable feeds & the staleness
# sweep"): a 500-slot run on lossy feeds must complete, report feed
# health, and hold the *degraded* Theorem 1(a) bound; an identical-seed
# replay must reproduce the feed.* event stream byte for byte.
lossy='drop:feed=price,p=0.4,start=0,end=500;outage:feed=avail,dc=1,start=50,end=80;policy:seed=11,retries=1'
./target/release/grefar_cli --hours 500 --feeds "$lossy" \
    --telemetry "$report_tmp/feeds_a.jsonl" > /dev/null
./target/release/grefar-report analyze "$report_tmp/feeds_a.jsonl" --assert-bound \
    | grep -q 'feed health' || { echo "feed-health section missing" >&2; exit 1; }
./target/release/grefar_cli --hours 500 --feeds "$lossy" \
    --telemetry "$report_tmp/feeds_b.jsonl" > /dev/null
grep -e '"event":"feed\.' -e '"event":"state.stale"' "$report_tmp/feeds_a.jsonl" > "$report_tmp/feeds_a.events"
grep -e '"event":"feed\.' -e '"event":"state.stale"' "$report_tmp/feeds_b.jsonl" > "$report_tmp/feeds_b.events"
[ -s "$report_tmp/feeds_a.events" ] || { echo "lossy run emitted no feed events" >&2; exit 1; }
cmp -s "$report_tmp/feeds_a.events" "$report_tmp/feeds_b.events" \
    || { echo "feed event stream is not deterministic" >&2; exit 1; }
echo "chaos soak ok"

# Observability plane (see EXPERIMENTS.md, "Profiling & live metrics"): a
# metrics-enabled sweep must produce a lint-clean Prometheus exposition
# that the offline rebuild reproduces, and the logical-clock span profile
# must fold byte-identically across identical-seed runs.
./target/release/fig2 --hours 48 --telemetry "$report_tmp/obs.jsonl" \
    --metrics-snapshot "$report_tmp/obs.prom" --profile logical > /dev/null
./target/release/grefar-report promlint "$report_tmp/obs.prom" > /dev/null
grep -q 'grefar_slots_total' "$report_tmp/obs.prom" \
    || { echo "metrics snapshot missing slot counter" >&2; exit 1; }
./target/release/grefar-report metrics "$report_tmp/obs.jsonl" > /dev/null
./target/release/grefar-report profile "$report_tmp/obs.jsonl" \
    --folded "$report_tmp/obs_a.folded" > /dev/null
./target/release/fig2 --hours 48 --telemetry "$report_tmp/obs_b.jsonl" \
    --profile logical > /dev/null
./target/release/grefar-report profile "$report_tmp/obs_b.jsonl" \
    --folded "$report_tmp/obs_b.folded" > /dev/null
cmp -s "$report_tmp/obs_a.folded" "$report_tmp/obs_b.folded" \
    || { echo "folded span profile is not deterministic" >&2; exit 1; }
echo "observability ok"

# Decision provenance, trace export and alerting (see EXPERIMENTS.md,
# "Explaining a run"): the per-DC attribution must reconcile with the
# grefar.decide decomposition; the Perfetto export must pass its own
# shape lint and come out byte-identical across identical-seed
# logical-clock runs; a degraded-run alert rule must fire live, replay
# offline to the exact same event stream, leave the schedule diff-clean,
# and stay quiet on a healthy run.
./target/release/grefar-report explain "$report_tmp/faulted.jsonl" --top-k 5 \
    | grep -q 'attribution reconciles' \
    || { echo "explain attribution failed to reconcile" >&2; exit 1; }
./target/release/grefar-report trace "$report_tmp/obs.jsonl" \
    "$report_tmp/obs_a.trace.json" > /dev/null
./target/release/grefar-report trace "$report_tmp/obs_b.jsonl" \
    "$report_tmp/obs_b.trace.json" > /dev/null
cmp -s "$report_tmp/obs_a.trace.json" "$report_tmp/obs_b.trace.json" \
    || { echo "trace export is not deterministic" >&2; exit 1; }
alert_rule='deg:degraded_events>0'
./target/release/grefar_cli --hours 500 --faults "$outage" --alerts "$alert_rule" \
    --telemetry "$report_tmp/alerted.jsonl" > /dev/null
grep -q '"event":"alert.fire"' "$report_tmp/alerted.jsonl" \
    || { echo "faulted run fired no alert" >&2; exit 1; }
./target/release/grefar-report diff \
    "$report_tmp/faulted.jsonl" "$report_tmp/alerted.jsonl" > /dev/null
grep -e '"event":"alert\.' "$report_tmp/alerted.jsonl" > "$report_tmp/alerts.live"
./target/release/grefar-report alerts "$report_tmp/alerted.jsonl" \
    --rules "$alert_rule" --assert-fire \
    | grep -e '"event":"alert\.' > "$report_tmp/alerts.replay"
cmp -s "$report_tmp/alerts.live" "$report_tmp/alerts.replay" \
    || { echo "live and replayed alert streams differ" >&2; exit 1; }
./target/release/grefar-report alerts "$report_tmp/obs.jsonl" \
    --rules "$alert_rule" --assert-quiet > /dev/null
echo "provenance, trace and alerts ok"

# Daemon crash-safety (see EXPERIMENTS.md, "Running the scheduler as a
# daemon" and DESIGN.md, "Service architecture & supervision"): a
# grefar-served session killed with SIGKILL mid-run and restarted with
# --resume must merge into a telemetry stream grefar-report diff
# certifies as identical to an uninterrupted session; SIGTERM must drain
# gracefully (exit 0, final checkpoint, metrics snapshot, served.stop
# marker); and a chaos plan that kills the state_keeper must restart
# within policy and still pass the Theorem 1(a) occupancy gate.
served=./target/release/grefar-served
wait_port() { # FILE -> prints the daemon's bound address
    local f=$1 i=0
    while [ ! -s "$f" ]; do
        i=$((i + 1))
        [ "$i" -gt 500 ] && { echo "daemon never wrote $f" >&2; return 1; }
        sleep 0.02
    done
    cat "$f"
}
served_args=(--hours 8 --clock manual --seed 7)
submit_head='{"op":"submit","job":1,"count":3}
{"op":"advance","slots":3}
{"op":"submit","job":0,"count":2}'
"$served" "${served_args[@]}" --telemetry "$report_tmp/served_ref.jsonl" \
    --checkpoint "$report_tmp/served_ref.ck" \
    --port-file "$report_tmp/served_ref.port" > /dev/null &
served_pid=$!
printf '%s\n%s\n' "$submit_head" '{"op":"advance","slots":5}' \
    | "$served" client "$(wait_port "$report_tmp/served_ref.port")" > /dev/null
wait "$served_pid" || { echo "reference daemon session failed" >&2; exit 1; }
"$served" "${served_args[@]}" --telemetry "$report_tmp/served_cut.jsonl" \
    --checkpoint "$report_tmp/served_cut.ck" \
    --port-file "$report_tmp/served_cut.port" > /dev/null &
served_pid=$!
printf '%s\n' "$submit_head" \
    | "$served" client "$(wait_port "$report_tmp/served_cut.port")" > /dev/null
kill -9 "$served_pid" # SIGKILL: no drain, no flush; the last submit only in the journal
if wait "$served_pid" 2> /dev/null; then
    echo "SIGKILLed daemon should exit non-zero" >&2; exit 1
fi
rm -f "$report_tmp/served_cut.port"
"$served" "${served_args[@]}" --telemetry "$report_tmp/served_cut.jsonl" \
    --checkpoint "$report_tmp/served_cut.ck" --resume \
    --port-file "$report_tmp/served_cut.port" > /dev/null &
served_pid=$!
printf '%s\n' '{"op":"advance","slots":5}' \
    | "$served" client "$(wait_port "$report_tmp/served_cut.port")" > /dev/null
wait "$served_pid" || { echo "resumed daemon session failed" >&2; exit 1; }
./target/release/grefar-report diff \
    "$report_tmp/served_ref.jsonl" "$report_tmp/served_cut.jsonl" > /dev/null \
    || { echo "resumed daemon stream diverged from the uninterrupted run" >&2; exit 1; }
"$served" --hours 6 --clock manual --seed 4 \
    --telemetry "$report_tmp/served_drain.jsonl" \
    --checkpoint "$report_tmp/served_drain.ck" \
    --metrics-snapshot "$report_tmp/served_drain.prom" \
    --port-file "$report_tmp/served_drain.port" > /dev/null &
served_pid=$!
printf '%s\n' '{"op":"advance","slots":2}' \
    | "$served" client "$(wait_port "$report_tmp/served_drain.port")" > /dev/null
kill -TERM "$served_pid"
wait "$served_pid" || { echo "SIGTERM drain must exit 0" >&2; exit 1; }
grep -q '"event":"served.stop"' "$report_tmp/served_drain.jsonl" \
    || { echo "drained daemon left no served.stop marker" >&2; exit 1; }
[ -s "$report_tmp/served_drain.ck" ] \
    || { echo "drained daemon left no final checkpoint" >&2; exit 1; }
./target/release/grefar-report promlint "$report_tmp/served_drain.prom" > /dev/null
"$served" --hours 10 --clock turbo --seed 3 --backoff-ms 1 \
    --chaos 'kill:actor=state_keeper,start=6,end=7' \
    --telemetry "$report_tmp/served_chaos.jsonl" \
    --checkpoint "$report_tmp/served_chaos.ck" \
    --port-file "$report_tmp/served_chaos.port" > /dev/null 2>&1 &
served_pid=$!
wait_port "$report_tmp/served_chaos.port" > /dev/null
wait "$served_pid" || { echo "chaos run must ride out its kills (exit 0)" >&2; exit 1; }
grep -q '"event":"served.restart"' "$report_tmp/served_chaos.jsonl" \
    || { echo "chaos run recorded no restart" >&2; exit 1; }
./target/release/grefar-report analyze "$report_tmp/served_chaos.jsonl" --assert-bound > /dev/null
echo "daemon crash-safety ok"

# Whole-system soak (see EXPERIMENTS.md, "Soak testing & replaying
# failures" and DESIGN.md, "Soak testing & the conservation ledger"): a
# fixed seed batch must soak green through the batch, crash and daemon
# legs in bounded wall time, and the mutation self-check must prove the
# oracles can fail — a corrupted queue update the conservation ledger
# cannot catch would make every green batch meaningless. Set
# GREFAR_SOAK_SEEDS=N to widen the batch (nightly runs).
soak_seeds="${GREFAR_SOAK_SEEDS:-8}"
if ! timeout 900 ./target/release/grefar-soak run --seeds "$soak_seeds" \
    --dir "$report_tmp/soak-failures" > "$report_tmp/soak.log" 2>&1; then
    cat "$report_tmp/soak.log" >&2
    cat "$report_tmp"/soak-failures/repro-*.txt 2> /dev/null >&2 || true
    echo "soak batch failed" >&2; exit 1
fi
timeout 300 ./target/release/grefar-soak selfcheck > /dev/null 2>&1 \
    || { echo "soak selfcheck failed: the oracles cannot catch a planted bug" >&2; exit 1; }
echo "soak harness ok"

# Perf trajectory: benches emit machine-readable BENCH_<target>.json; a
# self-comparison through the gate must pass at a tight threshold, and the
# fresh numbers must stay within a loose envelope of the committed
# baselines in perf/ (loose: baselines were recorded on different
# hardware; the gate catches order-of-magnitude regressions only).
cargo bench -q -p grefar-bench --bench trace --offline -- --json "$report_tmp" > /dev/null
./target/release/grefar-report bench-gate \
    "$report_tmp/BENCH_trace.json" "$report_tmp/BENCH_trace.json" --threshold 10% > /dev/null
./target/release/grefar-report bench-gate \
    perf/BENCH_trace.json "$report_tmp/BENCH_trace.json" --threshold 300% > /dev/null
echo "report tooling ok"

# Sanitizers (best effort — both stages need optional toolchain pieces,
# so each gates on availability and skips with a notice rather than
# failing a machine that lacks them; see DESIGN.md, "Correctness
# tooling").
#
# Miri catches undefined behaviour the type system can't (the leaf
# crates are pure data/parsing code, so the interpreter's slowness is
# tolerable there).
if cargo +nightly miri --version > /dev/null 2>&1; then
    cargo +nightly miri test -q --offline \
        -p grefar-types -p grefar-obs -p grefar-metrics
    echo "miri ok"
else
    echo "miri skipped: component not installed on the nightly toolchain" >&2
fi
# AddressSanitizer needs -Z flags, hence nightly; a clean instrumented
# build of the simulator's bench targets is the smoke test (the repo is
# #![forbid(unsafe_code)] throughout, so linking is where ASan earns
# its keep).
asan_target="x86_64-unknown-linux-gnu"
if rustc +nightly --version > /dev/null 2>&1 \
    && rustup target list --toolchain nightly --installed 2> /dev/null \
        | grep -qx "$asan_target"; then
    RUSTFLAGS="-Zsanitizer=address" cargo +nightly build -q --offline \
        -p grefar-bench --benches --target "$asan_target" \
        --target-dir target/asan
    echo "asan build ok"
else
    echo "asan skipped: nightly toolchain or $asan_target target missing" >&2
fi

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
echo "all checks passed"
