#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
# Repo-specific lint pass: determinism, float comparisons, panic-free hot
# paths, error docs (see crates/verify).
cargo run -q -p grefar-verify --offline
cargo test -q -p grefar-verify --offline
# The whole suite again with the runtime paper-invariant checks compiled in.
cargo test -q --offline --features strict-invariants
cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
echo "all checks passed"
