#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
# Repo-specific lint pass: determinism, float comparisons, panic-free hot
# paths, error docs (see crates/verify).
cargo run -q -p grefar-verify --offline
cargo test -q -p grefar-verify --offline
# The whole suite again with the runtime paper-invariant checks compiled in.
cargo test -q --offline --features strict-invariants

# Telemetry tooling end to end (see EXPERIMENTS.md, "Reading telemetry"):
# a real fig2 V-sweep must analyze clean against the Theorem 1(a) queue
# bound, and an identical-seed replay must diff as semantically identical.
report_tmp="$(mktemp -d)"
trap 'rm -rf "$report_tmp"' EXIT
./target/release/fig2 --hours 48 --telemetry "$report_tmp/run_a.jsonl" > /dev/null
./target/release/grefar-report analyze "$report_tmp/run_a.jsonl" --assert-bound > /dev/null
./target/release/fig2 --hours 48 --telemetry "$report_tmp/run_b.jsonl" > /dev/null
./target/release/grefar-report diff "$report_tmp/run_a.jsonl" "$report_tmp/run_b.jsonl" > /dev/null
# Perf trajectory: benches emit machine-readable BENCH_<target>.json; a
# self-comparison through the gate must pass.
cargo bench -q -p grefar-bench --bench trace --offline -- --json "$report_tmp" > /dev/null
./target/release/grefar-report bench-gate \
    "$report_tmp/BENCH_trace.json" "$report_tmp/BENCH_trace.json" --threshold 10% > /dev/null
echo "report tooling ok"

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
echo "all checks passed"
