#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
echo "all checks passed"
