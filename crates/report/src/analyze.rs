//! Per-run analytics over a parsed telemetry stream: the Lyapunov
//! drift/penalty decomposition, queue trajectories against the Theorem 1(a)
//! bound, time-average cost convergence with the Theorem 1(b) gap, solver
//! mix, and wall-time quantiles.

use crate::stream::{BoundsEvent, Run, TelemetryStream};
use grefar_obs::{Histogram, Quantiles};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The queue/bound verdict for one run (requires a matched `theory.bounds`
/// event in the stream).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck {
    /// Theorem 1(a) bound `V·C3/δ`.
    pub queue_bound: f64,
    /// Admissible staleness certified for the run, when it executed behind
    /// an unreliable feed layer.
    pub stale_slots: Option<u64>,
    /// The degraded bound `queue_bound + stale_slots·q^max` (present iff
    /// `stale_slots` is).
    pub stale_queue_bound: Option<f64>,
    /// The bound occupancy is measured against: the degraded stale bound
    /// when certified, the plain Theorem 1(a) bound otherwise.
    pub effective_bound: f64,
    /// `100 · peak_queue / effective_bound`.
    pub occupancy_pct: f64,
    /// Theorem 1(b) gap bound `(B + D(T−1))/V`.
    pub cost_gap_bound: f64,
    /// The certified slackness `δ`.
    pub delta: f64,
    /// The frame `T` of the gap bound.
    pub frame: u64,
}

/// Queue impact of one injected fault window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultImpact {
    /// Fault kind label (`outage`, `collapse`, `spike`, `gap`, `burst`,
    /// `squeeze`).
    pub kind: String,
    /// First slot of the fault window.
    pub start: u64,
    /// One past the window's last slot.
    pub end: u64,
    /// Targeted data center, for DC-scoped faults.
    pub dc: Option<u64>,
    /// `queue_max` in the last slot before the window opened — the level
    /// the disturbance is measured against (0 when the fault opens at
    /// slot 0).
    pub baseline_queue: f64,
    /// Largest `queue_max` over the disturbance: from the window's first
    /// slot until the queue recovered (or the run ended).
    pub peak_queue: f64,
    /// `max(0, peak_queue − baseline_queue)` — backlog attributable to the
    /// fault.
    pub overshoot: f64,
    /// Slots past the window's close until `queue_max` first returned to
    /// the baseline (0 = recovered by the slot the window closed);
    /// `None` when it never recovered within the run.
    pub recovery_slots: Option<u64>,
}

/// Feed-layer health summary of one run: staleness distribution, retry and
/// breaker activity, and estimation error against the realized prices.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedHealth {
    /// Slots scheduled on a not-fully-fresh estimate.
    pub stale_slots: usize,
    /// `100 · stale_slots / slots`.
    pub stale_pct: f64,
    /// Largest estimate age (slots) seen anywhere in the run.
    pub max_age: u64,
    /// Mean of the per-slot maximum estimate age over stale slots.
    pub mean_age: f64,
    /// Mean price MAE (estimate vs realized truth) over stale slots.
    pub mean_price_mae: f64,
    /// Total retry attempts (beyond each poll's first try).
    pub retries: u64,
    /// Polls that failed outright.
    pub failures: usize,
    /// Failure counts per reason, sorted by reason label.
    pub failures_by_reason: Vec<(String, usize)>,
    /// Records rejected by validation.
    pub quarantined: usize,
    /// Circuit-breaker trips (transitions to `open`).
    pub breaker_opens: usize,
    /// Decisions repaired against the truth after a stale estimate made
    /// them infeasible (`degraded.mode` reason `stale_state_repaired`).
    pub stale_repairs: usize,
}

/// Resilience summary of one run: how often the scheduler degraded and how
/// the queues absorbed each injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Resilience {
    /// Distinct slots with at least one `degraded.mode` event.
    pub degraded_slots: usize,
    /// Total `degraded.mode` events.
    pub degraded_events: usize,
    /// Degradation counts per reason, sorted by reason label.
    pub by_reason: Vec<(String, usize)>,
    /// Per-fault queue impact, in injection order.
    pub faults: Vec<FaultImpact>,
}

/// Everything the analyzer derives from one run.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    /// Sweep label or scheduler name.
    pub label: String,
    /// Scheduler name from `run.start`.
    pub scheduler: String,
    /// Observed slots.
    pub slots: usize,
    /// GreFar `V`, when the run carries `grefar.decide` events.
    pub v: Option<f64>,
    /// GreFar `β`.
    pub beta: Option<f64>,
    /// Time-average combined cost `e(t) − β·f(t)`.
    pub avg_cost: f64,
    /// Time-average cost over the first half of the run.
    pub first_half_cost: f64,
    /// Time-average cost over the second half of the run.
    pub second_half_cost: f64,
    /// Time-average Lyapunov drift term of objective (14).
    pub avg_drift: Option<f64>,
    /// Time-average penalty term `V·g(t)`.
    pub avg_penalty: Option<f64>,
    /// Largest single queue observed anywhere in the run.
    pub peak_queue: f64,
    /// Queue maximum in the final slot.
    pub final_queue: f64,
    /// Bound verdict, when the stream carries bounds for this run.
    pub bound: Option<BoundCheck>,
    /// Decisions taken by the exact greedy solver.
    pub greedy_decisions: usize,
    /// Decisions taken by Frank–Wolfe.
    pub fw_decisions: usize,
    /// Mean Frank–Wolfe iterations over FW decisions.
    pub fw_iterations_mean: f64,
    /// Largest final FW duality gap seen.
    pub fw_gap_max: f64,
    /// Jobs dropped by admission control.
    pub dropped: f64,
    /// `invariant.violation` events seen.
    pub invariant_violations: usize,
    /// Resilience summary, when the run carries `fault.inject` or
    /// `degraded.mode` events.
    pub resilience: Option<Resilience>,
    /// Feed-layer health, when the run carries `feed.*` or `state.stale`
    /// events.
    pub feed: Option<FeedHealth>,
    /// Wall-time quantiles per phase: `(phase, quantiles)`.
    pub wall: Vec<(&'static str, Quantiles)>,
    /// Sampled trajectory rows: `(t, avg_cost, avg_drift, avg_penalty,
    /// queue_max)` — running averages up to `t`.
    pub trajectory: Vec<(u64, f64, f64, f64, f64)>,
}

/// A full analysis of one telemetry stream.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-run results, in stream order.
    pub runs: Vec<RunAnalysis>,
    /// Total events in the stream.
    pub total_events: usize,
}

fn quantiles_of(samples: &[f64]) -> Quantiles {
    let mut hist = Histogram::new();
    for &s in samples {
        hist.record(s);
    }
    hist.quantiles()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Derives the resilience summary, or `None` for a fault-free, never-
/// degraded run (the section is omitted entirely then).
fn resilience_of(run: &Run) -> Option<Resilience> {
    if run.faults.is_empty() && run.degraded.is_empty() {
        return None;
    }
    let mut by_reason: BTreeMap<&str, usize> = BTreeMap::new();
    let mut degraded_slots: BTreeSet<u64> = BTreeSet::new();
    for d in &run.degraded {
        *by_reason.entry(d.reason.as_str()).or_insert(0) += 1;
        degraded_slots.insert(d.t);
    }
    let faults = run
        .faults
        .iter()
        .map(|f| {
            let baseline_queue = run
                .slots
                .iter()
                .rev()
                .find(|s| s.t < f.start)
                .map_or(0.0, |s| s.queue_max);
            let recovered_at = run
                .slots
                .iter()
                .find(|s| s.t >= f.end && s.queue_max <= baseline_queue + 1e-9)
                .map(|s| s.t);
            let peak_queue = run
                .slots
                .iter()
                .filter(|s| s.t >= f.start && recovered_at.is_none_or(|r| s.t <= r))
                .map(|s| s.queue_max)
                .fold(baseline_queue, f64::max);
            let recovery_slots = recovered_at.map(|t| t - f.end);
            FaultImpact {
                kind: f.kind.clone(),
                start: f.start,
                end: f.end,
                dc: f.dc,
                baseline_queue,
                peak_queue,
                overshoot: (peak_queue - baseline_queue).max(0.0),
                recovery_slots,
            }
        })
        .collect();
    Some(Resilience {
        degraded_slots: degraded_slots.len(),
        degraded_events: run.degraded.len(),
        by_reason: by_reason
            .into_iter()
            .map(|(reason, n)| (reason.to_string(), n))
            .collect(),
        faults,
    })
}

/// Derives the feed-health summary, or `None` for a run without any feed
/// telemetry (the section is omitted entirely then).
fn feed_health_of(run: &Run) -> Option<FeedHealth> {
    if run.feed_fetches.is_empty()
        && run.feed_breakers.is_empty()
        && run.feed_quarantined.is_empty()
        && run.stale.is_empty()
    {
        return None;
    }
    let mut failures_by_reason: BTreeMap<&str, usize> = BTreeMap::new();
    let mut retries = 0u64;
    let mut failures = 0usize;
    for f in &run.feed_fetches {
        retries += f.attempts.saturating_sub(1);
        if f.outcome != "ok" {
            failures += 1;
            let reason = f.reason.as_deref().unwrap_or("unknown");
            *failures_by_reason.entry(reason).or_insert(0) += 1;
        }
    }
    let stale_slots = run.stale.len();
    Some(FeedHealth {
        stale_slots,
        stale_pct: if run.slots.is_empty() {
            0.0
        } else {
            100.0 * stale_slots as f64 / run.slots.len() as f64
        },
        max_age: run.stale.iter().map(|s| s.max_age).max().unwrap_or(0),
        mean_age: mean(run.stale.iter().map(|s| s.max_age as f64)),
        mean_price_mae: mean(run.stale.iter().map(|s| s.price_mae)),
        retries,
        failures,
        failures_by_reason: failures_by_reason
            .into_iter()
            .map(|(reason, n)| (reason.to_string(), n))
            .collect(),
        quarantined: run.feed_quarantined.len(),
        breaker_opens: run.feed_breakers.iter().filter(|b| b.to == "open").count(),
        stale_repairs: run
            .degraded
            .iter()
            .filter(|d| d.reason == "stale_state_repaired")
            .count(),
    })
}

fn analyze_run(run: &Run, bounds: Option<&BoundsEvent>) -> RunAnalysis {
    let slots = run.slots.len();
    let beta = run.decides.first().map(|d| d.beta);
    let v = run.decides.first().map(|d| d.v);
    let b = beta.unwrap_or(0.0);
    let costs: Vec<f64> = run
        .slots
        .iter()
        .map(|s| s.energy - b * s.fairness)
        .collect();
    let avg_cost = mean(costs.iter().copied());
    let half = slots / 2;
    let first_half_cost = mean(costs.iter().take(half.max(1)).copied());
    let second_half_cost = mean(costs.iter().skip(half).copied());

    let peak_queue = run.slots.iter().map(|s| s.queue_max).fold(0.0, f64::max);
    let final_queue = run.slots.last().map_or(0.0, |s| s.queue_max);
    let bound = bounds.map(|be| {
        // A run certified against admissible staleness is judged against
        // the degraded bound; a perfect-feed run against Theorem 1(a)'s.
        let effective_bound = be.stale_queue_bound.unwrap_or(be.queue_bound);
        BoundCheck {
            queue_bound: be.queue_bound,
            stale_slots: be.stale_slots,
            stale_queue_bound: be.stale_queue_bound,
            effective_bound,
            occupancy_pct: if effective_bound > 0.0 {
                100.0 * peak_queue / effective_bound
            } else {
                f64::INFINITY
            },
            cost_gap_bound: be.cost_gap_bound,
            delta: be.delta,
            frame: be.frame,
        }
    });

    let greedy_decisions = run.decides.iter().filter(|d| d.solver == "greedy").count();
    let fw_decisions = run.decides.len() - greedy_decisions;
    let fw_iterations_mean = mean(
        run.decides
            .iter()
            .filter(|d| d.solver != "greedy")
            .map(|d| d.fw_iterations as f64),
    );
    let fw_gap_max = run.decides.iter().map(|d| d.fw_gap).fold(0.0f64, f64::max);

    let mut wall = Vec::new();
    for (phase, samples) in [
        ("slot", &run.slot_wall_us),
        ("decide", &run.decide_wall_us),
        ("lp.solve", &run.lp_wall_us),
    ] {
        if !samples.is_empty() {
            wall.push((phase, quantiles_of(samples)));
        }
    }

    // Running-average trajectory, sampled at ~6 evenly spaced slots.
    let mut trajectory = Vec::new();
    if slots > 0 {
        let points: Vec<usize> = (1..=6).map(|p| p * (slots - 1) / 6).collect();
        let mut cost_sum = 0.0;
        let mut drift_sum = 0.0;
        let mut penalty_sum = 0.0;
        let mut next = 0usize;
        for (i, slot) in run.slots.iter().enumerate() {
            cost_sum += costs[i];
            if let Some(d) = run.decides.get(i) {
                drift_sum += d.drift;
                penalty_sum += d.penalty;
            }
            while next < points.len() && points[next] == i {
                let n = (i + 1) as f64;
                trajectory.push((
                    slot.t,
                    cost_sum / n,
                    drift_sum / n,
                    penalty_sum / n,
                    slot.queue_max,
                ));
                next += 1;
            }
        }
        trajectory.dedup_by_key(|row| row.0);
    }

    RunAnalysis {
        label: run.display_label().to_string(),
        scheduler: run.scheduler.clone(),
        slots,
        v,
        beta,
        avg_cost,
        first_half_cost,
        second_half_cost,
        avg_drift: (!run.decides.is_empty()).then(|| mean(run.decides.iter().map(|d| d.drift))),
        avg_penalty: (!run.decides.is_empty()).then(|| mean(run.decides.iter().map(|d| d.penalty))),
        peak_queue,
        final_queue,
        bound,
        greedy_decisions,
        fw_decisions,
        fw_iterations_mean,
        fw_gap_max,
        dropped: run.dropped.unwrap_or(0.0),
        invariant_violations: run.invariant_violations,
        resilience: resilience_of(run),
        feed: feed_health_of(run),
        wall,
        trajectory,
    }
}

impl Analysis {
    /// Analyzes every run of a segmented stream.
    pub fn from_stream(stream: &TelemetryStream) -> Self {
        let bounds = stream.bounds_per_run();
        let runs = stream
            .runs
            .iter()
            .zip(&bounds)
            .map(|(run, b)| analyze_run(run, *b))
            .collect();
        Analysis {
            runs,
            total_events: stream.total_events,
        }
    }

    /// True when any run with a matched bound exceeded Theorem 1(a), or any
    /// run recorded a runtime invariant violation.
    pub fn any_bound_exceeded(&self) -> bool {
        self.runs.iter().any(|r| {
            r.invariant_violations > 0 || r.bound.as_ref().is_some_and(|b| b.occupancy_pct >= 100.0)
        })
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry stream: {} run(s), {} events",
            self.runs.len(),
            self.total_events
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "\nrun \"{}\" ({}, {} slots)",
                r.label, r.scheduler, r.slots
            );
            if let (Some(v), Some(beta)) = (r.v, r.beta) {
                let _ = writeln!(out, "  operating point : V={v}, beta={beta}");
            }
            let drift_pct = 100.0 * (self.halves_drift(r));
            let _ = writeln!(
                out,
                "  avg cost        : {:.4} (first half {:.4}, second half {:.4}, drift {:+.1}%)",
                r.avg_cost, r.first_half_cost, r.second_half_cost, drift_pct
            );
            if let (Some(drift), Some(penalty)) = (r.avg_drift, r.avg_penalty) {
                let _ = writeln!(
                    out,
                    "  lyapunov (14)   : avg drift {drift:.4}, avg penalty {penalty:.4}"
                );
            }
            match &r.bound {
                Some(b) => {
                    let verdict = if b.occupancy_pct < 100.0 {
                        "ok"
                    } else {
                        "EXCEEDED"
                    };
                    match (b.stale_slots, b.stale_queue_bound) {
                        (Some(s), Some(sb)) => {
                            let _ = writeln!(
                                out,
                                "  queues          : peak {:.2}, final {:.2} | degraded 1(a) \
                                 bound {sb:.2} (= {:.2} + {s} stale slots, delta {:.3}) -> \
                                 occupancy {:.1}% [{verdict}]",
                                r.peak_queue,
                                r.final_queue,
                                b.queue_bound,
                                b.delta,
                                b.occupancy_pct
                            );
                        }
                        _ => {
                            let _ =
                                writeln!(
                                out,
                                "  queues          : peak {:.2}, final {:.2} | Theorem 1(a) bound \
                                 {:.2} (delta {:.3}) -> occupancy {:.1}% [{verdict}]",
                                r.peak_queue, r.final_queue, b.queue_bound, b.delta,
                                b.occupancy_pct
                            );
                        }
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  queues          : peak {:.2}, final {:.2} (no theory.bounds in stream)",
                        r.peak_queue, r.final_queue
                    );
                }
            }
            if let Some(res) = &r.resilience {
                let reasons = if res.by_reason.is_empty() {
                    "no degradations".to_string()
                } else {
                    res.by_reason
                        .iter()
                        .map(|(reason, n)| format!("{reason} {n}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let _ = writeln!(
                    out,
                    "  resilience      : {} degraded slot(s), {} event(s) ({reasons})",
                    res.degraded_slots, res.degraded_events
                );
                for f in &res.faults {
                    let target = match f.dc {
                        Some(dc) => format!(" dc{dc}"),
                        None => String::new(),
                    };
                    let recovery = match f.recovery_slots {
                        Some(n) => format!("recovered {n} slot(s) after close"),
                        None => "NOT RECOVERED within the run".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "  fault {:<10}: slots [{}, {}){target} | baseline {:.2}, peak {:.2} \
                         (overshoot +{:.2}), {recovery}",
                        f.kind, f.start, f.end, f.baseline_queue, f.peak_queue, f.overshoot
                    );
                }
            }
            if let Some(fh) = &r.feed {
                let _ = writeln!(
                    out,
                    "  feed health     : {} stale slot(s) ({:.1}% of run), max age {}, \
                     mean age {:.1}, price MAE {:.4}",
                    fh.stale_slots, fh.stale_pct, fh.max_age, fh.mean_age, fh.mean_price_mae
                );
                let reasons = if fh.failures_by_reason.is_empty() {
                    String::new()
                } else {
                    format!(
                        " ({})",
                        fh.failures_by_reason
                            .iter()
                            .map(|(reason, n)| format!("{reason} {n}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                let _ = writeln!(
                    out,
                    "  feed traffic    : {} retries, {} failed poll(s){reasons}, \
                     {} quarantined, {} breaker trip(s), {} stale repair(s)",
                    fh.retries, fh.failures, fh.quarantined, fh.breaker_opens, fh.stale_repairs
                );
            }
            if !r.trajectory.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:>10} {:>12} {:>12} {:>12} {:>12}",
                    "t", "avg_cost", "avg_drift", "avg_penalty", "queue_max"
                );
                for (t, cost, drift, penalty, qmax) in &r.trajectory {
                    let _ = writeln!(
                        out,
                        "  {t:>10} {cost:>12.4} {drift:>12.4} {penalty:>12.4} {qmax:>12.2}"
                    );
                }
            }
            if !r.wall.is_empty() {
                let mix = if r.greedy_decisions + r.fw_decisions > 0 {
                    format!(
                        "greedy {} / frank_wolfe {} (fw iters mean {:.1}, max gap {:.2e})",
                        r.greedy_decisions, r.fw_decisions, r.fw_iterations_mean, r.fw_gap_max
                    )
                } else {
                    "n/a".to_string()
                };
                let _ = writeln!(out, "  solver mix      : {mix}");
                for (phase, q) in &r.wall {
                    let _ = writeln!(
                        out,
                        "  wall {phase:<11}: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, max {:.0} us",
                        q.p50, q.p95, q.p99, q.max
                    );
                }
            }
            if r.dropped > 0.0 {
                let _ = writeln!(out, "  dropped jobs    : {:.0}", r.dropped);
            }
            if r.invariant_violations > 0 {
                let _ = writeln!(
                    out,
                    "  INVARIANT VIOLATIONS: {} (see invariant.violation events)",
                    r.invariant_violations
                );
            }
        }
        self.render_gap_table(&mut out);
        self.render_feed_degradation(&mut out);
        out
    }

    // Second-half vs first-half relative cost drift (convergence measure).
    fn halves_drift(&self, r: &RunAnalysis) -> f64 {
        if r.first_half_cost.abs() > 0.0 {
            (r.second_half_cost - r.first_half_cost) / r.first_half_cost.abs()
        } else {
            0.0
        }
    }

    /// Feed-degradation table: each run that executed behind an unreliable
    /// feed layer compared against the first perfect-feed run of the same
    /// scheduler in the stream — the observable price of staleness in cost
    /// and backlog.
    fn render_feed_degradation(&self, out: &mut String) {
        let mut rows = Vec::new();
        for r in self.runs.iter().filter(|r| r.feed.is_some()) {
            let Some(clean) = self
                .runs
                .iter()
                .find(|o| o.feed.is_none() && o.scheduler == r.scheduler)
            else {
                continue;
            };
            rows.push((r, clean));
        }
        if rows.is_empty() {
            return;
        }
        let _ = writeln!(
            out,
            "\nfeed degradation (each lossy-feed run vs the perfect-feed run \
             of the same scheduler):"
        );
        let _ = writeln!(
            out,
            "{:>16} {:>12} {:>12} {:>10} {:>12} {:>12}",
            "run", "avg_cost", "clean_cost", "cost_pct", "peak_queue", "clean_peak"
        );
        for (r, clean) in rows {
            let cost_pct = if clean.avg_cost.abs() > 0.0 {
                100.0 * (r.avg_cost - clean.avg_cost) / clean.avg_cost.abs()
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:>16} {:>12.4} {:>12.4} {:>+9.1}% {:>12.2} {:>12.2}",
                r.label, r.avg_cost, clean.avg_cost, cost_pct, r.peak_queue, clean.peak_queue
            );
        }
    }

    /// Theorem 1(b) table: GreFar runs grouped by β, each compared against
    /// the cheapest run of its group (an observable stand-in for the
    /// offline optimum — the true gap to `g*` is at most the gap bound
    /// whenever the observed gap-to-best is, since best ≥ `g*`).
    fn render_gap_table(&self, out: &mut String) {
        let grefar: Vec<&RunAnalysis> = self
            .runs
            .iter()
            .filter(|r| r.v.is_some() && r.bound.is_some())
            .collect();
        if grefar.len() < 2 {
            return;
        }
        let _ = writeln!(
            out,
            "\nTheorem 1(b) cost-gap table (per swept V; gap measured against \
             the best run with the same beta):"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>12} {:>12} {:>14} {:>8}",
            "V", "beta", "avg_cost", "gap_to_best", "bound(O(1/V))", "within"
        );
        for r in &grefar {
            let beta = r.beta.unwrap_or(0.0);
            let best = grefar
                .iter()
                .filter(|o| (o.beta.unwrap_or(0.0) - beta).abs() < 1e-12)
                .map(|o| o.avg_cost)
                .fold(f64::INFINITY, f64::min);
            let gap = r.avg_cost - best;
            let bound = r.bound.as_ref().map_or(f64::INFINITY, |b| b.cost_gap_bound);
            let _ = writeln!(
                out,
                "{:>8} {:>8} {:>12.4} {:>12.4} {:>14.4} {:>8}",
                r.v.unwrap_or(0.0),
                beta,
                r.avg_cost,
                gap,
                bound,
                if gap <= bound { "yes" } else { "NO" }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{DecideSample, SlotSample};

    fn synthetic_run(label: &str, v: f64, cost: f64, qmax: f64, slots: usize) -> Run {
        let mut run = Run {
            label: Some(label.to_string()),
            scheduler: format!("GreFar(V={v})"),
            horizon: slots as u64,
            ..Run::default()
        };
        for t in 0..slots {
            run.slots.push(SlotSample {
                t: t as u64,
                queue_total: qmax * 1.5,
                queue_max: qmax,
                energy: cost,
                fairness: 0.0,
                arrivals: 5.0,
                dropped: 0.0,
            });
            run.slot_wall_us.push(10.0 + t as f64);
            run.decides.push(DecideSample {
                v,
                beta: 0.0,
                objective: -1.0,
                drift: -2.0,
                penalty: 1.0,
                solver: "greedy".to_string(),
                fw_iterations: 0,
                fw_gap: 0.0,
            });
            run.decide_wall_us.push(5.0);
        }
        run
    }

    fn stream_with_bounds(qbound: f64) -> TelemetryStream {
        TelemetryStream {
            runs: vec![synthetic_run("V=1", 1.0, 8.0, 10.0, 40)],
            bounds: vec![BoundsEvent {
                label: "V=1".to_string(),
                v: 1.0,
                beta: 0.0,
                delta: 2.0,
                queue_bound: qbound,
                cost_gap_bound: 5.0,
                frame: 24,
                stale_slots: None,
                stale_queue_bound: None,
            }],
            total_events: 42,
        }
    }

    #[test]
    fn occupancy_and_verdict() {
        let ok = Analysis::from_stream(&stream_with_bounds(40.0));
        assert!((ok.runs[0].bound.as_ref().unwrap().occupancy_pct - 25.0).abs() < 1e-9);
        assert!(!ok.any_bound_exceeded());
        assert!(ok.render().contains("occupancy 25.0% [ok]"));

        let bad = Analysis::from_stream(&stream_with_bounds(5.0));
        assert!(bad.any_bound_exceeded());
        assert!(bad.render().contains("[EXCEEDED]"));
    }

    #[test]
    fn invariant_violations_fail_the_gate() {
        let mut stream = stream_with_bounds(40.0);
        stream.runs[0].invariant_violations = 1;
        assert!(Analysis::from_stream(&stream).any_bound_exceeded());
    }

    #[test]
    fn gap_table_marks_runs_within_bound() {
        let stream = TelemetryStream {
            runs: vec![
                synthetic_run("V=1", 1.0, 8.0, 10.0, 20),
                synthetic_run("V=10", 10.0, 6.0, 30.0, 20),
            ],
            bounds: vec![
                BoundsEvent {
                    label: "V=1".to_string(),
                    v: 1.0,
                    beta: 0.0,
                    delta: 2.0,
                    queue_bound: 50.0,
                    cost_gap_bound: 50.0,
                    frame: 24,
                    stale_slots: None,
                    stale_queue_bound: None,
                },
                BoundsEvent {
                    label: "V=10".to_string(),
                    v: 10.0,
                    beta: 0.0,
                    delta: 2.0,
                    queue_bound: 200.0,
                    cost_gap_bound: 5.0,
                    frame: 24,
                    stale_slots: None,
                    stale_queue_bound: None,
                },
            ],
            total_events: 84,
        };
        let analysis = Analysis::from_stream(&stream);
        let rendered = analysis.render();
        assert!(rendered.contains("cost-gap table"), "{rendered}");
        // V=1 has gap 2.0 <= bound 50; V=10 is the best (gap 0 <= 5).
        assert!(!rendered.contains(" NO\n"), "{rendered}");
    }

    #[test]
    fn resilience_section_reports_overshoot_and_recovery() {
        use crate::stream::{DegradedSample, FaultSample};
        let mut run = synthetic_run("V=1", 1.0, 8.0, 4.0, 0);
        // Queue steady at 4 until an outage at t=10 drives it to 20; it
        // drains back to the 4.0 baseline at t=18 (3 slots after close).
        let q = |t: u64| -> f64 {
            match t {
                0..=9 => 4.0,
                10..=14 => 20.0,
                15 => 12.0,
                16 => 8.0,
                17 => 5.0,
                _ => 4.0,
            }
        };
        for t in 0..25u64 {
            run.slots.push(SlotSample {
                t,
                queue_total: q(t) * 1.5,
                queue_max: q(t),
                energy: 1.0,
                fairness: 0.0,
                arrivals: 5.0,
                dropped: 0.0,
            });
        }
        run.faults.push(FaultSample {
            t: 10,
            kind: "outage".to_string(),
            start: 10,
            end: 15,
            dc: Some(0),
        });
        for t in 10..15u64 {
            run.degraded.push(DegradedSample {
                t,
                reason: "dc_offline".to_string(),
                dc: Some(0),
            });
        }
        run.degraded.push(DegradedSample {
            t: 12,
            reason: "solver_budget_exhausted".to_string(),
            dc: None,
        });
        let analysis = Analysis::from_stream(&TelemetryStream {
            runs: vec![run],
            bounds: vec![],
            total_events: 31,
        });
        let res = analysis.runs[0].resilience.as_ref().unwrap();
        assert_eq!(res.degraded_slots, 5);
        assert_eq!(res.degraded_events, 6);
        assert_eq!(
            res.by_reason,
            vec![
                ("dc_offline".to_string(), 5),
                ("solver_budget_exhausted".to_string(), 1),
            ]
        );
        let f = &res.faults[0];
        assert!((f.baseline_queue - 4.0).abs() < 1e-12);
        assert!((f.peak_queue - 20.0).abs() < 1e-12);
        assert!((f.overshoot - 16.0).abs() < 1e-12);
        assert_eq!(f.recovery_slots, Some(3));
        let rendered = analysis.render();
        assert!(
            rendered.contains("resilience      : 5 degraded slot(s)"),
            "{rendered}"
        );
        assert!(rendered.contains("dc_offline 5"), "{rendered}");
        assert!(rendered.contains("overshoot +16.00"), "{rendered}");
        assert!(
            rendered.contains("recovered 3 slot(s) after close"),
            "{rendered}"
        );
    }

    #[test]
    fn feed_health_aggregates_staleness_and_traffic() {
        use crate::stream::{BreakerSample, DegradedSample, FeedFetchSample, StaleSample};
        let mut run = synthetic_run("V=1", 1.0, 8.0, 10.0, 40);
        run.feed_fetches.push(FeedFetchSample {
            t: 3,
            feed: "price".to_string(),
            dc: Some(0),
            outcome: "fail".to_string(),
            attempts: 3,
            reason: Some("retries_exhausted".to_string()),
        });
        run.feed_fetches.push(FeedFetchSample {
            t: 4,
            feed: "price".to_string(),
            dc: Some(0),
            outcome: "ok".to_string(),
            attempts: 2,
            reason: None,
        });
        run.feed_fetches.push(FeedFetchSample {
            t: 5,
            feed: "price".to_string(),
            dc: Some(0),
            outcome: "fail".to_string(),
            attempts: 0,
            reason: Some("breaker_open".to_string()),
        });
        run.feed_breakers.push(BreakerSample {
            t: 4,
            feed: "price".to_string(),
            dc: Some(0),
            from: "closed".to_string(),
            to: "open".to_string(),
        });
        run.feed_quarantined
            .push((6, "arrivals".to_string(), "nan".to_string()));
        for (t, age, mae) in [(3u64, 1u64, 0.1), (4, 2, 0.3)] {
            run.stale.push(StaleSample {
                t,
                stale_fields: 1,
                max_age: age,
                price_mae: mae,
            });
        }
        run.degraded.push(DegradedSample {
            t: 4,
            reason: "stale_state_repaired".to_string(),
            dc: None,
        });
        let analysis = Analysis::from_stream(&TelemetryStream {
            runs: vec![run],
            bounds: vec![],
            total_events: 50,
        });
        let fh = analysis.runs[0].feed.as_ref().unwrap();
        assert_eq!(fh.stale_slots, 2);
        assert!((fh.stale_pct - 5.0).abs() < 1e-9); // 2 of 40 slots
        assert_eq!(fh.max_age, 2);
        assert!((fh.mean_age - 1.5).abs() < 1e-12);
        assert!((fh.mean_price_mae - 0.2).abs() < 1e-12);
        assert_eq!(fh.retries, 3); // (3-1) + (2-1) + 0
        assert_eq!(fh.failures, 2);
        assert_eq!(
            fh.failures_by_reason,
            vec![
                ("breaker_open".to_string(), 1),
                ("retries_exhausted".to_string(), 1),
            ]
        );
        assert_eq!(fh.quarantined, 1);
        assert_eq!(fh.breaker_opens, 1);
        assert_eq!(fh.stale_repairs, 1);
        let rendered = analysis.render();
        assert!(
            rendered.contains("feed health     : 2 stale slot(s)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("1 breaker trip(s), 1 stale repair(s)"),
            "{rendered}"
        );
    }

    #[test]
    fn stale_bound_governs_occupancy_when_certified() {
        use crate::stream::StaleSample;
        // Peak queue 10 exceeds the plain bound 8 but sits inside the
        // degraded bound 16 — a staleness-certified run passes the gate.
        let mut stream = TelemetryStream {
            runs: vec![synthetic_run("V=1", 1.0, 8.0, 10.0, 40)],
            bounds: vec![BoundsEvent {
                label: "V=1".to_string(),
                v: 1.0,
                beta: 0.0,
                delta: 2.0,
                queue_bound: 8.0,
                cost_gap_bound: 5.0,
                frame: 24,
                stale_slots: Some(2),
                stale_queue_bound: Some(16.0),
            }],
            total_events: 42,
        };
        stream.runs[0].stale.push(StaleSample {
            t: 1,
            stale_fields: 1,
            max_age: 1,
            price_mae: 0.0,
        });
        let analysis = Analysis::from_stream(&stream);
        let b = analysis.runs[0].bound.as_ref().unwrap();
        assert_eq!(b.effective_bound, 16.0);
        assert!((b.occupancy_pct - 62.5).abs() < 1e-9);
        assert!(!analysis.any_bound_exceeded());
        let rendered = analysis.render();
        assert!(rendered.contains("degraded 1(a) bound 16.00"), "{rendered}");
        assert!(rendered.contains("2 stale slots"), "{rendered}");
    }

    #[test]
    fn feed_degradation_table_compares_against_clean_run() {
        use crate::stream::StaleSample;
        let clean = synthetic_run("clean", 1.0, 8.0, 10.0, 20);
        let mut lossy = synthetic_run("lossy", 1.0, 10.0, 14.0, 20);
        lossy.stale.push(StaleSample {
            t: 0,
            stale_fields: 1,
            max_age: 1,
            price_mae: 0.2,
        });
        let analysis = Analysis::from_stream(&TelemetryStream {
            runs: vec![clean, lossy],
            bounds: vec![],
            total_events: 80,
        });
        let rendered = analysis.render();
        assert!(rendered.contains("feed degradation"), "{rendered}");
        // 10 vs 8 cost: +25%.
        assert!(rendered.contains("+25.0%"), "{rendered}");
    }

    #[test]
    fn fault_free_runs_render_no_resilience_section() {
        let analysis = Analysis::from_stream(&stream_with_bounds(40.0));
        assert!(analysis.runs[0].resilience.is_none());
        assert!(!analysis.render().contains("resilience"));
    }

    #[test]
    fn solver_mix_and_wall_quantiles_render() {
        let analysis = Analysis::from_stream(&stream_with_bounds(40.0));
        let rendered = analysis.render();
        assert!(rendered.contains("greedy 40 / frank_wolfe 0"), "{rendered}");
        assert!(rendered.contains("wall slot"), "{rendered}");
        assert!(rendered.contains("avg drift -2.0000"), "{rendered}");
    }
}
