//! Folded-stack and tabular rendering of recorded span profiles.
//!
//! The experiment binaries flush one `profile.span` event per distinct
//! call path after `run.end` (see `grefar_obs::SpanProfiler`). This module
//! reads those events back out of a telemetry stream and renders either
//! the standard folded-stack flamegraph format (`path self_value` lines,
//! consumable by inferno / speedscope / `flamegraph.pl`) or a summary
//! table sorted by inclusive time.
//!
//! Logical-clock profiles (`total_ticks` / `self_ticks`) are fully
//! deterministic: two identical-seed runs produce byte-identical folded
//! output, which `scripts/check.sh` pins. Wall-clock profiles carry
//! `total_us` / `self_us` instead; both spellings are understood here.

use crate::stream::{parse_versioned_lines, JsonObject};
use grefar_obs::json::JsonValue;
use std::fmt::Write as _;

/// One recorded span path with its attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpan {
    /// `;`-joined call path, e.g. `slot;decide;fw.iter`.
    pub path: String,
    /// Times the path was entered (or leaf invocations).
    pub count: u64,
    /// Inclusive time (ticks or microseconds, per [`ProfileReport::clock`]).
    pub total: u64,
    /// Exclusive time: `total` minus the children's inclusive time.
    pub self_time: u64,
}

/// A span profile reconstructed from a telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// `"logical"` (ticks) or `"wall"` (microseconds).
    pub clock: String,
    /// Spans in path order, as emitted.
    pub spans: Vec<ProfileSpan>,
    /// `span_exit` calls that never had a matching enter; non-zero means
    /// the instrumentation is unbalanced and attribution is suspect.
    pub unbalanced_exits: u64,
}

fn field_u64(event: &JsonObject, key: &str) -> u64 {
    event.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64
}

impl ProfileReport {
    /// Extracts the `profile.span` events from a telemetry document.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the document fails JSONL parsing, contains no
    /// `profile.span` events (the run was not recorded with `--profile`),
    /// or mixes clocks.
    pub fn from_stream(text: &str) -> Result<ProfileReport, String> {
        let events = parse_versioned_lines(text)?;
        let mut report = ProfileReport {
            clock: String::new(),
            spans: Vec::new(),
            unbalanced_exits: 0,
        };
        for event in &events {
            if event.get("event").and_then(JsonValue::as_str) != Some("profile.span") {
                continue;
            }
            let clock = event
                .get("clock")
                .and_then(JsonValue::as_str)
                .unwrap_or("logical");
            if report.clock.is_empty() {
                report.clock = clock.to_string();
            } else if report.clock != clock {
                return Err(format!(
                    "stream mixes span clocks ({} and {clock})",
                    report.clock
                ));
            }
            let path = event
                .get("stack")
                .and_then(JsonValue::as_str)
                .ok_or("profile.span event without a stack field")?;
            if path == "<unbalanced>" {
                report.unbalanced_exits = field_u64(event, "count");
                continue;
            }
            let (total_key, self_key) = if clock == "wall" {
                ("total_us", "self_us")
            } else {
                ("total_ticks", "self_ticks")
            };
            report.spans.push(ProfileSpan {
                path: path.to_string(),
                count: field_u64(event, "count"),
                total: field_u64(event, total_key),
                self_time: field_u64(event, self_key),
            });
        }
        if report.spans.is_empty() {
            return Err(
                "no profile.span events in stream — was the run recorded with --profile?"
                    .to_string(),
            );
        }
        Ok(report)
    }

    /// The unit label for the active clock.
    pub fn unit(&self) -> &'static str {
        if self.clock == "wall" {
            "us"
        } else {
            "ticks"
        }
    }

    /// Renders the folded-stack flamegraph format, in path order (the
    /// deterministic order the profiler emitted).
    pub fn folded(&self) -> String {
        grefar_obs::folded_from(self.spans.iter().map(|s| (s.path.as_str(), s.self_time)))
    }

    /// Renders a summary table sorted by inclusive time, heaviest first.
    pub fn render(&self) -> String {
        let width = self
            .spans
            .iter()
            .map(|s| s.path.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let grand_total: u64 = self.spans.iter().map(|s| s.self_time).sum();
        let mut rows: Vec<&ProfileSpan> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.path.cmp(&b.path)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span profile ({} clock, {} paths)",
            self.clock,
            self.spans.len()
        );
        let unit = self.unit();
        let _ = writeln!(
            out,
            "{:width$}  {:>10}  {:>12}  {:>12}  {:>6}",
            "path",
            "count",
            format!("total_{unit}"),
            format!("self_{unit}"),
            "self%"
        );
        for span in rows {
            let pct = if grand_total > 0 {
                100.0 * span.self_time as f64 / grand_total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:width$}  {:>10}  {:>12}  {:>12}  {:>5.1}%",
                span.path, span.count, span.total, span.self_time, pct
            );
        }
        if self.unbalanced_exits > 0 {
            let _ = writeln!(
                out,
                "warning: {} unbalanced span exit(s) — attribution is suspect",
                self.unbalanced_exits
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = "{\"schema\":1,\"event\":\"run.start\",\"scheduler\":\"GreFar\",\"horizon\":1}\n\
        {\"schema\":1,\"event\":\"slot\",\"t\":0,\"energy\":1.0}\n\
        {\"schema\":1,\"event\":\"run.end\",\"slots\":1}\n\
        {\"schema\":1,\"event\":\"profile.span\",\"stack\":\"slot\",\"clock\":\"logical\",\"count\":3,\"total_ticks\":30,\"self_ticks\":6}\n\
        {\"schema\":1,\"event\":\"profile.span\",\"stack\":\"slot;decide\",\"clock\":\"logical\",\"count\":3,\"total_ticks\":18,\"self_ticks\":3}\n\
        {\"schema\":1,\"event\":\"profile.span\",\"stack\":\"slot;decide;fw.iter\",\"clock\":\"logical\",\"count\":15,\"total_ticks\":15,\"self_ticks\":15}\n";

    #[test]
    fn extracts_spans_and_folds() {
        let report = ProfileReport::from_stream(STREAM).unwrap();
        assert_eq!(report.clock, "logical");
        assert_eq!(report.spans.len(), 3);
        assert_eq!(
            report.folded(),
            "slot 6\nslot;decide 3\nslot;decide;fw.iter 15\n"
        );
    }

    #[test]
    fn render_sorts_by_total_and_reports_percentages() {
        let report = ProfileReport::from_stream(STREAM).unwrap();
        let table = report.render();
        let slot_pos = table.find("slot ").unwrap();
        let fw_pos = table.find("slot;decide;fw.iter").unwrap();
        assert!(slot_pos < fw_pos, "{table}");
        assert!(table.contains("logical clock"), "{table}");
        // self% sums to 100: 6 + 3 + 15 = 24; fw.iter = 15/24 = 62.5%.
        assert!(table.contains("62.5%"), "{table}");
    }

    #[test]
    fn wall_clock_uses_us_fields() {
        let stream = STREAM.replace("logical", "wall").replace("_ticks", "_us");
        let report = ProfileReport::from_stream(&stream).unwrap();
        assert_eq!(report.clock, "wall");
        assert_eq!(report.unit(), "us");
        assert_eq!(report.spans[2].total, 15);
    }

    #[test]
    fn missing_profile_events_is_an_error() {
        let bare = "{\"schema\":1,\"event\":\"slot\",\"t\":0}\n";
        let err = ProfileReport::from_stream(bare).unwrap_err();
        assert!(err.contains("--profile"), "{err}");
    }

    #[test]
    fn unbalanced_marker_becomes_a_warning() {
        let stream = format!(
            "{STREAM}{}",
            "{\"schema\":1,\"event\":\"profile.span\",\"stack\":\"<unbalanced>\",\"clock\":\"logical\",\"count\":2}\n"
        );
        let report = ProfileReport::from_stream(&stream).unwrap();
        assert_eq!(report.unbalanced_exits, 2);
        assert!(report.render().contains("unbalanced"));
    }

    #[test]
    fn mixed_clocks_are_rejected() {
        let stream = format!(
            "{STREAM}{}",
            "{\"schema\":1,\"event\":\"profile.span\",\"stack\":\"x\",\"clock\":\"wall\",\"count\":1,\"total_us\":1,\"self_us\":1}\n"
        );
        assert!(ProfileReport::from_stream(&stream).is_err());
    }
}
