//! Parsing and segmentation of a GreFar JSONL telemetry stream.
//!
//! A stream (see the `grefar-obs` crate docs for the event schema) is a
//! flat sequence of events; this module checks the wire-format version of
//! every line, groups the events into per-run segments delimited by
//! `run.start`/`run.end` (with optional `sweep.run` labels), and extracts
//! the typed samples the analyzers consume.

use grefar_obs::json::{self, JsonValue};
use std::collections::BTreeMap;

/// One parsed JSONL object.
pub type JsonObject = BTreeMap<String, JsonValue>;

/// Parses a JSONL document and validates the per-line `"schema"` field.
///
/// Lines without a `schema` field are accepted (streams written before the
/// format was versioned); lines with `schema >` the supported
/// [`grefar_obs::SCHEMA_VERSION`] are rejected — they were written by a
/// newer, incompatible emitter.
pub fn parse_versioned_lines(text: &str) -> Result<Vec<JsonObject>, String> {
    let events = json::parse_lines(text)?;
    for (idx, event) in events.iter().enumerate() {
        if let Some(value) = event.get("schema") {
            let version = value
                .as_f64()
                .ok_or_else(|| format!("event {}: non-numeric schema field", idx + 1))?;
            if version < 0.0 || version.fract() > 0.0 {
                return Err(format!(
                    "event {}: invalid schema version {version}",
                    idx + 1
                ));
            }
            let version = version as u32;
            if version > grefar_obs::SCHEMA_VERSION {
                return Err(format!(
                    "event {}: stream uses schema version {version}, but this \
                     tool only understands versions up to {} — upgrade grefar-report",
                    idx + 1,
                    grefar_obs::SCHEMA_VERSION
                ));
            }
        }
    }
    Ok(events)
}

/// One `slot` event's deterministic payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSample {
    /// Slot index `t`.
    pub t: u64,
    /// Total backlog across all queues.
    pub queue_total: f64,
    /// Longest single queue this slot.
    pub queue_max: f64,
    /// Metered energy cost `e(t)`.
    pub energy: f64,
    /// Metered fairness score `f(t)`.
    pub fairness: f64,
    /// Jobs arriving this slot.
    pub arrivals: f64,
    /// Jobs dropped by admission control this slot.
    pub dropped: f64,
}

/// One `grefar.decide` event's deterministic payload.
#[derive(Debug, Clone, PartialEq)]
pub struct DecideSample {
    /// The cost-delay parameter `V`.
    pub v: f64,
    /// The energy-fairness parameter `β`.
    pub beta: f64,
    /// Value of the drift-plus-penalty objective (14).
    pub objective: f64,
    /// The queue-drift share of the objective.
    pub drift: f64,
    /// The `V·g(t)` penalty share of the objective.
    pub penalty: f64,
    /// Which solver produced the decision (`greedy` / `frank_wolfe`).
    pub solver: String,
    /// Frank–Wolfe iterations (0 for the greedy path).
    pub fw_iterations: u64,
    /// Final Frank–Wolfe duality gap (0 for the greedy path).
    pub fw_gap: f64,
}

/// One `fault.inject` event — a fault window opening (emitted once, at the
/// window's first slot).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSample {
    /// Slot the event was emitted at (the window's first slot).
    pub t: u64,
    /// Fault kind label (`outage`, `collapse`, `spike`, `gap`, `burst`,
    /// `squeeze`).
    pub kind: String,
    /// First slot of the fault window.
    pub start: u64,
    /// One past the last slot of the fault window.
    pub end: u64,
    /// Targeted data center, for DC-scoped faults.
    pub dc: Option<u64>,
}

/// One `degraded.mode` event — the scheduler fell back or repaired a
/// decision instead of failing.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSample {
    /// Slot the degradation happened at.
    pub t: u64,
    /// Machine-readable reason (`solver_budget_exhausted`,
    /// `infeasible_repaired`, `dc_offline`).
    pub reason: String,
    /// The data center involved, when the reason is DC-scoped.
    pub dc: Option<u64>,
}

/// One `decision.explain` event — per-DC provenance of one drift-plus-
/// penalty decision (eq. 14). The slot-wide fairness score and deficit
/// counters ride on the DC-0 event only.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainSample {
    /// The slot.
    pub t: u64,
    /// Data center index `i`.
    pub dc: u64,
    /// This DC's share of the drift term of (14).
    pub drift: f64,
    /// This DC's energy cost `e_i(t)`.
    pub energy: f64,
    /// Jobs routed to this DC, `Σ_j r_{i,j}`.
    pub routed: f64,
    /// Jobs processed at this DC, `Σ_j h_{i,j}`.
    pub processed: f64,
    /// Local backlog `Σ_j q_{i,j}(t)` before the decision.
    pub backlog: f64,
    /// Work scheduled, `Σ_j h_{i,j}·d_j` (LHS of constraint (11)).
    pub busy: f64,
    /// Work capacity `Σ_k n_{i,k}·s_k` (RHS of constraint (11)).
    pub capacity: f64,
    /// Slot-wide fairness score `f(t)` (DC-0 event only).
    pub fairness: Option<f64>,
    /// Comma-joined per-account deficits `γ_m − x_m` (DC-0 event only).
    pub deficits: Option<String>,
    /// Machine reason when a fallback overrode the solver for this DC or
    /// the whole slot.
    pub reason: Option<String>,
}

/// One `feed.fetch` event — a poll that failed or needed retries (clean
/// single-attempt fetches stay silent, so these samples *are* the feed
/// layer's retry/failure activity).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedFetchSample {
    /// Slot of the poll.
    pub t: u64,
    /// Feed kind label (`price`, `avail`, `arrivals`).
    pub feed: String,
    /// Targeted data center, for per-DC feeds.
    pub dc: Option<u64>,
    /// `ok` (arrived after retries) or `fail`.
    pub outcome: String,
    /// Fetch attempts spent (0 when the breaker skipped the poll).
    pub attempts: u64,
    /// Failure reason (`timeout`, `dropped`, `breaker_open`,
    /// `retries_exhausted`, `deadline`, `quarantined`), absent on `ok`.
    pub reason: Option<String>,
}

/// One `feed.breaker` event — a circuit-breaker state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerSample {
    /// Slot of the transition.
    pub t: u64,
    /// Feed kind label.
    pub feed: String,
    /// Targeted data center, for per-DC feeds.
    pub dc: Option<u64>,
    /// State left (`closed`, `open`, `half_open`).
    pub from: String,
    /// State entered.
    pub to: String,
}

/// One `state.stale` event — a slot scheduled on a not-fully-fresh
/// estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct StaleSample {
    /// The slot.
    pub t: u64,
    /// Number of estimated fields that were not fresh.
    pub stale_fields: u64,
    /// Largest estimate age (slots) across all fields.
    pub max_age: u64,
    /// Mean absolute error of the estimated prices vs the truth.
    pub price_mae: f64,
}

/// One `soak.ledger` event — the per-slot job-conservation ledger state.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerSample {
    /// The slot.
    pub t: u64,
    /// Jobs offered (pre-admission-control) so far.
    pub offered: f64,
    /// Jobs admitted so far.
    pub admitted: f64,
    /// Jobs dropped by admission control so far.
    pub dropped: f64,
    /// Effective service so far.
    pub served: f64,
    /// Phantom work minted by over-routing so far.
    pub route_excess: f64,
    /// The realized queue total this slot.
    pub queued: f64,
    /// The signed conservation balance (zero up to accumulation on a
    /// healthy run).
    pub balance: f64,
}

/// Theorem 1 bounds attached to one labeled run (a `theory.bounds` event).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsEvent {
    /// The run label the bounds apply to.
    pub label: String,
    /// The GreFar operating point.
    pub v: f64,
    /// The energy-fairness parameter.
    pub beta: f64,
    /// The certified slackness `δ` of (20)–(22).
    pub delta: f64,
    /// Theorem 1(a): the queue bound `V·C3/δ` of (23).
    pub queue_bound: f64,
    /// Theorem 1(b): the gap bound `(B + D(T−1))/V` of (24).
    pub cost_gap_bound: f64,
    /// The frame length `T` the gap bound is stated against.
    pub frame: u64,
    /// Admissible staleness the run was certified against, when it ran
    /// behind an unreliable feed layer.
    pub stale_slots: Option<u64>,
    /// The degraded Theorem 1(a) bound `queue_bound + stale_slots·q^max`
    /// (an engineering corollary; present iff `stale_slots` is).
    pub stale_queue_bound: Option<f64>,
}

/// One simulation run's telemetry: the events between a `run.start` and its
/// `run.end`, plus the preceding `sweep.run` label when present.
#[derive(Debug, Clone, Default)]
pub struct Run {
    /// The `sweep.run` label, if the run was part of a labeled sweep.
    pub label: Option<String>,
    /// The scheduler name from `run.start`.
    pub scheduler: String,
    /// Declared horizon from `run.start`.
    pub horizon: u64,
    /// Per-slot samples in slot order.
    pub slots: Vec<SlotSample>,
    /// Per-decision scheduler samples in slot order.
    pub decides: Vec<DecideSample>,
    /// `decision.explain` provenance events, in stream order (N per
    /// decided slot, one per data center).
    pub explains: Vec<ExplainSample>,
    /// `wall_us` of every `slot` event.
    pub slot_wall_us: Vec<f64>,
    /// `wall_us` of every `grefar.decide` event.
    pub decide_wall_us: Vec<f64>,
    /// `wall_us` of every `lp.solve` event.
    pub lp_wall_us: Vec<f64>,
    /// Simplex pivot counts (phase 1 + phase 2) of every `lp.solve` event.
    pub lp_pivots: Vec<f64>,
    /// Total completed jobs from `run.end`.
    pub completed: Option<f64>,
    /// Total dropped jobs from `run.end`.
    pub dropped: Option<f64>,
    /// Whole-run wall time from `run.end`.
    pub run_wall_us: Option<f64>,
    /// Number of `invariant.violation` events seen during the run.
    pub invariant_violations: usize,
    /// `fault.inject` events in stream order.
    pub faults: Vec<FaultSample>,
    /// `degraded.mode` events in stream order.
    pub degraded: Vec<DegradedSample>,
    /// `feed.fetch` events (retried or failed polls) in stream order.
    pub feed_fetches: Vec<FeedFetchSample>,
    /// `feed.breaker` transitions in stream order.
    pub feed_breakers: Vec<BreakerSample>,
    /// `feed.quarantine` events as `(t, feed, reason)` in stream order.
    pub feed_quarantined: Vec<(u64, String, String)>,
    /// `state.stale` events in slot order.
    pub stale: Vec<StaleSample>,
    /// `soak.ledger` conservation samples in slot order.
    pub ledger: Vec<LedgerSample>,
}

impl Run {
    /// The label to display: the sweep label when present, the scheduler
    /// name otherwise.
    pub fn display_label(&self) -> &str {
        self.label.as_deref().unwrap_or(&self.scheduler)
    }
}

/// A fully segmented telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStream {
    /// The runs, in stream order.
    pub runs: Vec<Run>,
    /// Theorem-1 bounds events, in stream order.
    pub bounds: Vec<BoundsEvent>,
    /// Total events parsed (including markers).
    pub total_events: usize,
}

fn number(event: &JsonObject, key: &str, idx: usize) -> Result<f64, String> {
    event
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("event {}: missing numeric field {key:?}", idx + 1))
}

fn opt_number(event: &JsonObject, key: &str) -> Option<f64> {
    event.get(key).and_then(JsonValue::as_f64)
}

fn string(event: &JsonObject, key: &str, idx: usize) -> Result<String, String> {
    event
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("event {}: missing string field {key:?}", idx + 1))
}

impl TelemetryStream {
    /// Parses and segments a JSONL document.
    ///
    /// Unknown event names are skipped (they are additive within a schema
    /// version); structurally impossible sequences (samples outside any
    /// run) are errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let events = parse_versioned_lines(text)?;
        let total_events = events.len();
        let mut runs: Vec<Run> = Vec::new();
        let mut bounds = Vec::new();
        let mut pending_label: Option<String> = None;
        let mut in_run = false;

        for (idx, event) in events.iter().enumerate() {
            let name = string(event, "event", idx)?;
            // Events that may appear outside a run segment:
            // verify: match-events(telemetry)
            match name.as_str() {
                "sweep.run" => {
                    pending_label = Some(string(event, "label", idx)?);
                    continue;
                }
                "theory.bounds" => {
                    bounds.push(BoundsEvent {
                        label: string(event, "label", idx)?,
                        v: number(event, "v", idx)?,
                        beta: number(event, "beta", idx)?,
                        delta: number(event, "delta", idx)?,
                        queue_bound: number(event, "queue_bound", idx)?,
                        cost_gap_bound: number(event, "cost_gap_bound", idx)?,
                        frame: number(event, "frame", idx)? as u64,
                        stale_slots: opt_number(event, "stale_slots").map(|s| s as u64),
                        stale_queue_bound: opt_number(event, "stale_queue_bound"),
                    });
                    continue;
                }
                "run.start" => {
                    runs.push(Run {
                        label: pending_label.take(),
                        scheduler: string(event, "scheduler", idx)?,
                        horizon: number(event, "horizon", idx)? as u64,
                        ..Run::default()
                    });
                    in_run = true;
                    continue;
                }
                // Post-run trailers: the span profiler flushes after
                // `run.end`, and the metrics layer's final `health.snapshot`
                // lands there too. Alert transitions are fold policy, not
                // run samples — `grefar-report alerts` replays them through
                // the metrics fold instead.
                "profile.span" | "health.snapshot" | "alert.fire" | "alert.resolve" => continue,
                // The daemon's service plane: lifecycle brackets, supervisor
                // restarts, admission decisions and checkpoint-recovery
                // notes all land outside any run (before `run.start`, after
                // `run.end`, or between resumed segments). The analytics
                // don't consume them — `grefar-report diff` filters them as
                // policy events, and the metrics fold counts them.
                "served.start"
                | "served.stop"
                | "served.restart"
                | "admission.accept"
                | "admission.reject"
                | "checkpoint.truncated" => continue,
                _ => {}
            }
            let run = match runs.last_mut() {
                Some(run) if in_run => run,
                _ => {
                    return Err(format!(
                        "event {}: {name:?} outside any run (no preceding run.start)",
                        idx + 1
                    ))
                }
            };
            // verify: match-events(telemetry)
            match name.as_str() {
                "slot" => {
                    run.slots.push(SlotSample {
                        t: number(event, "t", idx)? as u64,
                        queue_total: number(event, "queue_central", idx)?
                            + number(event, "queue_local", idx)?,
                        queue_max: number(event, "queue_max", idx)?,
                        energy: number(event, "energy", idx)?,
                        fairness: number(event, "fairness", idx)?,
                        arrivals: number(event, "arrivals", idx)?,
                        dropped: number(event, "dropped", idx)?,
                    });
                    run.slot_wall_us.push(number(event, "wall_us", idx)?);
                }
                "grefar.decide" => {
                    run.decides.push(DecideSample {
                        v: number(event, "v", idx)?,
                        beta: number(event, "beta", idx)?,
                        objective: number(event, "objective", idx)?,
                        drift: number(event, "drift", idx)?,
                        penalty: number(event, "penalty", idx)?,
                        solver: string(event, "solver", idx)?,
                        fw_iterations: number(event, "fw_iterations", idx)? as u64,
                        // The greedy path reports gap 0; nulls (serialized
                        // NaN) read back as absent and default to 0 too.
                        fw_gap: number(event, "fw_gap", idx).unwrap_or(0.0),
                    });
                    run.decide_wall_us.push(number(event, "wall_us", idx)?);
                }
                "decision.explain" => {
                    run.explains.push(ExplainSample {
                        t: number(event, "t", idx)? as u64,
                        dc: number(event, "dc", idx)? as u64,
                        drift: number(event, "drift", idx)?,
                        energy: number(event, "energy", idx)?,
                        routed: number(event, "routed", idx)?,
                        processed: number(event, "processed", idx)?,
                        backlog: number(event, "backlog", idx)?,
                        busy: number(event, "busy", idx)?,
                        capacity: number(event, "capacity", idx)?,
                        fairness: opt_number(event, "fairness"),
                        deficits: event
                            .get("deficits")
                            .and_then(JsonValue::as_str)
                            .map(str::to_string),
                        reason: event
                            .get("reason")
                            .and_then(JsonValue::as_str)
                            .map(str::to_string),
                    });
                }
                "lp.solve" => {
                    run.lp_wall_us.push(number(event, "wall_us", idx)?);
                    run.lp_pivots.push(
                        number(event, "pivots_phase1", idx)? + number(event, "pivots_phase2", idx)?,
                    );
                }
                "run.end" => {
                    run.completed = Some(number(event, "completed", idx)?);
                    run.dropped = Some(number(event, "dropped", idx)?);
                    run.run_wall_us = Some(number(event, "wall_us", idx)?);
                    in_run = false;
                }
                "invariant.violation" => run.invariant_violations += 1,
                "fault.inject" => {
                    run.faults.push(FaultSample {
                        t: number(event, "t", idx)? as u64,
                        kind: string(event, "kind", idx)?,
                        start: number(event, "start", idx)? as u64,
                        end: number(event, "end", idx)? as u64,
                        dc: opt_number(event, "dc").map(|d| d as u64),
                    });
                }
                "degraded.mode" => {
                    run.degraded.push(DegradedSample {
                        t: number(event, "t", idx)? as u64,
                        reason: string(event, "reason", idx)?,
                        dc: opt_number(event, "dc").map(|d| d as u64),
                    });
                }
                "feed.fetch" => {
                    run.feed_fetches.push(FeedFetchSample {
                        t: number(event, "t", idx)? as u64,
                        feed: string(event, "feed", idx)?,
                        dc: opt_number(event, "dc").map(|d| d as u64),
                        outcome: string(event, "outcome", idx)?,
                        attempts: number(event, "attempts", idx)? as u64,
                        reason: event
                            .get("reason")
                            .and_then(JsonValue::as_str)
                            .map(str::to_string),
                    });
                }
                "feed.breaker" => {
                    run.feed_breakers.push(BreakerSample {
                        t: number(event, "t", idx)? as u64,
                        feed: string(event, "feed", idx)?,
                        dc: opt_number(event, "dc").map(|d| d as u64),
                        from: string(event, "from", idx)?,
                        to: string(event, "to", idx)?,
                    });
                }
                "feed.quarantine" => {
                    run.feed_quarantined.push((
                        number(event, "t", idx)? as u64,
                        string(event, "feed", idx)?,
                        string(event, "reason", idx)?,
                    ));
                }
                "state.stale" => {
                    run.stale.push(StaleSample {
                        t: number(event, "t", idx)? as u64,
                        stale_fields: number(event, "stale_fields", idx)? as u64,
                        max_age: number(event, "max_age", idx)? as u64,
                        price_mae: number(event, "price_mae", idx)?,
                    });
                }
                "soak.ledger" => {
                    run.ledger.push(LedgerSample {
                        t: number(event, "t", idx)? as u64,
                        offered: number(event, "offered", idx)?,
                        admitted: number(event, "admitted", idx)?,
                        dropped: number(event, "dropped", idx)?,
                        served: number(event, "served", idx)?,
                        route_excess: number(event, "route_excess", idx)?,
                        queued: number(event, "queued", idx)?,
                        balance: number(event, "balance", idx)?,
                    });
                }
                // Run-policy bookkeeping; the analytics don't consume it
                // (checkpoint age is the metrics fold's concern).
                "checkpoint.write" => {}
                _ => {} // additive events from the same schema version
            }
        }
        Ok(TelemetryStream {
            runs,
            bounds,
            total_events,
        })
    }

    /// Matches each run to its `theory.bounds` event by label, consuming
    /// bounds in stream order so repeated labels (e.g. the same scheduler
    /// against two scenarios) pair positionally.
    pub fn bounds_per_run(&self) -> Vec<Option<&BoundsEvent>> {
        let mut used = vec![false; self.bounds.len()];
        self.runs
            .iter()
            .map(|run| {
                let slot = self
                    .bounds
                    .iter()
                    .enumerate()
                    .find(|(i, b)| !used[*i] && b.label == run.display_label())?;
                used[slot.0] = true;
                Some(slot.1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_obs::{Event, JsonlSink, Observer};

    fn sample_stream() -> String {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_event(
            Event::new("theory.bounds")
                .field("label", "V=7.5")
                .field("v", 7.5)
                .field("beta", 0.0)
                .field("delta", 2.0)
                .field("price_max", 0.8)
                .field("queue_bound", 100.0)
                .field("cost_gap_bound", 3.0)
                .field("frame", 24_u64),
        );
        sink.record_event(Event::new("sweep.run").field("label", "V=7.5"));
        sink.record_event(
            Event::new("run.start")
                .field("scheduler", "GreFar(V=7.5)")
                .field("horizon", 2_u64)
                .field("data_centers", 3_u64)
                .field("job_classes", 4_u64),
        );
        for t in 0..2_u64 {
            sink.record_event(
                Event::new("grefar.decide")
                    .field("t", t)
                    .field("v", 7.5)
                    .field("beta", 0.0)
                    .field("objective", -5.0)
                    .field("drift", -6.0)
                    .field("penalty", 1.0)
                    .field("routed", 4.0)
                    .field("processed", 4.0)
                    .field("solver", "greedy")
                    .field("fw_iterations", 0_u64)
                    .field("fw_gap", 0.0)
                    .field("wall_us", 12_u64),
            );
            sink.record_event(
                Event::new("slot")
                    .field("t", t)
                    .field("queue_central", 3.0)
                    .field("queue_local", 2.0)
                    .field("queue_max", 4.0)
                    .field("energy", 1.5)
                    .field("fairness", -0.2)
                    .field("arrivals", 5.0)
                    .field("dropped", 0_u64)
                    .field("wall_us", 20_u64),
            );
        }
        sink.record_event(
            Event::new("run.end")
                .field("slots", 2_u64)
                .field("completed", 9_u64)
                .field("dropped", 0_u64)
                .field("wall_us", 55_u64),
        );
        String::from_utf8(sink.into_inner()).unwrap()
    }

    /// Registry-sync fixture: a stream synthesized from the telemetry
    /// registry — every event, all declared fields — parses without
    /// error, and each in-run event lands in its sample vector. Together
    /// with the verifier's `event-schema` match-coverage check this
    /// proves the parser and the registry cannot drift apart.
    #[test]
    fn registry_synthesized_stream_parses() {
        use grefar_obs::schema::{self, Channel};
        let pre_run = ["sweep.run", "theory.bounds", "run.start"];
        let mut text = String::new();
        let mut push = |name: &str| {
            let sch = schema::lookup(name).expect("registered");
            text.push_str(&schema::synthesize(sch, true).to_json_with_schema(1));
            text.push('\n');
        };
        for name in pre_run {
            push(name);
        }
        for name in schema::names(Channel::Telemetry) {
            if !pre_run.contains(&name) && name != "run.end" {
                push(name);
            }
        }
        push("run.end");

        let stream = TelemetryStream::parse(&text).unwrap();
        assert_eq!(
            stream.total_events,
            schema::names(Channel::Telemetry).count()
        );
        assert_eq!(stream.runs.len(), 1);
        assert_eq!(stream.bounds.len(), 1);
        let run = &stream.runs[0];
        assert_eq!(run.slots.len(), 1);
        assert_eq!(run.decides.len(), 1);
        assert_eq!(run.explains.len(), 1);
        assert_eq!(run.lp_wall_us.len(), 1);
        assert_eq!(run.faults.len(), 1);
        assert_eq!(run.degraded.len(), 1);
        assert_eq!(run.feed_fetches.len(), 1);
        assert_eq!(run.feed_breakers.len(), 1);
        assert_eq!(run.feed_quarantined.len(), 1);
        assert_eq!(run.stale.len(), 1);
        assert_eq!(run.invariant_violations, 1);
        assert!(run.completed.is_some());
    }

    #[test]
    fn segments_a_labeled_run() {
        let stream = TelemetryStream::parse(&sample_stream()).unwrap();
        assert_eq!(stream.runs.len(), 1);
        assert_eq!(stream.bounds.len(), 1);
        let run = &stream.runs[0];
        assert_eq!(run.display_label(), "V=7.5");
        assert_eq!(run.scheduler, "GreFar(V=7.5)");
        assert_eq!(run.slots.len(), 2);
        assert_eq!(run.decides.len(), 2);
        assert!((run.slots[0].queue_total - 5.0).abs() < 1e-12);
        assert_eq!(run.completed, Some(9.0));
        let per_run = stream.bounds_per_run();
        assert!((per_run[0].unwrap().queue_bound - 100.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_labels_pair_positionally() {
        let text = sample_stream();
        let double = format!("{text}{text}");
        let stream = TelemetryStream::parse(&double).unwrap();
        assert_eq!(stream.runs.len(), 2);
        assert_eq!(stream.bounds.len(), 2);
        let per_run = stream.bounds_per_run();
        assert!(per_run.iter().all(Option::is_some));
    }

    #[test]
    fn rejects_future_schema_versions() {
        let line = "{\"schema\":2,\"event\":\"run.start\",\"scheduler\":\"x\",\"horizon\":1,\
                    \"data_centers\":1,\"job_classes\":1}\n";
        let err = TelemetryStream::parse(line).unwrap_err();
        assert!(err.contains("schema version 2"), "{err}");
        assert!(parse_versioned_lines("{\"schema\":-1,\"event\":\"x\"}\n").is_err());
        assert!(parse_versioned_lines("{\"schema\":\"x\",\"event\":\"x\"}\n").is_err());
    }

    #[test]
    fn accepts_unversioned_legacy_lines() {
        // Pre-versioning PR-1 streams carry no schema field.
        let text = "{\"event\":\"run.start\",\"scheduler\":\"Always\",\"horizon\":0,\
                    \"data_centers\":1,\"job_classes\":1}\n\
                    {\"event\":\"run.end\",\"slots\":0,\"completed\":0,\"dropped\":0,\"wall_us\":1}\n";
        let stream = TelemetryStream::parse(text).unwrap();
        assert_eq!(stream.runs.len(), 1);
        assert_eq!(stream.runs[0].scheduler, "Always");
    }

    #[test]
    fn fault_and_degraded_events_are_parsed() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_event(
            Event::new("run.start")
                .field("scheduler", "GreFar(V=1)")
                .field("horizon", 3_u64)
                .field("data_centers", 2_u64)
                .field("job_classes", 1_u64),
        );
        sink.record_event(
            Event::new("fault.inject")
                .field("t", 1_u64)
                .field("kind", "outage")
                .field("start", 1_u64)
                .field("end", 3_u64)
                .field("dc", 0_u64),
        );
        sink.record_event(
            Event::new("degraded.mode")
                .field("t", 1_u64)
                .field("reason", "dc_offline")
                .field("dc", 0_u64),
        );
        sink.record_event(
            Event::new("degraded.mode")
                .field("t", 2_u64)
                .field("reason", "solver_budget_exhausted")
                .field("fw_iterations", 1_u64)
                .field("fw_gap", 0.5),
        );
        sink.record_event(
            Event::new("run.end")
                .field("slots", 3_u64)
                .field("completed", 0_u64)
                .field("dropped", 0_u64)
                .field("wall_us", 10_u64),
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let stream = TelemetryStream::parse(&text).unwrap();
        assert_eq!(stream.runs.len(), 1);
        let run = &stream.runs[0];
        assert_eq!(
            run.faults,
            vec![FaultSample {
                t: 1,
                kind: "outage".to_string(),
                start: 1,
                end: 3,
                dc: Some(0),
            }]
        );
        assert_eq!(run.degraded.len(), 2);
        assert_eq!(run.degraded[0].reason, "dc_offline");
        assert_eq!(run.degraded[0].dc, Some(0));
        assert_eq!(run.degraded[1].reason, "solver_budget_exhausted");
        assert_eq!(run.degraded[1].dc, None);
    }

    #[test]
    fn feed_and_stale_events_are_parsed() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_event(
            Event::new("run.start")
                .field("scheduler", "GreFar(V=1)")
                .field("horizon", 3_u64)
                .field("data_centers", 1_u64)
                .field("job_classes", 1_u64),
        );
        sink.record_event(
            Event::new("feed.fetch")
                .field("t", 0_u64)
                .field("feed", "price")
                .field("dc", 0_u64)
                .field("outcome", "fail")
                .field("attempts", 3_u64)
                .field("reason", "retries_exhausted"),
        );
        sink.record_event(
            Event::new("feed.fetch")
                .field("t", 1_u64)
                .field("feed", "price")
                .field("dc", 0_u64)
                .field("outcome", "ok")
                .field("attempts", 2_u64),
        );
        sink.record_event(
            Event::new("feed.breaker")
                .field("t", 1_u64)
                .field("feed", "price")
                .field("dc", 0_u64)
                .field("from", "closed")
                .field("to", "open"),
        );
        sink.record_event(
            Event::new("feed.quarantine")
                .field("t", 2_u64)
                .field("feed", "arrivals")
                .field("reason", "nan"),
        );
        sink.record_event(
            Event::new("state.stale")
                .field("t", 2_u64)
                .field("stale_fields", 1_u64)
                .field("max_age", 4_u64)
                .field("price_mae", 0.25),
        );
        sink.record_event(
            Event::new("run.end")
                .field("slots", 3_u64)
                .field("completed", 0_u64)
                .field("dropped", 0_u64)
                .field("wall_us", 10_u64),
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let stream = TelemetryStream::parse(&text).unwrap();
        let run = &stream.runs[0];
        assert_eq!(run.feed_fetches.len(), 2);
        assert_eq!(
            run.feed_fetches[0].reason.as_deref(),
            Some("retries_exhausted")
        );
        assert_eq!(run.feed_fetches[1].outcome, "ok");
        assert_eq!(run.feed_fetches[1].reason, None);
        assert_eq!(run.feed_breakers.len(), 1);
        assert_eq!(run.feed_breakers[0].to, "open");
        assert_eq!(
            run.feed_quarantined,
            vec![(2, "arrivals".to_string(), "nan".to_string())]
        );
        assert_eq!(run.stale.len(), 1);
        assert_eq!(run.stale[0].max_age, 4);
        assert!((run.stale[0].price_mae - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bounds_event_reads_optional_stale_fields() {
        let text = "{\"event\":\"theory.bounds\",\"label\":\"V=1\",\"v\":1,\"beta\":0,\
                    \"delta\":2,\"queue_bound\":50,\"cost_gap_bound\":5,\"frame\":24,\
                    \"stale_slots\":6,\"stale_queue_bound\":74}\n";
        let stream = TelemetryStream::parse(text).unwrap();
        assert_eq!(stream.bounds[0].stale_slots, Some(6));
        assert_eq!(stream.bounds[0].stale_queue_bound, Some(74.0));
        // And the fields stay None when absent (pre-feed-layer emitters).
        let plain = TelemetryStream::parse(&sample_stream()).unwrap();
        assert_eq!(plain.bounds[0].stale_slots, None);
        assert_eq!(plain.bounds[0].stale_queue_bound, None);
    }

    #[test]
    fn samples_outside_a_run_are_an_error() {
        let err = TelemetryStream::parse("{\"event\":\"slot\",\"t\":0}\n").unwrap_err();
        assert!(err.contains("outside any run"), "{err}");
    }
}
