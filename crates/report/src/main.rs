//! `grefar-report` — offline telemetry analytics CLI.
//!
//! ```text
//! grefar-report analyze RUN.jsonl [--assert-bound]
//! grefar-report explain RUN.jsonl [SLOT | --top-k N]
//! grefar-report trace RUN.jsonl OUT.json
//! grefar-report alerts RUN.jsonl --rules SPEC [--assert-fire|--assert-quiet]
//! grefar-report diff A.jsonl B.jsonl [--tolerance X]
//! grefar-report bench-gate OLD.json NEW.json [--threshold 10%]
//! grefar-report profile RUN.jsonl [--folded OUT.txt]
//! grefar-report metrics RUN.jsonl [--include-timings]
//! grefar-report promlint METRICS.prom
//! grefar-report lint-diff OLD.json NEW.json
//! ```
//!
//! Exit codes: 0 = pass, 1 = semantic failure (bound exceeded, streams
//! differ, bench regression, lint findings), 2 = usage or parse error.

use grefar_report::{
    bench_gate, diff_streams, export_trace, lint_trace, Analysis, BenchFile, DiffOptions,
    ExplainReport, ProfileReport, TelemetryStream,
};
use std::process::ExitCode;

const USAGE: &str = "usage: grefar-report <command>\n\
\n\
commands:\n\
  analyze RUN.jsonl [--assert-bound]\n\
      Lyapunov decomposition, Theorem 1(a/b) bound occupancy, solver mix\n\
      and wall-time quantiles. With --assert-bound, exits 1 if any run\n\
      exceeds its queue bound or recorded an invariant violation.\n\
  explain RUN.jsonl [SLOT | --top-k N]\n\
      Renders the per-DC decision provenance of one slot (or the top N\n\
      slots by queue growth, default 5) from decision.explain events,\n\
      cross-checked against the grefar.decide drift/penalty split; exits\n\
      1 when the attribution fails to reconcile.\n\
  trace RUN.jsonl OUT.json\n\
      Exports the stream as Chrome trace-event JSON for ui.perfetto.dev:\n\
      slot spans with fault/feed/degraded instants overlaid, plus the\n\
      --profile span tree when recorded. Self-validates the shape before\n\
      writing; use '-' to print to stdout.\n\
  alerts RUN.jsonl --rules SPEC [--assert-fire|--assert-quiet]\n\
      Replays the stream through the alert engine (SPEC is a rule-DSL\n\
      string or a file holding one) and prints the alert.fire/resolve\n\
      events it generates. --assert-fire exits 1 when nothing fired;\n\
      --assert-quiet exits 1 when anything did.\n\
  diff A.jsonl B.jsonl [--tolerance X]\n\
      Compares two streams ignoring _us timing fields and policy events\n\
      (checkpoints, snapshots, profile spans, alerts); exits 1 when they\n\
      differ semantically. X is a relative tolerance (default 0 = exact).\n\
  bench-gate OLD.json NEW.json [--threshold 10%]\n\
      Compares two BENCH_*.json files (cargo bench -- --json); exits 1\n\
      when any case's min wall time regressed beyond the threshold.\n\
  profile RUN.jsonl [--folded OUT.txt]\n\
      Summarizes the profile.span events of a --profile run. With\n\
      --folded, additionally writes folded-stack flamegraph input\n\
      (use '-' to print it to stdout instead of the table).\n\
  metrics RUN.jsonl [--include-timings]\n\
      Rebuilds the Prometheus text exposition from a recorded stream.\n\
      Timing histograms are excluded by default so the rebuild is\n\
      deterministic; --include-timings adds them back.\n\
  promlint METRICS.prom\n\
      Lints a Prometheus text-format exposition file; exits 1 when any\n\
      rule fires.\n\
  lint-diff OLD.json NEW.json\n\
      Diffs two grefar-verify --format json documents; exits 1 when NEW\n\
      carries findings OLD lacked (removed findings are progress).";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("grefar-report: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Parses `"0.1"`, `"10%"` or `"10 %"` into a fraction.
fn parse_fraction(text: &str) -> Result<f64, String> {
    let trimmed = text.trim();
    let (digits, percent) = match trimmed.strip_suffix('%') {
        Some(d) => (d.trim(), true),
        None => (trimmed, false),
    };
    let value: f64 = digits
        .parse()
        .map_err(|_| format!("not a number: {text:?}"))?;
    if value < 0.0 {
        return Err(format!("must be non-negative: {text:?}"));
    }
    Ok(if percent { value / 100.0 } else { value })
}

fn run_analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut assert_bound = false;
    for arg in args {
        match arg.as_str() {
            "--assert-bound" => assert_bound = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("analyze needs a RUN.jsonl path")?;
    let stream = TelemetryStream::parse(&read(path)?)?;
    let analysis = Analysis::from_stream(&stream);
    print!("{}", analysis.render());
    if assert_bound && analysis.any_bound_exceeded() {
        eprintln!("grefar-report: Theorem 1(a) bound exceeded (or invariant violated)");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn run_explain(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut slot = None;
    let mut top_k = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--top-k" => {
                let value = iter.next().ok_or("--top-k needs a count")?;
                top_k = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("not a count: {value:?}"))?,
                );
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other if slot.is_none() && !other.starts_with("--") => {
                slot = Some(
                    other
                        .parse::<u64>()
                        .map_err(|_| format!("not a slot index: {other:?}"))?,
                );
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("explain needs a RUN.jsonl path")?;
    if slot.is_some() && top_k.is_some() {
        return Err("explain takes a SLOT or --top-k, not both".to_string());
    }
    let report = ExplainReport::from_stream(&read(&path)?)?;
    match slot {
        Some(t) => print!("{}", report.render_slot(t)?),
        None => print!("{}", report.render_top(top_k.unwrap_or(5))),
    }
    let failures = report.reconcile();
    if failures.is_empty() {
        println!(
            "attribution reconciles with grefar.decide across {} slot(s)",
            report.slots.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    for failure in &failures {
        eprintln!("grefar-report: {failure}");
    }
    eprintln!(
        "grefar-report: {} attribution reconciliation failure(s)",
        failures.len()
    );
    Ok(ExitCode::from(1))
}

fn run_trace(args: &[String]) -> Result<ExitCode, String> {
    let [path, out] = args else {
        return Err("trace needs a RUN.jsonl path and an output path (or -)".to_string());
    };
    let trace = export_trace(&read(path)?)?;
    let findings = lint_trace(&trace);
    if !findings.is_empty() {
        for finding in &findings {
            eprintln!("grefar-report: trace shape: {finding}");
        }
        return Err(format!(
            "exported trace failed its own shape lint ({} finding(s))",
            findings.len()
        ));
    }
    if out == "-" {
        print!("{trace}");
    } else {
        std::fs::write(out, &trace).map_err(|e| format!("cannot write {out}: {e}"))?;
        let events = trace.lines().count().saturating_sub(2);
        println!("{out}: {events} trace event(s) — open at https://ui.perfetto.dev");
    }
    Ok(ExitCode::SUCCESS)
}

fn run_alerts(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut spec = None;
    let mut assert_fire = false;
    let mut assert_quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rules" => spec = Some(iter.next().ok_or("--rules needs a spec")?.to_string()),
            "--assert-fire" => assert_fire = true,
            "--assert-quiet" => assert_quiet = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("alerts needs a RUN.jsonl path")?;
    let spec = spec.ok_or("alerts needs --rules SPEC")?;
    if assert_fire && assert_quiet {
        return Err("--assert-fire and --assert-quiet are mutually exclusive".to_string());
    }
    // SPEC is a file when one exists at that path, inline DSL otherwise —
    // the same convention the experiment binaries use for --alerts.
    let text = match std::fs::read_to_string(&spec) {
        Ok(contents) => contents,
        Err(_) => spec.clone(),
    };
    let rules = grefar_metrics::parse_rules(&text)?;
    let (_, engine, events) = grefar_metrics::alerts::replay_jsonl(rules, &read(&path)?)?;
    for event in &events {
        println!("{}", event.to_json_with_schema(grefar_obs::SCHEMA_VERSION));
    }
    let fired = events.iter().filter(|e| e.name() == "alert.fire").count();
    let resolved = events.len() - fired;
    println!(
        "{fired} fired, {resolved} resolved, {} still firing at end of stream",
        engine.active_count()
    );
    if assert_fire && fired == 0 {
        eprintln!("grefar-report: expected at least one alert to fire, none did");
        return Ok(ExitCode::from(1));
    }
    if assert_quiet && fired > 0 {
        eprintln!("grefar-report: expected no alerts, {fired} fired");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn run_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerance" => {
                let value = iter.next().ok_or("--tolerance needs a value")?;
                opts.tolerance = parse_fraction(value)?;
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let [a, b] = paths.as_slice() else {
        return Err("diff needs exactly two stream paths".to_string());
    };
    let diff = diff_streams(&read(a)?, &read(b)?, &opts)?;
    print!("{}", diff.render());
    Ok(if diff.is_match() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn run_bench_gate(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut threshold = 0.10;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = iter.next().ok_or("--threshold needs a value")?;
                threshold = parse_fraction(value)?;
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("bench-gate needs exactly two BENCH_*.json paths".to_string());
    };
    let old = BenchFile::parse(&read(old_path)?).map_err(|e| format!("{old_path}: {e}"))?;
    let new = BenchFile::parse(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    let report = bench_gate::gate(&old, &new, threshold);
    print!("{}", report.render());
    Ok(if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn run_profile(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut folded = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--folded" => {
                let value = iter.next().ok_or("--folded needs an output path (or -)")?;
                folded = Some(value.to_string());
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("profile needs a RUN.jsonl path")?;
    let report = ProfileReport::from_stream(&read(&path)?)?;
    match folded.as_deref() {
        Some("-") => print!("{}", report.folded()),
        Some(out) => {
            std::fs::write(out, report.folded()).map_err(|e| format!("cannot write {out}: {e}"))?;
            print!("{}", report.render());
        }
        None => print!("{}", report.render()),
    }
    Ok(ExitCode::SUCCESS)
}

fn run_metrics(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut include_timings = false;
    for arg in args {
        match arg.as_str() {
            "--include-timings" => include_timings = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("metrics needs a RUN.jsonl path")?;
    let mut fold = grefar_metrics::MetricsFold::new(include_timings);
    let folded = fold.fold_jsonl(&read(&path)?)?;
    if folded == 0 {
        return Err(format!("{path}: no events"));
    }
    print!("{}", fold.render());
    Ok(ExitCode::SUCCESS)
}

fn run_promlint(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err("promlint needs exactly one exposition file path".to_string());
    };
    let findings = grefar_metrics::lint(&read(path)?);
    if findings.is_empty() {
        println!("{path}: exposition is clean");
        return Ok(ExitCode::SUCCESS);
    }
    for finding in &findings {
        println!("{path}: {finding}");
    }
    eprintln!("grefar-report: {} lint finding(s)", findings.len());
    Ok(ExitCode::from(1))
}

fn run_lint_diff(args: &[String]) -> Result<ExitCode, String> {
    let [old_path, new_path] = args else {
        return Err("lint-diff needs exactly two findings-document paths".to_string());
    };
    let old =
        grefar_report::parse_findings(&read(old_path)?).map_err(|e| format!("{old_path}: {e}"))?;
    let new =
        grefar_report::parse_findings(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    let diff = grefar_report::diff_findings(&old, &new);
    print!("{}", diff.render());
    Ok(if diff.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage_error("missing command");
    };
    let outcome = match command.as_str() {
        "analyze" => run_analyze(rest),
        "explain" => run_explain(rest),
        "trace" => run_trace(rest),
        "alerts" => run_alerts(rest),
        "diff" => run_diff(rest),
        "bench-gate" => run_bench_gate(rest),
        "profile" => run_profile(rest),
        "metrics" => run_metrics(rest),
        "promlint" => run_promlint(rest),
        "lint-diff" => run_lint_diff(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return usage_error(&format!("unknown command {other:?}")),
    };
    match outcome {
        Ok(code) => code,
        Err(message) => usage_error(&message),
    }
}
