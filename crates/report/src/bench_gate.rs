//! The perf-trajectory gate: compares two `BENCH_*.json` files (written by
//! `cargo bench -- --json`, see the vendored `criterion` shim) and fails
//! when any case's best observed wall time regressed beyond a threshold.
//!
//! Comparisons use the **min** of the recorded samples: the minimum is the
//! least noisy location statistic for wall-clock microbenchmarks (any
//! measurement above it is the same work plus interference).

use crate::stream::parse_versioned_lines;
use grefar_obs::json::JsonValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One benchmark case from a `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Best (minimum) observed wall time, nanoseconds.
    pub min_ns: f64,
    /// Mean over the recorded samples, nanoseconds.
    pub mean_ns: f64,
    /// Samples recorded.
    pub samples: u64,
}

/// A parsed `BENCH_*.json` file: the env fingerprint plus its cases.
#[derive(Debug, Clone, Default)]
pub struct BenchFile {
    /// Environment fingerprint from the `bench.meta` header (arch, os,
    /// cpus, profile, ...), flattened to strings for display.
    pub meta: BTreeMap<String, String>,
    /// Cases by fully qualified name (`group/function/input`).
    pub cases: BTreeMap<String, BenchCase>,
}

impl BenchFile {
    /// Parses a BENCH JSONL document.
    ///
    /// # Errors
    ///
    /// Returns `Err` on malformed JSONL, an unsupported schema version, or
    /// a `bench.case` line missing its name or timings.
    pub fn parse(text: &str) -> Result<Self, String> {
        let events = parse_versioned_lines(text)?;
        let mut file = BenchFile::default();
        for (idx, event) in events.iter().enumerate() {
            let name = event
                .get("event")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing \"event\" field", idx + 1))?;
            match name {
                "bench.meta" => {
                    for (key, value) in event {
                        if key == "event" || key == "schema" {
                            continue;
                        }
                        let rendered = match value {
                            JsonValue::String(s) => s.clone(),
                            JsonValue::Number(n) => format!("{n}"),
                            other => format!("{other:?}"),
                        };
                        file.meta.insert(key.clone(), rendered);
                    }
                }
                "bench.case" => {
                    let case_name = event
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("line {}: bench.case without name", idx + 1))?;
                    let get = |key: &str| {
                        event
                            .get(key)
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| format!("line {}: bench.case missing {key:?}", idx + 1))
                    };
                    file.cases.insert(
                        case_name.to_string(),
                        BenchCase {
                            min_ns: get("min_ns")?,
                            mean_ns: get("mean_ns")?,
                            samples: get("samples")? as u64,
                        },
                    );
                }
                _ => {} // additive lines are fine
            }
        }
        Ok(file)
    }
}

/// One case's old-vs-new verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseVerdict {
    /// `new_min ≤ old_min · (1 + threshold)` — possibly faster.
    Ok {
        /// Relative change `new/old − 1` (negative = faster).
        change: f64,
    },
    /// Slower beyond the threshold.
    Regressed {
        /// Relative change `new/old − 1`.
        change: f64,
    },
    /// Present in the old file only.
    Removed,
    /// Present in the new file only.
    Added,
}

/// The full gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-case verdicts, sorted by case name.
    pub verdicts: Vec<(String, CaseVerdict)>,
    /// The threshold the gate ran with.
    pub threshold: f64,
    /// True when the old and new env fingerprints differ (timings across
    /// different machines are not comparable — reported, not fatal).
    pub env_mismatch: bool,
}

impl GateReport {
    /// True when no case regressed beyond the threshold.
    pub fn passes(&self) -> bool {
        !self
            .verdicts
            .iter()
            .any(|(_, v)| matches!(v, CaseVerdict::Regressed { .. }))
    }

    /// Renders the per-case table and the verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.env_mismatch {
            let _ = writeln!(
                out,
                "warning: env fingerprints differ between the two files — \
                 timings may not be comparable"
            );
        }
        let _ = writeln!(out, "{:<44} {:>10}  verdict", "case", "change");
        for (name, verdict) in &self.verdicts {
            let (change, word) = match verdict {
                CaseVerdict::Ok { change } => (Some(*change), "ok"),
                CaseVerdict::Regressed { change } => (Some(*change), "REGRESSED"),
                CaseVerdict::Removed => (None, "removed"),
                CaseVerdict::Added => (None, "added"),
            };
            match change {
                Some(c) => {
                    let _ = writeln!(out, "{name:<44} {:>+9.1}%  {word}", 100.0 * c);
                }
                None => {
                    let _ = writeln!(out, "{name:<44} {:>10}  {word}", "-");
                }
            }
        }
        let regressions = self
            .verdicts
            .iter()
            .filter(|(_, v)| matches!(v, CaseVerdict::Regressed { .. }))
            .count();
        let _ = writeln!(
            out,
            "bench-gate: {} case(s), {} regression(s) at threshold {:.0}% -> {}",
            self.verdicts.len(),
            regressions,
            100.0 * self.threshold,
            if self.passes() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Gates `new` against `old`: a case regresses when
/// `new.min_ns > old.min_ns · (1 + threshold)`.
pub fn gate(old: &BenchFile, new: &BenchFile, threshold: f64) -> GateReport {
    let mut verdicts = Vec::new();
    for (name, old_case) in &old.cases {
        match new.cases.get(name) {
            None => verdicts.push((name.clone(), CaseVerdict::Removed)),
            Some(new_case) => {
                let change = if old_case.min_ns > 0.0 {
                    new_case.min_ns / old_case.min_ns - 1.0
                } else {
                    0.0
                };
                let verdict = if change > threshold {
                    CaseVerdict::Regressed { change }
                } else {
                    CaseVerdict::Ok { change }
                };
                verdicts.push((name.clone(), verdict));
            }
        }
    }
    for name in new.cases.keys() {
        if !old.cases.contains_key(name) {
            verdicts.push((name.clone(), CaseVerdict::Added));
        }
    }
    verdicts.sort_by(|a, b| a.0.cmp(&b.0));
    GateReport {
        verdicts,
        threshold,
        env_mismatch: old.meta != new.meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_text(min_a: f64, min_b: f64) -> String {
        format!(
            "{{\"schema\":1,\"event\":\"bench.meta\",\"crate\":\"lp\",\"arch\":\"x86_64\",\
             \"cpus\":8,\"profile\":\"release\"}}\n\
             {{\"schema\":1,\"event\":\"bench.case\",\"name\":\"lp/solve/3dc\",\
             \"min_ns\":{min_a},\"mean_ns\":{},\"median_ns\":{min_a},\"samples\":20}}\n\
             {{\"schema\":1,\"event\":\"bench.case\",\"name\":\"lp/solve/9dc\",\
             \"min_ns\":{min_b},\"mean_ns\":{},\"median_ns\":{min_b},\"samples\":20}}\n",
            min_a * 1.1,
            min_b * 1.1,
        )
    }

    #[test]
    fn parses_meta_and_cases() {
        let file = BenchFile::parse(&bench_text(100.0, 900.0)).unwrap();
        assert_eq!(file.meta.get("arch").map(String::as_str), Some("x86_64"));
        assert_eq!(file.cases.len(), 2);
        assert!((file.cases["lp/solve/3dc"].min_ns - 100.0).abs() < 1e-12);
    }

    #[test]
    fn self_comparison_passes() {
        let file = BenchFile::parse(&bench_text(100.0, 900.0)).unwrap();
        let report = gate(&file, &file, 0.10);
        assert!(report.passes());
        assert!(!report.env_mismatch);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let old = BenchFile::parse(&bench_text(100.0, 900.0)).unwrap();
        let new = BenchFile::parse(&bench_text(125.0, 900.0)).unwrap();
        let report = gate(&old, &new, 0.10);
        assert!(!report.passes());
        let rendered = report.render();
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(rendered.contains("+25.0%"), "{rendered}");
        // A 25% slowdown passes a 30% gate.
        assert!(gate(&old, &new, 0.30).passes());
    }

    #[test]
    fn improvements_and_case_churn_do_not_fail() {
        let old = BenchFile::parse(&bench_text(100.0, 900.0)).unwrap();
        let faster = BenchFile::parse(&bench_text(80.0, 900.0)).unwrap();
        assert!(gate(&old, &faster, 0.10).passes());

        let renamed = bench_text(100.0, 900.0).replace("9dc", "27dc");
        let churned = BenchFile::parse(&renamed).unwrap();
        let report = gate(&old, &churned, 0.10);
        assert!(report.passes());
        let kinds: Vec<&CaseVerdict> = report.verdicts.iter().map(|(_, v)| v).collect();
        assert!(kinds.contains(&&CaseVerdict::Removed));
        assert!(kinds.contains(&&CaseVerdict::Added));
    }

    #[test]
    fn env_fingerprint_mismatch_is_flagged() {
        let old = BenchFile::parse(&bench_text(100.0, 900.0)).unwrap();
        let other_arch = bench_text(100.0, 900.0).replace("x86_64", "aarch64");
        let new = BenchFile::parse(&other_arch).unwrap();
        let report = gate(&old, &new, 0.10);
        assert!(report.env_mismatch);
        assert!(report.render().contains("env fingerprints differ"));
    }
}
