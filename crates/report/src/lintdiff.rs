//! Diffing `grefar-verify --format json` baselines.
//!
//! `grefar-verify` renders its findings as a single JSON document (see
//! `crates/verify/src/findings.rs` for the schema). Checking such a
//! document into a baseline and diffing it against a fresh run turns
//! the linter into a ratchet: new findings fail the gate, fixed
//! findings are reported as progress, and pre-existing findings don't
//! block unrelated work.
//!
//! The document nests an array of flat objects, which is one level more
//! structure than [`grefar_obs::json`] parses. Rather than grow that
//! parser, [`parse_findings`] splits the `"findings"` array into its
//! member objects with a string-aware brace scanner and parses each one
//! as a flat object. The header's `errors`/`warnings` counts are
//! cross-checked against the parsed findings, so a truncated or
//! hand-edited document is rejected instead of silently under-reporting.

use grefar_obs::json::{parse_object, JsonValue};
use std::collections::BTreeMap;

/// One finding from a `grefar-verify --format json` document.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintFinding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u64,
    /// The rule that fired.
    pub rule: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// What was found.
    pub message: String,
}

impl LintFinding {
    /// The same one-line rendering the linter's text mode uses.
    pub fn render(&self) -> String {
        let warn = if self.severity == "warning" {
            "/warn"
        } else {
            ""
        };
        format!(
            "{}:{}: [{}{}] {}",
            self.file, self.line, self.rule, warn, self.message
        )
    }
}

/// Parses a `grefar-verify --format json` document.
///
/// # Errors
///
/// Returns `Err` when the document is not from `grefar-verify`, has an
/// unknown schema version, is structurally malformed, or declares
/// `errors`/`warnings` counts that disagree with its findings array.
pub fn parse_findings(text: &str) -> Result<Vec<LintFinding>, String> {
    let (header, body) = split_document(text)?;
    let header = parse_object(&header).map_err(|e| format!("header: {e}"))?;
    match header.get("tool").and_then(JsonValue::as_str) {
        Some("grefar-verify") => {}
        other => return Err(format!("not a grefar-verify document (tool = {other:?})")),
    }
    match header.get("version").and_then(JsonValue::as_f64) {
        Some(1.0) => {}
        other => return Err(format!("unsupported schema version {other:?}")),
    }

    let mut findings = Vec::new();
    for (i, object) in split_objects(&body)?.into_iter().enumerate() {
        let map = parse_object(object).map_err(|e| format!("finding {}: {e}", i + 1))?;
        findings.push(finding_from(&map).map_err(|e| format!("finding {}: {e}", i + 1))?);
    }

    for (key, severity) in [("errors", "error"), ("warnings", "warning")] {
        let declared = header
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("header is missing {key:?}"))?;
        let actual = findings.iter().filter(|f| f.severity == severity).count();
        if declared != actual as f64 {
            return Err(format!(
                "header declares {declared} {key} but the document carries {actual}"
            ));
        }
    }
    Ok(findings)
}

fn finding_from(map: &BTreeMap<String, JsonValue>) -> Result<LintFinding, String> {
    let text = |key: &str| -> Result<String, String> {
        map.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string {key:?}"))
    };
    let line = map
        .get("line")
        .and_then(JsonValue::as_f64)
        // verify: allow(float-eq): exact integrality check — a line number with any fraction is malformed
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .ok_or("missing or non-integer \"line\"")? as u64;
    let severity = text("severity")?;
    if severity != "error" && severity != "warning" {
        return Err(format!("unknown severity {severity:?}"));
    }
    Ok(LintFinding {
        file: text("file")?,
        line,
        rule: text("rule")?,
        severity,
        message: text("message")?,
    })
}

/// Splits the document into its header (everything but the findings
/// array, reclosed into a flat object) and the array body between
/// `"findings":[` and its matching `]`.
fn split_document(text: &str) -> Result<(String, String), String> {
    const MARKER: &str = "\"findings\":";
    let start = text
        .find(MARKER)
        .ok_or("document has no \"findings\" array")?;
    let after = &text[start + MARKER.len()..];
    let open = after
        .find('[')
        .ok_or("\"findings\" is not followed by an array")?;
    let body = &after[open + 1..];
    let close = matching_bracket(body)?;
    let tail = body[close + 1..].trim();
    if tail != "}" {
        return Err(format!("trailing data after findings array: {tail:?}"));
    }
    // Re-close the header so the flat parser accepts it. The marker is
    // preceded by `,` (or `{` for a pathological empty header).
    let mut header = text[..start].trim_end().to_string();
    if header.ends_with(',') {
        header.pop();
    }
    header.push('}');
    Ok((header, body[..close].to_string()))
}

/// Index of the `]` closing the array whose `[` was just consumed,
/// ignoring brackets inside strings.
fn matching_bracket(body: &str) -> Result<usize, String> {
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, b) in body.bytes().enumerate() {
        if escaped {
            escaped = false;
        } else if in_string {
            match b {
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'[' | b'{' => depth += 1,
                b']' if depth == 0 => return Ok(i),
                b']' | b'}' => depth -= 1,
                _ => {}
            }
        }
    }
    Err("unterminated findings array".to_string())
}

/// Splits an array body into its top-level `{...}` member slices.
fn split_objects(body: &str) -> Result<Vec<&str>, String> {
    let mut objects = Vec::new();
    let mut start = None;
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, b) in body.bytes().enumerate() {
        if escaped {
            escaped = false;
        } else if in_string {
            match b {
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' => {
                    if depth == 0 {
                        start = Some(i);
                    }
                    depth += 1;
                }
                b'}' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| format!("unbalanced '}}' at byte {i}"))?;
                    if depth == 0 {
                        let s = start
                            .take()
                            .ok_or_else(|| format!("stray '}}' at byte {i}"))?;
                        objects.push(&body[s..=i]);
                    }
                }
                b',' | b' ' | b'\t' | b'\r' | b'\n' => {}
                other if depth == 0 => {
                    return Err(format!(
                        "unexpected {:?} between findings at byte {i}",
                        char::from(other)
                    ))
                }
                _ => {}
            }
        }
    }
    if depth != 0 || start.is_some() {
        return Err("unterminated finding object".to_string());
    }
    Ok(objects)
}

/// The outcome of diffing two findings documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiff {
    /// Findings present in the new document but not the old baseline.
    pub added: Vec<LintFinding>,
    /// Baseline findings the new document no longer carries.
    pub removed: Vec<LintFinding>,
}

impl LintDiff {
    /// True when the new document introduces no findings the baseline
    /// lacked. Removed findings are progress, not failure.
    pub fn passes(&self) -> bool {
        self.added.is_empty()
    }

    /// Human-readable report: `+` lines for regressions, `-` lines for
    /// fixed findings, and a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.added {
            out.push_str("+ ");
            out.push_str(&f.render());
            out.push('\n');
        }
        for f in &self.removed {
            out.push_str("- ");
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.added.is_empty() && self.removed.is_empty() {
            out.push_str("lint-diff: no change\n");
        } else {
            out.push_str(&format!(
                "lint-diff: {} added, {} removed\n",
                self.added.len(),
                self.removed.len()
            ));
        }
        out
    }
}

/// Diffs two findings lists as multisets keyed on the full finding, so
/// a second identical finding on the same line still counts as added.
pub fn diff_findings(old: &[LintFinding], new: &[LintFinding]) -> LintDiff {
    let mut counts: BTreeMap<&LintFinding, i64> = BTreeMap::new();
    for f in new {
        *counts.entry(f).or_insert(0) += 1;
    }
    for f in old {
        *counts.entry(f).or_insert(0) -= 1;
    }
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for (finding, count) in counts {
        for _ in 0..count.abs() {
            if count > 0 {
                added.push(finding.clone());
            } else {
                removed.push(finding.clone());
            }
        }
    }
    LintDiff { added, removed }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str =
        "{\"version\":1,\"tool\":\"grefar-verify\",\"errors\":0,\"warnings\":0,\"findings\":[]}\n";

    fn doc(findings: &[(&str, u64, &str, &str, &str)]) -> String {
        let errors = findings.iter().filter(|f| f.3 == "error").count();
        let warnings = findings.len() - errors;
        let mut out = format!(
            "{{\"version\":1,\"tool\":\"grefar-verify\",\"errors\":{errors},\
             \"warnings\":{warnings},\"findings\":["
        );
        for (i, (file, line, rule, severity, message)) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"file\":\"{file}\",\"line\":{line},\"rule\":\"{rule}\",\
                 \"severity\":\"{severity}\",\"message\":\"{message}\"}}"
            ));
        }
        if !findings.is_empty() {
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    fn finding(file: &str, line: u64, severity: &str) -> LintFinding {
        LintFinding {
            file: file.to_string(),
            line,
            rule: "hot-path-alloc".to_string(),
            severity: severity.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn parses_empty_and_populated_documents() {
        assert_eq!(parse_findings(CLEAN).unwrap(), Vec::new());
        let text = doc(&[
            ("a.rs", 3, "no-panic", "error", "unwrap in scope"),
            (
                "b.rs",
                0,
                "event-schema",
                "warning",
                "msg with \\\"quote\\\"",
            ),
        ]);
        let findings = parse_findings(&text).unwrap();
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, "no-panic");
        assert_eq!(findings[1].message, "msg with \"quote\"");
        assert_eq!(
            findings[1].render(),
            "b.rs:0: [event-schema/warn] msg with \"quote\""
        );
    }

    #[test]
    fn rejects_foreign_and_corrupt_documents() {
        assert!(parse_findings("{\"tool\":\"other\",\"findings\":[]}").is_err());
        // Version bump, missing findings, truncation.
        assert!(parse_findings(&CLEAN.replace("\"version\":1", "\"version\":2")).is_err());
        assert!(parse_findings("{\"version\":1,\"tool\":\"grefar-verify\"}").is_err());
        let full = doc(&[("a.rs", 1, "r", "error", "m")]);
        assert!(parse_findings(&full[..full.len() - 4]).is_err());
        // Header counts must match the array.
        assert!(parse_findings(&full.replace("\"errors\":1", "\"errors\":2")).is_err());
        assert!(
            parse_findings(&full.replace("\"severity\":\"error\"", "\"severity\":\"fatal\""))
                .is_err()
        );
    }

    #[test]
    fn diff_is_a_multiset_over_whole_findings() {
        let old = vec![finding("a.rs", 1, "error"), finding("a.rs", 1, "error")];
        let new = vec![finding("a.rs", 1, "error"), finding("b.rs", 2, "warning")];
        let diff = diff_findings(&old, &new);
        assert_eq!(diff.added, vec![finding("b.rs", 2, "warning")]);
        assert_eq!(diff.removed, vec![finding("a.rs", 1, "error")]);
        assert!(!diff.passes());
        let render = diff.render();
        assert!(
            render.contains("+ b.rs:2: [hot-path-alloc/warn] m"),
            "{render}"
        );
        assert!(render.contains("- a.rs:1: [hot-path-alloc] m"), "{render}");
        assert!(render.contains("lint-diff: 1 added, 1 removed"), "{render}");
    }

    #[test]
    fn removals_alone_pass() {
        let old = vec![finding("a.rs", 1, "error")];
        let diff = diff_findings(&old, &[]);
        assert!(diff.passes());
        assert_eq!(diff.removed.len(), 1);
        assert!(diff_findings(&[], &[]).passes());
        assert!(diff_findings(&[], &[]).render().contains("no change"));
    }

    #[test]
    fn braces_inside_messages_do_not_confuse_the_splitter() {
        let text = doc(&[(
            "a.rs",
            1,
            "r",
            "error",
            "vec![{}, [1]] and \\\"}]\\\" inside",
        )]);
        let findings = parse_findings(&text).unwrap();
        assert_eq!(findings[0].message, "vec![{}, [1]] and \"}]\" inside");
    }
}
