//! Structural + numeric comparison of two telemetry streams.
//!
//! Timing fields (keys ending in `_us`) are never compared — they vary
//! between machines and runs. Side-channel events (`checkpoint.write`,
//! `health.snapshot`) are skipped entirely: they depend on run policy
//! (checkpoint interval, snapshot cadence) rather than on the schedule,
//! so a checkpointed run must still diff clean against an uninterrupted
//! one. Everything else in the event schema is deterministic per seed, so
//! two runs of the same binary with the same seed must compare equal, and
//! two runs with different seeds must not.

use crate::stream::{parse_versioned_lines, JsonObject};
use grefar_obs::json::JsonValue;
use std::fmt::Write as _;

/// Knobs for [`diff_streams`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance for numeric fields: values `x`, `y` match when
    /// `|x − y| ≤ tolerance · max(|x|, |y|)`. Zero demands bit-equal
    /// formatting (the deterministic-replay case).
    pub tolerance: f64,
    /// Cap on the number of mismatches listed in the rendered report.
    pub max_reported: usize,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.0,
            max_reported: 10,
        }
    }
}

/// The outcome of comparing two streams.
#[derive(Debug, Clone, Default)]
pub struct StreamDiff {
    /// Events in the first stream.
    pub events_a: usize,
    /// Events in the second stream.
    pub events_b: usize,
    /// Human-readable mismatch descriptions, truncated to
    /// [`DiffOptions::max_reported`].
    pub mismatches: Vec<String>,
    /// Total mismatches found (may exceed `mismatches.len()`).
    pub mismatch_count: usize,
    /// Events compared field-by-field.
    pub compared: usize,
}

impl StreamDiff {
    /// True when the streams are semantically identical.
    pub fn is_match(&self) -> bool {
        self.mismatch_count == 0 && self.events_a == self.events_b
    }

    /// Renders the verdict and the (truncated) mismatch list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_match() {
            let _ = writeln!(
                out,
                "streams match: {} events compared (timing fields ignored)",
                self.compared
            );
            return out;
        }
        let _ = writeln!(
            out,
            "streams differ: {} mismatch(es) across {} vs {} events",
            self.mismatch_count, self.events_a, self.events_b
        );
        for m in &self.mismatches {
            let _ = writeln!(out, "  {m}");
        }
        if self.mismatch_count > self.mismatches.len() {
            let _ = writeln!(
                out,
                "  ... and {} more",
                self.mismatch_count - self.mismatches.len()
            );
        }
        out
    }
}

fn is_timing_key(key: &str) -> bool {
    key.ends_with("_us")
}

/// Events excluded from comparison: emitted on policy cadences
/// (checkpoint interval, snapshot interval, profiling flags, alert
/// rules) or by the daemon's service plane (admission acks, supervision,
/// resume bookkeeping), not by the schedule itself. A profiled run under
/// `--profile wall`, an alert-monitored run, or a `grefar-served` session
/// that was `kill -9`'d and resumed must still diff clean against a bare
/// batch run of the same seed and submissions.
fn is_policy_event(event: &JsonObject) -> bool {
    let name = event_name(event);
    matches!(
        name,
        "checkpoint.write" | "checkpoint.truncated" | "health.snapshot" | "profile.span"
    ) || name.starts_with("alert.")
        || name.starts_with("admission.")
        || name.starts_with("served.")
}

fn numbers_match(x: f64, y: f64, tolerance: f64) -> bool {
    if x.is_nan() && y.is_nan() {
        return true;
    }
    let diff = (x - y).abs();
    diff <= tolerance * x.abs().max(y.abs())
}

fn values_match(a: &JsonValue, b: &JsonValue, tolerance: f64) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => numbers_match(x, y, tolerance),
        // Null is how NaN serializes; pairing it with a number is a mismatch,
        // everything non-numeric falls back to structural equality.
        _ => a == b,
    }
}

fn describe(value: Option<&JsonValue>) -> String {
    match value {
        None => "<absent>".to_string(),
        Some(v) => format!("{v:?}"),
    }
}

fn event_name(event: &JsonObject) -> &str {
    event
        .get("event")
        .and_then(JsonValue::as_str)
        .unwrap_or("<unnamed>")
}

/// Compares two telemetry documents event-by-event, ignoring `_us` keys.
///
/// # Errors
///
/// Returns `Err` when either document fails JSONL parsing or schema
/// validation — a malformed stream is an error, not a mismatch.
pub fn diff_streams(a: &str, b: &str, opts: &DiffOptions) -> Result<StreamDiff, String> {
    let mut events_a = parse_versioned_lines(a).map_err(|e| format!("first stream: {e}"))?;
    let mut events_b = parse_versioned_lines(b).map_err(|e| format!("second stream: {e}"))?;
    events_a.retain(|e| !is_policy_event(e));
    events_b.retain(|e| !is_policy_event(e));
    let mut diff = StreamDiff {
        events_a: events_a.len(),
        events_b: events_b.len(),
        ..StreamDiff::default()
    };
    let report = |diff: &mut StreamDiff, msg: String| {
        diff.mismatch_count += 1;
        if diff.mismatches.len() < opts.max_reported {
            diff.mismatches.push(msg);
        }
    };
    if events_a.len() != events_b.len() {
        report(
            &mut diff,
            format!(
                "event counts differ: {} vs {}",
                events_a.len(),
                events_b.len()
            ),
        );
    }
    for (idx, (ea, eb)) in events_a.iter().zip(&events_b).enumerate() {
        diff.compared += 1;
        let name = event_name(ea);
        if name != event_name(eb) {
            report(
                &mut diff,
                format!("event {}: name {name:?} vs {:?}", idx + 1, event_name(eb)),
            );
            continue; // different event kinds — field diffs would be noise
        }
        let keys: std::collections::BTreeSet<&String> = ea.keys().chain(eb.keys()).collect();
        for key in keys {
            if is_timing_key(key) {
                continue;
            }
            match (ea.get(key), eb.get(key)) {
                (Some(va), Some(vb)) if values_match(va, vb, opts.tolerance) => {}
                (va, vb) => report(
                    &mut diff,
                    format!(
                        "event {} ({name}): field {key:?} {} vs {}",
                        idx + 1,
                        describe(va),
                        describe(vb)
                    ),
                ),
            }
        }
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        "{\"schema\":1,\"event\":\"run.start\",\"scheduler\":\"GreFar\",\"horizon\":2}\n\
         {\"schema\":1,\"event\":\"slot\",\"t\":0,\"energy\":1.25,\"wall_us\":17}\n\
         {\"schema\":1,\"event\":\"slot\",\"t\":1,\"energy\":1.5,\"wall_us\":23}\n";

    #[test]
    fn identical_up_to_timing_matches() {
        let other = BASE.replace("\"wall_us\":17", "\"wall_us\":9999");
        let diff = diff_streams(BASE, &other, &DiffOptions::default()).unwrap();
        assert!(diff.is_match(), "{}", diff.render());
        assert_eq!(diff.compared, 3);
    }

    #[test]
    fn value_divergence_is_reported() {
        let other = BASE.replace("\"energy\":1.5", "\"energy\":1.75");
        let diff = diff_streams(BASE, &other, &DiffOptions::default()).unwrap();
        assert!(!diff.is_match());
        assert_eq!(diff.mismatch_count, 1);
        assert!(
            diff.mismatches[0].contains("\"energy\""),
            "{:?}",
            diff.mismatches
        );
        // ... but a generous relative tolerance absorbs it.
        let loose = DiffOptions {
            tolerance: 0.2,
            ..DiffOptions::default()
        };
        assert!(diff_streams(BASE, &other, &loose).unwrap().is_match());
    }

    #[test]
    fn missing_fields_and_extra_events_are_reported() {
        let shorter = BASE.lines().take(2).collect::<Vec<_>>().join("\n");
        let diff = diff_streams(BASE, &shorter, &DiffOptions::default()).unwrap();
        assert!(!diff.is_match());
        assert!(diff.mismatches[0].contains("event counts differ"));

        let missing = BASE.replace(",\"energy\":1.5", "");
        let diff = diff_streams(BASE, &missing, &DiffOptions::default()).unwrap();
        assert!(!diff.is_match());
        assert!(diff.mismatches[0].contains("<absent>"));
    }

    #[test]
    fn mismatch_list_is_truncated_not_lost() {
        let other = BASE.replace("\"schema\":1", "\"schema\":1,\"extra\":1");
        let opts = DiffOptions {
            max_reported: 1,
            ..DiffOptions::default()
        };
        let diff = diff_streams(BASE, &other, &opts).unwrap();
        assert_eq!(diff.mismatch_count, 3);
        assert_eq!(diff.mismatches.len(), 1);
        assert!(diff.render().contains("and 2 more"));
    }

    #[test]
    fn policy_events_are_ignored() {
        // A checkpointed run interleaves checkpoint.write / health.snapshot
        // events that an uninterrupted run never emits; the schedule itself
        // is identical, so the streams must still match.
        let checkpointed = BASE.replace(
            "{\"schema\":1,\"event\":\"slot\",\"t\":1",
            "{\"schema\":1,\"event\":\"checkpoint.write\",\"t\":1}\n\
             {\"schema\":1,\"event\":\"health.snapshot\",\"t\":1,\"verdict\":\"ok\"}\n\
             {\"schema\":1,\"event\":\"profile.span\",\"path\":\"slot\",\"wall_us\":12}\n\
             {\"schema\":1,\"event\":\"alert.fire\",\"t\":1,\"rule\":\"deg\"}\n\
             {\"schema\":1,\"event\":\"alert.resolve\",\"t\":1,\"rule\":\"deg\"}\n\
             {\"schema\":1,\"event\":\"served.start\",\"addr\":\"127.0.0.1:1\",\"slot\":0,\"clock\":\"manual\"}\n\
             {\"schema\":1,\"event\":\"served.restart\",\"t\":1,\"actor\":\"feeds\",\"restarts\":1,\"backoff_ms\":50}\n\
             {\"schema\":1,\"event\":\"admission.accept\",\"t\":1,\"job\":0,\"count\":1,\"seq\":0}\n\
             {\"schema\":1,\"event\":\"checkpoint.truncated\",\"t\":1,\"kept_lines\":4,\"dropped_bytes\":0}\n\
             {\"schema\":1,\"event\":\"slot\",\"t\":1",
        );
        let diff = diff_streams(BASE, &checkpointed, &DiffOptions::default()).unwrap();
        assert!(diff.is_match(), "{}", diff.render());
        assert_eq!(diff.compared, 3);
    }

    #[test]
    fn parse_failures_are_errors_not_mismatches() {
        assert!(diff_streams(BASE, "not json\n", &DiffOptions::default()).is_err());
    }
}
