//! Chrome trace-event (Perfetto) export of a telemetry stream.
//!
//! [`export_trace`] turns a recorded JSONL run into the JSON object
//! format of the Chrome trace-event spec, openable directly in
//! <https://ui.perfetto.dev>: each run becomes a process whose `slots`
//! track carries one 1 ms-per-slot `X` span per scheduled slot, with
//! fault/degraded/feed/stale activity overlaid as instant (`i`) events on
//! sibling tracks. When the stream was recorded with `--profile`, the
//! folded span statistics are re-nested into a `profile` process using
//! the pre-order path layout the profiler emits, tagged with the stable
//! `span_id`/`parent_id` pairs from `grefar_obs::span_id`.
//!
//! The writer is line-oriented — a fixed header, one event per line, a
//! fixed footer — so [`lint_trace`] can validate the shape with per-line
//! checks and no nested-JSON parser, and so the export is byte-stable:
//! every field is derived from the deterministic event stream (logical
//! clocks), never from wall time.

use crate::profile::ProfileReport;
use crate::stream::{Run, TelemetryStream};

/// Fixed first line of every export.
pub const TRACE_HEADER: &str = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
/// Fixed last line of every export.
pub const TRACE_FOOTER: &str = "]}";

/// Microseconds of trace time per slot: slot `t` spans `[t, t+1)` ms.
const SLOT_US: u64 = 1000;

/// Track (thread) ids within each run's process.
const TID_SLOTS: u64 = 1;
const TID_FAULTS: u64 = 2;
const TID_DEGRADED: u64 = 3;
const TID_FEED: u64 = 4;
const TID_STALE: u64 = 5;

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values are not valid
/// JSON, so they render as 0 — the stream never carries them in the
/// fields exported here).
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

fn metadata(kind: &str, label: &str, pid: usize, tid: u64) -> String {
    format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(label)
    )
}

fn instant(name: &str, ts: u64, pid: usize, tid: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\
         \"s\":\"t\",\"args\":{{{args}}}}}",
        escape(name)
    )
}

fn run_events(run: &Run, pid: usize, lines: &mut Vec<String>) {
    lines.push(metadata("process_name", run.display_label(), pid, 0));
    lines.push(metadata("thread_name", "slots", pid, TID_SLOTS));
    for sample in &run.slots {
        lines.push(format!(
            "{{\"name\":\"slot\",\"ph\":\"X\",\"ts\":{},\"dur\":{SLOT_US},\"pid\":{pid},\
             \"tid\":{TID_SLOTS},\"args\":{{\"t\":{},\"queue_max\":{},\"energy\":{}}}}}",
            sample.t * SLOT_US,
            sample.t,
            num(sample.queue_max),
            num(sample.energy)
        ));
    }
    if !run.faults.is_empty() {
        lines.push(metadata("thread_name", "faults", pid, TID_FAULTS));
    }
    for fault in &run.faults {
        let mut args = format!("\"start\":{},\"end\":{}", fault.start, fault.end);
        if let Some(dc) = fault.dc {
            args += &format!(",\"dc\":{dc}");
        }
        lines.push(instant(
            &format!("fault:{}", fault.kind),
            fault.start * SLOT_US,
            pid,
            TID_FAULTS,
            &args,
        ));
    }
    if !run.degraded.is_empty() {
        lines.push(metadata("thread_name", "degraded", pid, TID_DEGRADED));
    }
    for sample in &run.degraded {
        let args = match sample.dc {
            Some(dc) => format!("\"dc\":{dc}"),
            None => String::new(),
        };
        lines.push(instant(
            &format!("degraded:{}", sample.reason),
            sample.t * SLOT_US,
            pid,
            TID_DEGRADED,
            &args,
        ));
    }
    if !run.feed_fetches.is_empty() || !run.feed_breakers.is_empty() {
        lines.push(metadata("thread_name", "feed", pid, TID_FEED));
    }
    for fetch in &run.feed_fetches {
        lines.push(instant(
            &format!("feed:{}:{}", fetch.feed, fetch.outcome),
            fetch.t * SLOT_US,
            pid,
            TID_FEED,
            &format!("\"attempts\":{}", fetch.attempts),
        ));
    }
    for breaker in &run.feed_breakers {
        lines.push(instant(
            &format!("breaker:{}:{}", breaker.feed, breaker.to),
            breaker.t * SLOT_US,
            pid,
            TID_FEED,
            "",
        ));
    }
    if !run.stale.is_empty() {
        lines.push(metadata("thread_name", "stale", pid, TID_STALE));
    }
    for sample in &run.stale {
        lines.push(instant(
            "stale",
            sample.t * SLOT_US,
            pid,
            TID_STALE,
            &format!(
                "\"stale_fields\":{},\"max_age\":{}",
                sample.stale_fields, sample.max_age
            ),
        ));
    }
}

/// Re-nests the profiler's folded per-path statistics into contiguous
/// spans: children are laid out inside their parent's span in emission
/// (pre-order) sequence, so the trace shows the same shape a flamegraph
/// of the folded output would.
fn profile_events(profile: &ProfileReport, lines: &mut Vec<String>) {
    lines.push(metadata("process_name", "profile", 0, 0));
    lines.push(metadata(
        "thread_name",
        &format!("spans ({} clock)", profile.clock),
        0,
        TID_SLOTS,
    ));
    // Stack of open ancestor spans: (path, start ts, child time consumed).
    let mut stack: Vec<(String, u64, u64)> = Vec::new();
    let mut root_cursor = 0_u64;
    for span in &profile.spans {
        let parent = grefar_obs::span_parent(&span.path);
        while let Some((top_path, _, _)) = stack.last() {
            if Some(top_path.as_str()) == parent {
                break;
            }
            stack.pop();
        }
        let ts = match stack.last_mut() {
            Some((_, start, consumed)) => {
                let ts = *start + *consumed;
                *consumed += span.total;
                ts
            }
            None => {
                let ts = root_cursor;
                root_cursor += span.total;
                ts
            }
        };
        let leaf = span.path.rsplit(';').next().unwrap_or(&span.path);
        let mut args = format!(
            "\"span_id\":{},\"count\":{},\"self\":{}",
            grefar_obs::span_id(&span.path),
            span.count,
            span.self_time
        );
        if let Some(parent_path) = parent {
            args += &format!(",\"parent_id\":{}", grefar_obs::span_id(parent_path));
        }
        lines.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\
             \"tid\":{TID_SLOTS},\"args\":{{{args}}}}}",
            escape(leaf),
            span.total
        ));
        stack.push((span.path.clone(), ts, 0));
    }
}

/// Exports a telemetry stream as Chrome trace-event JSON.
///
/// # Errors
///
/// Returns `Err` when the document fails JSONL parsing or mixes span
/// clocks; a stream without `profile.span` events still exports (it just
/// has no profile process).
pub fn export_trace(text: &str) -> Result<String, String> {
    let stream = TelemetryStream::parse(text)?;
    let mut lines = Vec::new();
    for (idx, run) in stream.runs.iter().enumerate() {
        run_events(run, idx + 1, &mut lines);
    }
    // Unprofiled streams are fine; real errors (mixed clocks) are not.
    match ProfileReport::from_stream(text) {
        Ok(profile) => profile_events(&profile, &mut lines),
        Err(error) if error.contains("no profile.span events") => {}
        Err(error) => return Err(error),
    }
    let mut out = String::from(TRACE_HEADER);
    out.push('\n');
    for (idx, line) in lines.iter().enumerate() {
        out.push_str(line);
        if idx + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(TRACE_FOOTER);
    out.push('\n');
    Ok(out)
}

fn has_key(line: &str, key: &str) -> bool {
    line.contains(&format!("\"{key}\":"))
}

/// Validates the line shape of an exported trace: fixed header/footer,
/// one brace-balanced event object per line, a legal `ph` on each, the
/// keys each phase requires, and comma continuation on every event line
/// but the last. Returns one finding per violation; empty means clean.
pub fn lint_trace(trace: &str) -> Vec<String> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = trace.lines().collect();
    if lines.first().copied() != Some(TRACE_HEADER) {
        findings.push(format!("line 1: expected header {TRACE_HEADER:?}"));
    }
    if lines.last().copied() != Some(TRACE_FOOTER) {
        findings.push(format!(
            "line {}: expected footer {TRACE_FOOTER:?}",
            lines.len()
        ));
    }
    if lines.len() < 2 {
        return findings;
    }
    let events = &lines[1..lines.len() - 1];
    for (idx, raw) in events.iter().enumerate() {
        let line_no = idx + 2;
        let wants_comma = idx + 1 < events.len();
        let line = match (raw.strip_suffix(','), wants_comma) {
            (Some(stripped), true) => stripped,
            (None, false) => raw,
            (Some(_), false) => {
                findings.push(format!("line {line_no}: trailing comma on last event"));
                raw.strip_suffix(',').unwrap_or(raw)
            }
            (None, true) => {
                findings.push(format!("line {line_no}: missing comma continuation"));
                raw
            }
        };
        if !line.starts_with("{\"name\":\"") || !line.ends_with('}') {
            findings.push(format!("line {line_no}: not a trace event object"));
            continue;
        }
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        if opens != closes {
            findings.push(format!("line {line_no}: unbalanced braces"));
        }
        for key in ["ph", "ts", "pid", "tid"] {
            if !has_key(line, key) {
                findings.push(format!("line {line_no}: missing {key:?}"));
            }
        }
        let ph = line
            .split("\"ph\":\"")
            .nth(1)
            .and_then(|rest| rest.chars().next());
        match ph {
            Some('X') => {
                if !has_key(line, "dur") {
                    findings.push(format!("line {line_no}: complete event without \"dur\""));
                }
            }
            Some('i') => {
                if !has_key(line, "s") {
                    findings.push(format!("line {line_no}: instant event without scope \"s\""));
                }
            }
            Some('M') => {}
            other => findings.push(format!("line {line_no}: illegal phase {other:?}")),
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> String {
        "{\"schema\":1,\"event\":\"run.start\",\"scheduler\":\"GreFar(V=2)\",\"horizon\":2}\n\
         {\"schema\":1,\"event\":\"fault.inject\",\"t\":1,\"kind\":\"outage\",\"start\":1,\"end\":2,\"dc\":0}\n\
         {\"schema\":1,\"event\":\"degraded.mode\",\"t\":1,\"reason\":\"dc_offline\",\"dc\":0}\n\
         {\"schema\":1,\"event\":\"slot\",\"t\":0,\"queue_central\":1,\"queue_local\":1,\"queue_max\":2,\"energy\":1.5,\"fairness\":0,\"arrivals\":3,\"dropped\":0,\"wall_us\":5}\n\
         {\"schema\":1,\"event\":\"slot\",\"t\":1,\"queue_central\":1,\"queue_local\":1,\"queue_max\":3,\"energy\":1.5,\"fairness\":0,\"arrivals\":3,\"dropped\":0,\"wall_us\":5}\n\
         {\"schema\":1,\"event\":\"state.stale\",\"t\":1,\"stale_fields\":1,\"max_age\":2,\"price_mae\":0.1}\n\
         {\"schema\":1,\"event\":\"run.end\",\"slots\":2,\"completed\":4,\"dropped\":0,\"wall_us\":9}\n\
         {\"schema\":1,\"event\":\"profile.span\",\"stack\":\"slot\",\"clock\":\"logical\",\"count\":2,\"total_ticks\":20,\"self_ticks\":8}\n\
         {\"schema\":1,\"event\":\"profile.span\",\"stack\":\"slot;decide\",\"clock\":\"logical\",\"count\":2,\"total_ticks\":12,\"self_ticks\":12}\n"
            .to_string()
    }

    #[test]
    fn export_is_lint_clean_and_deterministic() {
        let text = sample_stream();
        let trace = export_trace(&text).unwrap();
        assert_eq!(lint_trace(&trace), Vec::<String>::new(), "{trace}");
        assert_eq!(trace, export_trace(&text).unwrap());
        assert!(
            trace.contains("\"name\":\"slot\",\"ph\":\"X\",\"ts\":1000"),
            "{trace}"
        );
        assert!(
            trace.contains("\"name\":\"fault:outage\",\"ph\":\"i\""),
            "{trace}"
        );
        assert!(
            trace.contains("\"name\":\"degraded:dc_offline\""),
            "{trace}"
        );
        assert!(trace.contains("\"name\":\"stale\""), "{trace}");
    }

    #[test]
    fn profile_spans_nest_inside_their_parent() {
        let trace = export_trace(&sample_stream()).unwrap();
        // Root span covers [0, 20); its child starts at the root's ts and
        // carries the parent link.
        assert!(
            trace.contains("\"name\":\"slot\",\"ph\":\"X\",\"ts\":0,\"dur\":20,\"pid\":0"),
            "{trace}"
        );
        let child = trace
            .lines()
            .find(|l| l.contains("\"name\":\"decide\""))
            .unwrap();
        assert!(child.contains("\"ts\":0,\"dur\":12"), "{child}");
        assert!(child.contains("\"parent_id\":"), "{child}");
        assert!(child.contains(&format!(
            "\"span_id\":{}",
            grefar_obs::span_id("slot;decide")
        )));
    }

    #[test]
    fn unprofiled_streams_still_export() {
        let bare: String = sample_stream()
            .lines()
            .filter(|l| !l.contains("profile.span"))
            .map(|l| format!("{l}\n"))
            .collect();
        let trace = export_trace(&bare).unwrap();
        assert_eq!(lint_trace(&trace), Vec::<String>::new());
        assert!(!trace.contains("\"pid\":0,"), "{trace}");
    }

    #[test]
    fn lint_flags_shape_violations() {
        let trace = export_trace(&sample_stream()).unwrap();
        let bad_phase = trace.replacen("\"ph\":\"X\"", "\"ph\":\"Q\"", 1);
        assert!(lint_trace(&bad_phase)
            .iter()
            .any(|f| f.contains("illegal phase")));
        let no_dur = trace.replacen("\"dur\":1000,", "", 1);
        assert!(lint_trace(&no_dur).iter().any(|f| f.contains("dur")));
        let no_header = trace.replacen(TRACE_HEADER, "[", 1);
        assert!(lint_trace(&no_header).iter().any(|f| f.contains("header")));
        let bad_comma = trace.replacen("}},\n", "}}\n", 1);
        assert!(
            lint_trace(&bad_comma).iter().any(|f| f.contains("comma")),
            "{:?}",
            lint_trace(&bad_comma)
        );
    }

    #[test]
    fn labels_are_escaped() {
        let text = sample_stream().replace("GreFar(V=2)", "He said \\\"hi\\\"");
        let trace = export_trace(&text).unwrap();
        assert_eq!(lint_trace(&trace), Vec::<String>::new(), "{trace}");
        assert!(trace.contains("He said \\\"hi\\\""), "{trace}");
    }
}
