//! Decision provenance: the per-slot "why" behind GreFar's
//! drift-plus-penalty decisions.
//!
//! `GreFar::decide_observed` emits one `decision.explain` event per data
//! center per slot (see `grefar-core`), carrying each DC's share of the
//! drift term of objective (14), its energy cost, routing/processing
//! volumes, the binding state of capacity constraint (11), and the
//! machine reason when a fallback overrode the solver. This module
//! groups those events by slot, cross-checks the attribution against the
//! `grefar.decide` decomposition — `Σ_i drift_i` must equal the recorded
//! drift, and `V·(Σ_i e_i − β·f)` the recorded penalty — and renders
//! either one slot's full table or a ranking of the slots that
//! contributed most to peak queue growth.

use crate::stream::{DecideSample, ExplainSample, TelemetryStream};
use std::fmt::Write as _;

/// Relative tolerance for the attribution cross-checks: the explain
/// events and the decide event are computed from the same floats in the
/// same process, so anything beyond accumulation-order noise is a bug.
const RECONCILE_TOLERANCE: f64 = 1e-6;

/// All `decision.explain` rows of one slot, with the matching
/// `grefar.decide` sample and the slot's queue movement.
#[derive(Debug, Clone)]
pub struct SlotExplain {
    /// The slot.
    pub t: u64,
    /// Per-DC provenance rows, in DC order as emitted.
    pub rows: Vec<ExplainSample>,
    /// The slot's `grefar.decide` sample (matched positionally — both
    /// families are emitted once per decided slot, in slot order).
    pub decide: Option<DecideSample>,
    /// `queue_max` at the end of this slot (from the `slot` event).
    pub queue_max: f64,
    /// Growth of `queue_max` over the previous slot — the ranking key
    /// for `--top-k`.
    pub queue_growth: f64,
}

impl SlotExplain {
    /// Sum of the per-DC drift contributions.
    pub fn drift_sum(&self) -> f64 {
        self.rows.iter().map(|r| r.drift).sum()
    }

    /// Sum of the per-DC energy costs.
    pub fn energy_sum(&self) -> f64 {
        self.rows.iter().map(|r| r.energy).sum()
    }

    /// The slot-wide fairness score (rides on the DC-0 row).
    pub fn fairness(&self) -> Option<f64> {
        self.rows.iter().find_map(|r| r.fairness)
    }

    /// The DC whose drift contribution has the largest magnitude.
    pub fn hottest_dc(&self) -> Option<&ExplainSample> {
        self.rows
            .iter()
            .max_by(|a, b| a.drift.abs().total_cmp(&b.drift.abs()))
    }

    /// The first fallback reason recorded for this slot, if any.
    pub fn reason(&self) -> Option<&str> {
        self.rows.iter().find_map(|r| r.reason.as_deref())
    }
}

/// A run's decision provenance, grouped by slot.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The run's display label.
    pub label: String,
    /// One entry per decided slot, in slot order.
    pub slots: Vec<SlotExplain>,
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= RECONCILE_TOLERANCE * a.abs().max(b.abs()).max(1.0)
}

impl ExplainReport {
    /// Builds the report from the first run in `text` that carries
    /// `decision.explain` events.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the document fails parsing or no run carries
    /// provenance events (pre-PR-8 streams, or non-GreFar schedulers).
    pub fn from_stream(text: &str) -> Result<ExplainReport, String> {
        let stream = TelemetryStream::parse(text)?;
        let run = stream
            .runs
            .iter()
            .find(|r| !r.explains.is_empty())
            .ok_or_else(|| {
                "no decision.explain events in stream — was the run scheduled by GreFar \
                 with telemetry enabled?"
                    .to_string()
            })?;
        let mut slots: Vec<SlotExplain> = Vec::new();
        for sample in &run.explains {
            match slots.last_mut() {
                Some(slot) if slot.t == sample.t => slot.rows.push(sample.clone()),
                _ => slots.push(SlotExplain {
                    t: sample.t,
                    rows: vec![sample.clone()],
                    decide: None,
                    queue_max: 0.0,
                    queue_growth: 0.0,
                }),
            }
        }
        let mut previous_queue_max = 0.0;
        for (idx, slot) in slots.iter_mut().enumerate() {
            slot.decide = run.decides.get(idx).cloned();
            if let Some(sample) = run.slots.iter().find(|s| s.t == slot.t) {
                slot.queue_max = sample.queue_max;
                slot.queue_growth = sample.queue_max - previous_queue_max;
                previous_queue_max = sample.queue_max;
            }
        }
        Ok(ExplainReport {
            label: run.display_label().to_string(),
            slots,
        })
    }

    /// Cross-checks every slot's attribution against its `grefar.decide`
    /// decomposition. Empty means everything reconciles.
    pub fn reconcile(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for slot in &self.slots {
            let Some(decide) = &slot.decide else { continue };
            let drift_sum = slot.drift_sum();
            if !close(drift_sum, decide.drift) {
                failures.push(format!(
                    "slot {}: explain drift sum {drift_sum} != decide drift {}",
                    slot.t, decide.drift
                ));
            }
            // Penalty = V·g = V·(energy − β·fairness); the fairness score
            // rides on the DC-0 row, so the check needs it present.
            if let Some(fairness) = slot.fairness() {
                let penalty = decide.v * (slot.energy_sum() - decide.beta * fairness);
                if !close(penalty, decide.penalty) {
                    failures.push(format!(
                        "slot {}: V*(energy - beta*fairness) = {penalty} != decide penalty {}",
                        slot.t, decide.penalty
                    ));
                }
            }
        }
        failures
    }

    fn slot_at(&self, t: u64) -> Option<&SlotExplain> {
        self.slots.iter().find(|s| s.t == t)
    }

    /// Renders one slot's full per-DC "why" table.
    ///
    /// # Errors
    ///
    /// Returns `Err` when slot `t` carries no provenance events.
    pub fn render_slot(&self, t: u64) -> Result<String, String> {
        let slot = self
            .slot_at(t)
            .ok_or_else(|| format!("no decision.explain events for slot {t}"))?;
        let mut out = String::new();
        match &slot.decide {
            Some(decide) => {
                let _ = writeln!(
                    out,
                    "slot {} — {}: objective {:.4}, drift {:.4}, penalty {:.4} ({})",
                    slot.t,
                    self.label,
                    decide.objective,
                    decide.drift,
                    decide.penalty,
                    decide.solver
                );
            }
            None => {
                let _ = writeln!(out, "slot {} — {}", slot.t, self.label);
            }
        }
        let _ = writeln!(
            out,
            "  {:>3}  {:>10}  {:>8}  {:>7}  {:>9}  {:>8}  {:>15}  reason",
            "dc", "drift", "energy", "routed", "processed", "backlog", "busy/capacity"
        );
        for row in &slot.rows {
            // The capacity constraint (11) binds when the scheduled work
            // exhausts the DC's service rate.
            let binding = if row.busy >= row.capacity - 1e-9 * row.capacity.abs().max(1.0) {
                "*"
            } else {
                " "
            };
            let _ = writeln!(
                out,
                "  {:>3}  {:>10.4}  {:>8.4}  {:>7.2}  {:>9.2}  {:>8.2}  {:>7.2}/{:<6.2}{binding} {}",
                row.dc,
                row.drift,
                row.energy,
                row.routed,
                row.processed,
                row.backlog,
                row.busy,
                row.capacity,
                row.reason.as_deref().unwrap_or("-")
            );
        }
        let _ = writeln!(
            out,
            "  sum  {:>10.4}  {:>8.4}   (queue_max {:.2}, growth {:+.2})",
            slot.drift_sum(),
            slot.energy_sum(),
            slot.queue_max,
            slot.queue_growth
        );
        if let Some(fairness) = slot.fairness() {
            let deficits = slot
                .rows
                .iter()
                .find_map(|r| r.deficits.as_deref())
                .unwrap_or("-");
            let _ = writeln!(
                out,
                "  fairness f(t) = {fairness:.4}; deficits (gamma - x) = {deficits}"
            );
        }
        Ok(out)
    }

    /// Renders the `k` slots that contributed most to peak queue growth,
    /// largest growth first (ties broken by slot order).
    pub fn render_top(&self, k: usize) -> String {
        let mut ranked: Vec<&SlotExplain> = self.slots.iter().collect();
        ranked.sort_by(|a, b| {
            b.queue_growth
                .total_cmp(&a.queue_growth)
                .then_with(|| a.t.cmp(&b.t))
        });
        ranked.truncate(k);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "top {} of {} slots by queue growth — {}",
            ranked.len(),
            self.slots.len(),
            self.label
        );
        let _ = writeln!(
            out,
            "  {:>4}  {:>5}  {:>8}  {:>9}  {:>10}  {:>9}  {:>3}  reason",
            "rank", "t", "dq_max", "queue_max", "drift", "penalty", "dc"
        );
        for (rank, slot) in ranked.iter().enumerate() {
            let (drift, penalty) = slot
                .decide
                .as_ref()
                .map(|d| (d.drift, d.penalty))
                .unwrap_or((slot.drift_sum(), f64::NAN));
            let hottest = slot.hottest_dc().map(|r| r.dc.to_string());
            let _ = writeln!(
                out,
                "  {:>4}  {:>5}  {:>+8.2}  {:>9.2}  {:>10.4}  {:>9.4}  {:>3}  {}",
                rank + 1,
                slot.t,
                slot.queue_growth,
                slot.queue_max,
                drift,
                penalty,
                hottest.as_deref().unwrap_or("-"),
                slot.reason().unwrap_or("-")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explain_line(t: u64, dc: u64, drift: f64, energy: f64, extra: &str) -> String {
        format!(
            "{{\"schema\":1,\"event\":\"decision.explain\",\"t\":{t},\"dc\":{dc},\
             \"drift\":{drift},\"energy\":{energy},\"routed\":2,\"processed\":2,\
             \"backlog\":6,\"busy\":4,\"capacity\":15{extra}}}\n"
        )
    }

    fn decide_line(t: u64, drift: f64, penalty: f64) -> String {
        format!(
            "{{\"schema\":1,\"event\":\"grefar.decide\",\"t\":{t},\"v\":2,\"beta\":0.5,\
             \"objective\":{},\"drift\":{drift},\"penalty\":{penalty},\"solver\":\"greedy\",\
             \"fw_iterations\":0,\"fw_gap\":0,\"wall_us\":3}}\n",
            drift + penalty
        )
    }

    fn slot_line(t: u64, queue_max: f64) -> String {
        format!(
            "{{\"schema\":1,\"event\":\"slot\",\"t\":{t},\"queue_central\":1,\"queue_local\":1,\
             \"queue_max\":{queue_max},\"energy\":1,\"fairness\":-0.2,\"arrivals\":3,\
             \"dropped\":0,\"wall_us\":5}}\n"
        )
    }

    /// Two slots, two DCs; penalty = V·(Σe − β·f) = 2·(1.0 − 0.5·(−0.2)) = 2.2.
    fn sample_stream() -> String {
        let mut text = String::from(
            "{\"schema\":1,\"event\":\"run.start\",\"scheduler\":\"GreFar(V=2)\",\"horizon\":2}\n",
        );
        for t in 0..2 {
            text += &decide_line(t, -6.0, 2.2);
            text += &explain_line(
                t,
                0,
                -4.0,
                0.6,
                ",\"fairness\":-0.2,\"deficits\":\"0.1,-0.1\"",
            );
            text += &explain_line(t, 1, -2.0, 0.4, "");
            text += &slot_line(t, if t == 0 { 4.0 } else { 9.0 });
        }
        text += "{\"schema\":1,\"event\":\"run.end\",\"slots\":2,\"completed\":4,\"dropped\":0,\"wall_us\":9}\n";
        text
    }

    #[test]
    fn groups_slots_and_reconciles() {
        let report = ExplainReport::from_stream(&sample_stream()).unwrap();
        assert_eq!(report.slots.len(), 2);
        assert_eq!(report.slots[0].rows.len(), 2);
        assert!((report.slots[1].queue_growth - 5.0).abs() < 1e-12);
        assert!(report.reconcile().is_empty(), "{:?}", report.reconcile());
    }

    #[test]
    fn bad_attribution_fails_reconciliation() {
        let broken = sample_stream().replace("\"drift\":-4,", "\"drift\":-3,");
        let report = ExplainReport::from_stream(&broken).unwrap();
        let failures = report.reconcile();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("drift sum"), "{failures:?}");

        let skewed = sample_stream().replace("\"penalty\":2.2", "\"penalty\":9.9");
        let report = ExplainReport::from_stream(&skewed).unwrap();
        assert!(
            report.reconcile().iter().any(|f| f.contains("penalty")),
            "{:?}",
            report.reconcile()
        );
    }

    #[test]
    fn renders_a_slot_table() {
        let report = ExplainReport::from_stream(&sample_stream()).unwrap();
        let table = report.render_slot(1).unwrap();
        assert!(table.contains("slot 1 — GreFar(V=2)"), "{table}");
        assert!(table.contains("greedy"), "{table}");
        assert!(table.contains("deficits (gamma - x) = 0.1,-0.1"), "{table}");
        assert!(table.contains("4.00/15.00"), "{table}");
        assert!(report.render_slot(7).is_err());
    }

    #[test]
    fn binding_capacity_is_marked() {
        let saturated =
            sample_stream().replace("\"busy\":4,\"capacity\":15", "\"busy\":15,\"capacity\":15");
        let report = ExplainReport::from_stream(&saturated).unwrap();
        let table = report.render_slot(0).unwrap();
        assert!(table.contains("15.00/15.00 *"), "{table}");
    }

    #[test]
    fn top_k_ranks_by_queue_growth() {
        let report = ExplainReport::from_stream(&sample_stream()).unwrap();
        let table = report.render_top(1);
        assert!(table.contains("top 1 of 2 slots"), "{table}");
        // Slot 1 grew by 5.0 vs slot 0's 4.0, so it ranks first.
        let line = table.lines().nth(2).unwrap();
        assert!(line.trim_start().starts_with("1      1"), "{table}");
    }

    #[test]
    fn fallback_reason_is_surfaced() {
        let degraded = sample_stream().replace(
            "\"capacity\":15}",
            "\"capacity\":15,\"reason\":\"dc_offline\"}",
        );
        let report = ExplainReport::from_stream(&degraded).unwrap();
        assert!(report.render_slot(0).unwrap().contains("dc_offline"));
        assert!(report.render_top(2).contains("dc_offline"));
    }

    #[test]
    fn streams_without_provenance_are_an_error() {
        let bare = "{\"schema\":1,\"event\":\"run.start\",\"scheduler\":\"Always\",\"horizon\":0}\n\
                    {\"schema\":1,\"event\":\"run.end\",\"slots\":0,\"completed\":0,\"dropped\":0,\"wall_us\":1}\n";
        let err = ExplainReport::from_stream(bare).unwrap_err();
        assert!(err.contains("decision.explain"), "{err}");
    }
}
