//! Offline analytics over GreFar telemetry.
//!
//! The experiment binaries (`fig2`, `fig4`, `baselines`, `grefar`) emit a
//! JSONL event stream with `--telemetry FILE`; this crate turns those
//! streams into answers, entirely offline:
//!
//! * [`Analysis`] (`grefar-report analyze`) — the Lyapunov drift/penalty
//!   decomposition over time, queue backlog against the Theorem 1(a) bound
//!   `V·C3/δ` with a peak-occupancy percentage, time-average cost
//!   convergence with the Theorem 1(b) `O(1/V)` gap per swept `V`, the
//!   greedy/Frank–Wolfe solver mix, and p50/p95/p99 wall-time breakdowns
//!   per phase. Fault-injected runs additionally get a resilience section:
//!   degraded slots, the fallback-reason mix, and per-fault queue
//!   overshoot/recovery time.
//! * [`diff_streams`] (`grefar-report diff`) — structural and
//!   tolerance-aware numeric comparison of two streams, ignoring `_us`
//!   timing fields; the replay-determinism check as a reusable tool.
//! * [`bench_gate`] (`grefar-report bench-gate`) — compares two
//!   `BENCH_*.json` files written by `cargo bench -- --json` and fails on
//!   wall-time regressions beyond a threshold.
//! * [`ProfileReport`] (`grefar-report profile`) — reads the
//!   `profile.span` events flushed by `--profile` runs back into a
//!   summary table or folded-stack flamegraph input.
//! * [`ExplainReport`] (`grefar-report explain`) — the per-slot decision
//!   provenance tables built from `decision.explain` events: per-DC
//!   drift/energy attribution, binding capacity constraints, fallback
//!   reasons, and a top-k ranking of the slots behind peak queue growth,
//!   cross-checked against the `grefar.decide` decomposition.
//! * [`export_trace`] (`grefar-report trace`) — Chrome trace-event /
//!   Perfetto JSON export of a run, slot spans with fault/feed/degraded
//!   instants overlaid and profile spans re-nested, shape-validated by
//!   [`lint_trace`] and byte-stable under the logical clock.
//! * `grefar-report metrics` / `promlint` — rebuilds the Prometheus
//!   exposition from a recorded stream via `grefar_metrics::MetricsFold`,
//!   and lints exposition files against the text-format rules.
//! * [`diff_findings`] (`grefar-report lint-diff`) — diffs two
//!   `grefar-verify --format json` documents; new findings fail the
//!   gate, fixed findings are reported as progress.
//!
//! Everything consumes the hand-rolled `grefar_obs::json` parser — the
//! crate adds no dependencies beyond `grefar-obs` itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bench_gate;
pub mod diff;
pub mod explain;
pub mod lintdiff;
pub mod profile;
pub mod stream;
pub mod trace;

pub use analyze::{Analysis, BoundCheck, FaultImpact, Resilience, RunAnalysis};
pub use bench_gate::{gate, BenchCase, BenchFile, CaseVerdict, GateReport};
pub use diff::{diff_streams, DiffOptions, StreamDiff};
pub use explain::{ExplainReport, SlotExplain};
pub use lintdiff::{diff_findings, parse_findings, LintDiff, LintFinding};
pub use profile::{ProfileReport, ProfileSpan};
pub use stream::{parse_versioned_lines, DegradedSample, FaultSample, Run, TelemetryStream};
pub use trace::{export_trace, lint_trace};
