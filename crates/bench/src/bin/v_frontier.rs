//! Ablation: the full energy–delay Pareto frontier traced by the
//! cost-delay parameter V (a fine-grained version of Fig. 2's four-point
//! sweep). Theorem 1 predicts cost → offline-optimum as O(1/V) and queue
//! (delay) growth O(V); the frontier makes the trade visible end to end.

use grefar_bench::{maybe_write_csv, print_table, ExperimentOpts};
use grefar_core::{GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, PaperScenario};

fn main() {
    let opts = ExperimentOpts::from_args(1500);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(opts.hours);

    let vs = [
        0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 3.5, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0,
    ];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    println!(
        "Energy-delay frontier (beta = 0), {} hours, seed {}\n",
        opts.hours, opts.seed
    );
    let mut rows = Vec::new();
    for (&v, (_, r)) in vs.iter().zip(&reports) {
        // System-wide mean delay weighted by completions.
        let total_completed: u64 = r.completions.completed_per_dc.iter().sum();
        let mean_delay: f64 = r
            .completions
            .completed_per_dc
            .iter()
            .zip(&r.completions.mean_dc_delay)
            .map(|(&c, &d)| c as f64 * d)
            .sum::<f64>()
            / total_completed.max(1) as f64;
        rows.push(vec![
            v,
            r.average_energy_cost(),
            mean_delay,
            r.completions.mean_sojourn,
            r.max_queue_length(),
        ]);
    }
    print_table(
        &["V", "avg_energy", "mean_delay", "mean_sojourn", "max_queue"],
        &rows,
    );

    // Frontier sanity: energy non-increasing, delay non-decreasing in V.
    let energies: Vec<f64> = rows.iter().map(|r| r[1]).collect();
    let monotone = energies.windows(2).all(|w| w[1] <= w[0] + 0.2);
    println!(
        "\nenergy monotone in V (±0.2 tolerance): {}",
        if monotone {
            "yes"
        } else {
            "NO — investigate"
        }
    );

    let energy_col: Vec<f64> = rows.iter().map(|r| r[1]).collect();
    let delay_col: Vec<f64> = rows.iter().map(|r| r[2]).collect();
    maybe_write_csv(
        opts.csv_path("v_frontier.csv"),
        &["energy", "delay"],
        &[&energy_col, &delay_col],
    );
}
