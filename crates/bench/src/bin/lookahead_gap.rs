//! Theorem 1(b) validation: GreFar's time-average cost approaches the
//! optimal T-step-lookahead cost (19) as V grows, within the analytic gap
//! `(B + D(T−1))/V` (eq. (24)).
//!
//! Uses a downsized scenario so the frame LPs stay small; the lookahead's
//! routing relaxation makes its value a *lower* bound, so the comparison is
//! conservative.

use grefar_bench::{print_table, ExperimentOpts};
use grefar_cluster::{AvailabilityProcess, UniformAvailability};
use grefar_core::{GreFar, GreFarParams, Scheduler, TStepLookahead};
use grefar_sim::{sweep, SimulationInputs};
use grefar_trace::{CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec, PriceProcess};
use grefar_types::{DataCenterId, JobClass, ServerClass, SystemConfig};

fn small_config() -> SystemConfig {
    SystemConfig::builder()
        .server_class(ServerClass::new(1.00, 1.00))
        .server_class(ServerClass::new(0.75, 0.60))
        .data_center("dc-1", vec![30.0, 0.0])
        .data_center("dc-2", vec![0.0, 40.0])
        .account("org-1", 0.6)
        .account("org-2", 0.4)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                .with_max_arrivals(8.0)
                .with_max_route(8.0)
                .with_max_process(20.0),
        )
        .job_class(
            JobClass::new(2.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 1)
                .with_max_arrivals(4.0)
                .with_max_route(4.0)
                .with_max_process(12.0),
        )
        .build()
        .expect("valid small configuration")
}

fn main() {
    let opts = ExperimentOpts::from_args(24 * 20);
    let config = small_config();

    let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![
        Box::new(DiurnalPriceModel::new(0.40, 0.10, 24.0, 6.0).with_noise(0.5, 0.02)),
        Box::new(DiurnalPriceModel::new(0.45, 0.12, 24.0, 14.0).with_noise(0.5, 0.02)),
    ];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> = vec![
        Box::new(UniformAvailability::new(0.95, 1.0)),
        Box::new(UniformAvailability::new(0.95, 1.0)),
    ];
    let mut workload = CosmosLikeWorkload::new(
        vec![
            JobArrivalSpec::diurnal(3.0, 0.5, 14.0, 8.0),
            JobArrivalSpec::diurnal(1.5, 0.5, 15.0, 4.0),
        ],
        24.0,
    );
    let inputs = SimulationInputs::generate(
        &config,
        opts.hours,
        opts.seed,
        &mut prices,
        &mut availability,
        &mut workload,
    );

    // Offline benchmark: T = 24 (one-day frames).
    let frame = 24;
    let horizon = (opts.hours / frame) * frame;
    let inputs = inputs.truncated(horizon);
    let lookahead = TStepLookahead::new(frame).expect("valid frame");
    let plan = lookahead
        .plan(&config, inputs.states(), inputs.all_arrivals())
        .expect("slack scenario is feasible");

    println!(
        "Theorem 1(b) — GreFar vs optimal {frame}-step lookahead, {horizon} hours, seed {}",
        opts.seed
    );
    println!(
        "lookahead benchmark (1/R)·sum G*_r = {:.4} per slot\n",
        plan.average_cost
    );

    let vs = [0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid parameters");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    let mut rows = Vec::new();
    let mut prev_gap = f64::INFINITY;
    for (&v, (_, report)) in vs.iter().zip(&reports) {
        // GreFar's time-average energy cost; subtract the unserved-backlog
        // correction by simply reporting the raw average (queues are
        // bounded, so the backlog contribution vanishes as 1/t_end).
        let cost = report.average_energy_cost();
        let gap = cost - plan.average_cost;
        rows.push(vec![v, cost, gap, gap.max(0.0) * v]);
        prev_gap = prev_gap.min(gap);
    }
    print_table(&["V", "grefar_cost", "gap_vs_la", "gap*V"], &rows);
    println!(
        "\nthe gap decreases in V (O(1/V), Theorem 1b); the lookahead value is a\n\
         lower bound (continuous routing relaxation), so gaps are conservative"
    );
}
