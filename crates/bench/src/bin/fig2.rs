//! Fig. 2: GreFar minimizing energy cost without fairness (β = 0) for
//! V ∈ {0.1, 2.5, 7.5, 20}. Reproduces the three panels:
//! (a) running-average energy cost, (b) running-average job delay in
//! DC #1, (c) the same in DC #2.
//!
//! Expected shape (paper §VI-B.1): larger V → lower energy cost, higher
//! delay; V = 0.1 ≈ delay 1.

use grefar_bench::{
    apply_fault_plan, exit_if_signaled, maybe_write_csv, print_table, signal, ExperimentOpts,
    FIG2_V_VALUES,
};
use grefar_core::{GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, theory_obs, PaperScenario};

fn main() {
    signal::install();
    let opts = ExperimentOpts::from_args(2000);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = apply_fault_plan(scenario.into_inputs(opts.hours), &opts);

    let runs: Vec<(String, Box<dyn Scheduler>)> = FIG2_V_VALUES
        .iter()
        .map(|&v| {
            let grefar = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid parameters");
            (format!("V={v}"), Box::new(grefar) as Box<dyn Scheduler>)
        })
        .collect();
    let mut plane = opts.observability();
    let reports = if plane.is_active() {
        let bounded: Vec<(String, f64, f64)> = FIG2_V_VALUES
            .iter()
            .map(|&v| (format!("V={v}"), v, 0.0))
            .collect();
        theory_obs::emit_theory_bounds(&config, &inputs, &bounded, &mut plane);
        sweep::run_all_observed_until(&config, &inputs, runs, &mut plane, &signal::triggered)
    } else {
        sweep::run_all(&config, &inputs, runs)
    };
    // A latched SIGTERM/SIGINT stops the sweep at a run boundary; flush
    // what completed and exit 128 + signo instead of printing torn tables.
    let plane = exit_if_signaled(plane);

    println!(
        "Fig. 2 — GreFar without fairness (beta = 0), {} hours, seed {}",
        opts.hours, opts.seed
    );
    println!("\n(a) final average energy cost | (b) delay DC#1 | (c) delay DC#2 | delay DC#3 | max queue");
    let mut rows = Vec::new();
    for (label, report) in &reports {
        let v: f64 = label.trim_start_matches("V=").parse().expect("label");
        rows.push(vec![
            v,
            report.average_energy_cost(),
            report.average_dc_delay(0),
            report.average_dc_delay(1),
            report.average_dc_delay(2),
            report.max_queue_length(),
        ]);
    }
    print_table(
        &[
            "V",
            "avg_energy",
            "delay_dc1",
            "delay_dc2",
            "delay_dc3",
            "max_queue",
        ],
        &rows,
    );

    // Time-series panels (running averages over time), as in the figure.
    for (panel, pick) in [
        ("(a) average energy cost over time", 0usize),
        ("(b) average delay in DC #1 over time", 1),
        ("(c) average delay in DC #2 over time", 2),
    ] {
        println!("\n{panel}");
        print!("{:>8}", "hour");
        for (label, _) in &reports {
            print!(" {label:>12}");
        }
        println!();
        let horizon = reports[0].1.horizon;
        let points: Vec<usize> = (1..=10).map(|p| p * (horizon - 1) / 10).collect();
        for &t in &points {
            print!("{t:>8}");
            for (_, report) in &reports {
                let value = match pick {
                    0 => report.energy.running()[t],
                    1 => report.dc_delay[0][t],
                    _ => report.dc_delay[1][t],
                };
                print!(" {value:>12.4}");
            }
            println!();
        }
    }

    let energy_cols: Vec<&[f64]> = reports.iter().map(|(_, r)| r.energy.running()).collect();
    let labels: Vec<&str> = reports.iter().map(|(l, _)| l.as_str()).collect();
    maybe_write_csv(opts.csv_path("fig2a_energy.csv"), &labels, &energy_cols);
    let d1: Vec<&[f64]> = reports
        .iter()
        .map(|(_, r)| r.dc_delay[0].as_slice())
        .collect();
    maybe_write_csv(opts.csv_path("fig2b_delay_dc1.csv"), &labels, &d1);
    let d2: Vec<&[f64]> = reports
        .iter()
        .map(|(_, r)| r.dc_delay[1].as_slice())
        .collect();
    maybe_write_csv(opts.csv_path("fig2c_delay_dc2.csv"), &labels, &d2);

    plane.finish();
}
