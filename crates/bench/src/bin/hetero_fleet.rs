//! Ablation: heterogeneous fleets (`K > 1` server classes *per data
//! center*). §III-A motivates heterogeneity — "data centers operate several
//! generations of servers from multiple vendors" — and §I's key idea (1) is
//! to "preferentially shift power draw to energy-efficient servers". This
//! experiment compares a homogeneous fleet against a mixed fleet of equal
//! total capacity and shows the min-power dispatch exploiting the efficient
//! generation first.

use grefar_bench::{print_table, ExperimentOpts, DEFAULT_V};
use grefar_cluster::{AvailabilityProcess, FullAvailability};
use grefar_core::{GreFar, GreFarParams};
use grefar_sim::{Simulation, SimulationInputs};
use grefar_trace::{CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec, PriceProcess};
use grefar_types::{DataCenterId, JobClass, ServerClass, SystemConfig};

/// One data center, capacity 60 work-units/hour, two variants.
fn build(mixed: bool) -> SystemConfig {
    // Old generation: speed 1.0, power 1.2 (1.2 power/work).
    // New generation: speed 1.5, power 1.2 (0.8 power/work).
    let mut builder = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.2))
        .server_class(ServerClass::new(1.5, 1.2));
    builder = if mixed {
        // 30 + 20·1.5 = 60 capacity.
        builder.data_center("mixed", vec![30.0, 20.0])
    } else {
        // 60 old servers = 60 capacity.
        builder.data_center("uniform", vec![60.0, 0.0])
    };
    builder
        .account("tenant", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                .with_max_arrivals(40.0)
                .with_max_route(60.0)
                .with_max_process(80.0),
        )
        .build()
        .expect("valid configuration")
}

fn run(mixed: bool, hours: usize, seed: u64) -> (f64, f64) {
    let config = build(mixed);
    let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(
        DiurnalPriceModel::new(0.4, 0.08, 24.0, 6.0).with_noise(0.5, 0.02),
    )];
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
        vec![Box::new(FullAvailability)];
    let mut workload =
        CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(20.0, 0.5, 14.0, 45.0)], 24.0);
    let inputs = SimulationInputs::generate(
        &config,
        hours,
        seed,
        &mut prices,
        &mut availability,
        &mut workload,
    );
    let g = GreFar::new(&config, GreFarParams::new(DEFAULT_V, 0.0)).expect("valid");
    let report = Simulation::new(config, inputs, Box::new(g)).run();
    (report.average_energy_cost(), report.average_dc_delay(0))
}

fn main() {
    let opts = ExperimentOpts::from_args(24 * 40);

    let (uniform_energy, uniform_delay) = run(false, opts.hours, opts.seed);
    let (mixed_energy, mixed_delay) = run(true, opts.hours, opts.seed);

    println!(
        "Heterogeneous-fleet ablation (equal capacity 60 work/h), {} hours, seed {}\n",
        opts.hours, opts.seed
    );
    println!("(row 0 = uniform old-generation fleet, row 1 = mixed old+new fleet)");
    print_table(
        &["fleet", "avg_energy", "avg_delay"],
        &[
            vec![0.0, uniform_energy, uniform_delay],
            vec![1.0, mixed_energy, mixed_delay],
        ],
    );

    let saving = 100.0 * (1.0 - mixed_energy / uniform_energy);
    println!(
        "\nthe mixed fleet serves off-peak load entirely on the efficient generation\n\
         (0.8 vs 1.2 power/work) and only spills onto the old one at peaks:\n\
         {saving:.1}% energy saved at equal capacity and comparable delay"
    );
    assert!(
        mixed_energy < uniform_energy,
        "the efficient generation must reduce energy"
    );
}
