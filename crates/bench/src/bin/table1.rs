//! Table I: server configuration and electricity price in data centers —
//! normalized speed, power, average price (measured from the generated
//! trace) and the resulting average energy cost per unit work.
//!
//! Paper values: speeds 1.00/0.75/1.15, powers 1.00/0.60/1.20, average
//! prices 0.392/0.433/0.548, energy cost per unit work 0.392/0.346/0.572.

use grefar_bench::{print_table, ExperimentOpts};
use grefar_sim::PaperScenario;
use grefar_trace::PriceTrace;

fn main() {
    let opts = ExperimentOpts::from_args(2000);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();

    let mut prices = scenario.price_processes();
    let trace = PriceTrace::generate(&mut prices, opts.hours, opts.seed);

    println!(
        "Table I — server configuration and electricity price ({} hours, seed {})",
        opts.hours, opts.seed
    );
    println!("paper: speed 1.00/0.75/1.15, power 1.00/0.60/1.20,");
    println!("       avg price 0.392/0.433/0.548, cost per unit work 0.392/0.346/0.572\n");

    let mut rows = Vec::new();
    for i in 0..config.num_data_centers() {
        let class = &config.server_classes()[i];
        let mean = trace.mean_rate(i);
        let (lo, hi) = trace.rate_range(i);
        rows.push(vec![
            (i + 1) as f64,
            class.speed(),
            class.active_power(),
            mean,
            mean * class.power_per_work(),
            lo,
            hi,
        ]);
    }
    print_table(
        &[
            "dc",
            "speed",
            "power",
            "avg_price",
            "cost_per_work",
            "min_price",
            "max_price",
        ],
        &rows,
    );
}
