//! §VI-B.1 text result: "when V = 7.5 and β = 100 … the average work per
//! time step scheduled to data centers #1, #2, and #3 are 33.967, 48.502
//! and 14.770" — more work goes to the data centers with lower average
//! energy cost per unit work (Table I: DC2 < DC1 < DC3).

use grefar_bench::{print_table, ExperimentOpts, DEFAULT_BETA, DEFAULT_V};
use grefar_core::{GreFar, GreFarParams};
use grefar_sim::{PaperScenario, Simulation};

fn main() {
    let opts = ExperimentOpts::from_args(2000);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(opts.hours);

    println!(
        "Work split — GreFar at V={DEFAULT_V}, {} hours, seed {}",
        opts.hours, opts.seed
    );
    println!("paper (V=7.5, beta=100): 33.967 / 48.502 / 14.770 (DC1 / DC2 / DC3)\n");

    for beta in [0.0, DEFAULT_BETA] {
        let grefar =
            GreFar::new(&config, GreFarParams::new(DEFAULT_V, beta)).expect("valid parameters");
        let report = Simulation::new(config.clone(), inputs.clone(), Box::new(grefar)).run();
        println!("beta = {beta}:");
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                vec![
                    (i + 1) as f64,
                    report.average_work_per_dc(i),
                    report.average_dc_delay(i),
                ]
            })
            .collect();
        print_table(&["dc", "avg_work", "avg_delay"], &rows);
        let total: f64 = (0..3).map(|i| report.average_work_per_dc(i)).sum();
        println!(
            "total work/slot: {total:.3} (arriving {:.3}), avg energy {:.3}, fairness {:.4}\n",
            report.arriving_work.mean(),
            report.average_energy_cost(),
            report.average_fairness()
        );
    }
    println!(
        "the ordering follows Table I's energy cost per unit work\n\
         (DC2 0.346 < DC1 0.392 < DC3 0.572): cheaper sites get more work;\n\
         the fairness term (beta > 0) pulls some work back toward DC3"
    );
}
