//! Fig. 3: the impact of the energy-fairness parameter β — GreFar with
//! β = 0 vs β = 100 at V = 7.5. Three panels: (a) average energy cost,
//! (b) average fairness, (c) average delay in DC #1.
//!
//! Expected shape (§VI-B.2): β = 100 scores much better fairness at only a
//! marginal increase in energy cost, and *reduces* delay (the quadratic
//! fairness function rewards using resources).

use grefar_bench::{maybe_write_csv, print_table, ExperimentOpts, DEFAULT_V};
use grefar_core::{GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, PaperScenario};

fn main() {
    let opts = ExperimentOpts::from_args(2000);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(opts.hours);

    let betas = [0.0, grefar_bench::DEFAULT_BETA];
    let runs: Vec<(String, Box<dyn Scheduler>)> = betas
        .iter()
        .map(|&beta| {
            let g =
                GreFar::new(&config, GreFarParams::new(DEFAULT_V, beta)).expect("valid parameters");
            (format!("beta={beta}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    println!(
        "Fig. 3 — impact of the energy-fairness parameter (V = {DEFAULT_V}), {} hours, seed {}",
        opts.hours, opts.seed
    );
    println!();
    let rows: Vec<Vec<f64>> = reports
        .iter()
        .zip(betas)
        .map(|((_, r), beta)| {
            vec![
                beta,
                r.average_energy_cost(),
                r.average_fairness(),
                r.average_dc_delay(0),
                r.average_dc_delay(1),
                r.average_dc_delay(2),
            ]
        })
        .collect();
    print_table(
        &[
            "beta",
            "avg_energy",
            "avg_fairness",
            "delay_dc1",
            "delay_dc2",
            "delay_dc3",
        ],
        &rows,
    );

    for (panel, pick) in [
        ("(a) average energy cost over time", 0usize),
        ("(b) average fairness over time", 1),
        ("(c) average delay in DC #1 over time", 2),
    ] {
        println!("\n{panel}");
        print!("{:>8}", "hour");
        for (label, _) in &reports {
            print!(" {label:>12}");
        }
        println!();
        let horizon = reports[0].1.horizon;
        for p in 1..=10 {
            let t = p * (horizon - 1) / 10;
            print!("{t:>8}");
            for (_, r) in &reports {
                let value = match pick {
                    0 => r.energy.running()[t],
                    1 => r.fairness.running()[t],
                    _ => r.dc_delay[0][t],
                };
                print!(" {value:>12.4}");
            }
            println!();
        }
    }

    let labels: Vec<&str> = reports.iter().map(|(l, _)| l.as_str()).collect();
    let energy: Vec<&[f64]> = reports.iter().map(|(_, r)| r.energy.running()).collect();
    maybe_write_csv(opts.csv_path("fig3a_energy.csv"), &labels, &energy);
    let fair: Vec<&[f64]> = reports.iter().map(|(_, r)| r.fairness.running()).collect();
    maybe_write_csv(opts.csv_path("fig3b_fairness.csv"), &labels, &fair);
    let delay: Vec<&[f64]> = reports
        .iter()
        .map(|(_, r)| r.dc_delay[0].as_slice())
        .collect();
    maybe_write_csv(opts.csv_path("fig3c_delay_dc1.csv"), &labels, &delay);
}
