//! Fig. 5: a one-day snapshot of DC #1 — (top) the electricity price and
//! (bottom) the work GreFar vs Always schedule there each hour
//! (β = 0, V = 7.5).
//!
//! Expected shape (§VI-B.3): Always tracks arrivals regardless of price;
//! GreFar concentrates its work in the low-price hours.

use grefar_bench::{maybe_write_csv, ExperimentOpts, DEFAULT_V};
use grefar_core::{Always, GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, PaperScenario};

fn main() {
    // Simulate several days of warm-up, then show one day.
    let opts = ExperimentOpts::from_args(24 * 8);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(opts.hours);

    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "GreFar".into(),
            Box::new(
                GreFar::new(&config, GreFarParams::new(DEFAULT_V, 0.0)).expect("valid parameters"),
            ),
        ),
        ("Always".into(), Box::new(Always::new(&config))),
    ];
    let reports = sweep::run_all(&config, &inputs, runs);
    let grefar = &reports[0].1;
    let always = &reports[1].1;

    // The displayed window: the last full day.
    let end = opts.hours;
    let start = end - 24;

    println!(
        "Fig. 5 — one-day snapshot of DC #1 (beta = 0, V = {DEFAULT_V}), hours {start}..{end}, seed {}\n",
        opts.seed
    );
    println!(
        "{:>6} {:>9} {:>14} {:>14}",
        "hour", "price", "work_grefar", "work_always"
    );
    for t in start..end {
        println!(
            "{:>6} {:>9.3} {:>14.2} {:>14.2}",
            t - start,
            grefar.prices[0][t],
            grefar.work_per_dc[0].instant()[t],
            always.work_per_dc[0].instant()[t],
        );
    }

    // Quantify the visual claim over the whole run: the *work-weighted*
    // average price each policy pays in DC #1, against the plain
    // time-average price. Price-chasing shows up as weighted < unweighted;
    // a price-blind policy pays ≈ the (arrival-weighted) average.
    let window = start..end;
    let price: Vec<f64> = window.clone().map(|t| grefar.prices[0][t]).collect();
    let gw: Vec<f64> = window
        .clone()
        .map(|t| grefar.work_per_dc[0].instant()[t])
        .collect();
    let aw: Vec<f64> = window.map(|t| always.work_per_dc[0].instant()[t]).collect();
    let weighted = |report: &grefar_sim::SimulationReport| -> f64 {
        let w = report.work_per_dc[0].instant();
        let p = &report.prices[0];
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        w.iter().zip(p).map(|(wi, pi)| wi * pi).sum::<f64>() / total
    };
    let mean_price: f64 = grefar.prices[0].iter().sum::<f64>() / grefar.prices[0].len() as f64;
    let grefar_paid = weighted(grefar);
    println!("\nDC #1 work-weighted average price over the whole run:");
    println!("  time-average price: {mean_price:.4}");
    println!("  GreFar pays:        {grefar_paid:.4}  (below average: rides the dips)");
    println!(
        "  Always pays:        {:.4}  (price-blind)",
        weighted(always)
    );

    maybe_write_csv(
        opts.csv_path("fig5_snapshot.csv"),
        &["price_dc1", "work_grefar", "work_always"],
        &[&price, &gw, &aw],
    );
}
