//! Theorem 1(a) validation: for every V, the largest queue observed in a
//! long simulation stays below the analytic bound `V·C3/δ` (eq. (23)), and
//! the observed maxima grow O(V).

use grefar_bench::{print_table, ExperimentOpts};
use grefar_core::theory::{slackness_delta_trace, TheoryBounds};
use grefar_core::{GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, PaperScenario};

fn main() {
    let opts = ExperimentOpts::from_args(2000);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(opts.hours);

    let delta = slackness_delta_trace(&config, &inputs.capacities(&config), inputs.all_arrivals())
        .expect("the paper scenario satisfies the slackness conditions");
    // A price bound for g^max: the observed maximum price across the trace.
    let price_max = (0..config.num_data_centers())
        .flat_map(|i| (0..inputs.horizon()).map(move |t| (i, t)))
        .map(|(i, t)| inputs.state(t).data_center(i).price())
        .fold(0.0f64, f64::max);
    let bounds = TheoryBounds::new(&config, delta, price_max, 0.0);

    println!(
        "Theorem 1(a) — queue bounds, {} hours, seed {} (delta = {delta:.3}, price_max = {price_max:.3})",
        opts.hours, opts.seed
    );
    println!(
        "constants: B = {:.1}, D = {:.1}, q_max = {:.1}, g_spread = {:.1}\n",
        bounds.b_const(),
        bounds.d_const(),
        bounds.q_max(),
        bounds.g_spread()
    );

    let vs = [0.1, 1.0, 2.5, 7.5, 20.0, 50.0];
    let runs: Vec<(String, Box<dyn Scheduler>)> = vs
        .iter()
        .map(|&v| {
            let g = GreFar::new(&config, GreFarParams::new(v, 0.0)).expect("valid parameters");
            (format!("V={v}"), Box::new(g) as Box<dyn Scheduler>)
        })
        .collect();
    let reports = sweep::run_all(&config, &inputs, runs);

    let mut rows = Vec::new();
    for (&v, (_, report)) in vs.iter().zip(&reports) {
        let observed = report.max_queue_length();
        let bound = bounds.queue_bound(v);
        rows.push(vec![v, observed, bound, observed / bound]);
        assert!(
            observed <= bound,
            "V={v}: observed max queue {observed} exceeds the Theorem 1 bound {bound}"
        );
    }
    print_table(&["V", "max_queue_obs", "bound_VC3/delta", "ratio"], &rows);
    println!("\nall observed maxima are below the analytic bound — Theorem 1(a) holds");
}
