//! Fig. 1: a three-day trace of (top) hourly electricity prices in the
//! three data centers and (bottom) total work of arrived jobs per
//! organization — showing time-dependent, non-stationary submissions.

use grefar_bench::{maybe_write_csv, ExperimentOpts};
use grefar_sim::PaperScenario;
use grefar_trace::{PriceTrace, WorkloadTrace};

fn main() {
    let opts = ExperimentOpts::from_args(72);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();

    let mut prices = scenario.price_processes();
    let price_trace = PriceTrace::generate(&mut prices, opts.hours, opts.seed);
    let mut workload = scenario.workload();
    let work_trace = WorkloadTrace::generate(&mut workload, opts.hours, opts.seed ^ 0x5eed);

    let account_of: Vec<usize> = config
        .job_classes()
        .iter()
        .map(|j| j.account().index())
        .collect();
    let by_org =
        work_trace.work_by_account(&config.work_vector(), &account_of, config.num_accounts());

    println!(
        "Fig. 1 — three-day trace of prices and arrived work ({} hours, seed {})\n",
        opts.hours, opts.seed
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "hour", "price1", "price2", "price3", "org1", "org2", "org3", "org4"
    );
    for t in 0..opts.hours {
        println!(
            "{:>6} {:>8.3} {:>8.3} {:>8.3} | {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            t,
            price_trace.tariff(0, t as u64).base_rate(),
            price_trace.tariff(1, t as u64).base_rate(),
            price_trace.tariff(2, t as u64).base_rate(),
            by_org[t][0],
            by_org[t][1],
            by_org[t][2],
            by_org[t][3],
        );
    }

    // Summary statistics (the features the paper's Fig. 1 demonstrates).
    println!("\nper-organization mean work/hour (target split 40/30/15/15 of ~97):");
    for m in 0..config.num_accounts() {
        let mean: f64 = by_org.iter().map(|row| row[m]).sum::<f64>() / by_org.len() as f64;
        println!("  {}: {:.2}", config.accounts()[m].name(), mean);
    }

    let p: Vec<Vec<f64>> = (0..3).map(|i| price_trace.rates(i)).collect();
    maybe_write_csv(
        opts.csv_path("fig1_prices.csv"),
        &["dc1", "dc2", "dc3"],
        &[&p[0], &p[1], &p[2]],
    );
    let orgs: Vec<Vec<f64>> = (0..4)
        .map(|m| by_org.iter().map(|row| row[m]).collect())
        .collect();
    maybe_write_csv(
        opts.csv_path("fig1_work.csv"),
        &["org1", "org2", "org3", "org4"],
        &[&orgs[0], &orgs[1], &orgs[2], &orgs[3]],
    );
}
