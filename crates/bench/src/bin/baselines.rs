//! Extended policy comparison beyond Fig. 4: GreFar against the full
//! baseline family on identical inputs —
//!
//! * `Always`    — serve immediately (§VI-B.3),
//! * `LocalOnly` — no geo-scheduling (each type stays in its home DC),
//! * `PriceGreedy` — spatially greedy, temporally blind (the §II "local
//!   optimization at each time period" strawman),
//! * `GreFar`    — β = 0 and β = 100 at V = 7.5,
//! * `MPC`       — receding-horizon planning with an oracle forecast
//!   (what §II's prediction-based approaches could at best achieve).

use grefar_bench::{
    apply_fault_plan, exit_if_signaled, print_table, signal, ExperimentOpts, DEFAULT_BETA,
    DEFAULT_V,
};
use grefar_core::{Always, GreFar, GreFarParams, LocalOnly, PriceGreedy, Scheduler};
use grefar_sim::{sweep, theory_obs, MpcScheduler, PaperScenario};

fn print_comparison(title: &str, reports: &[(String, grefar_sim::SimulationReport)]) {
    println!("{title}\n");
    println!(
        "{:<14} {:>11} {:>11} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "policy",
        "avg_energy",
        "fairness",
        "delay_dc1",
        "p95_dc1",
        "delay_dc2",
        "delay_dc3",
        "max_queue"
    );
    for (label, r) in reports {
        println!(
            "{label:<14} {:>11.3} {:>11.4} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.0}",
            r.average_energy_cost(),
            r.average_fairness(),
            r.average_dc_delay(0),
            r.dc_delay_quantiles[0].p95,
            r.average_dc_delay(1),
            r.average_dc_delay(2),
            r.max_queue_length(),
        );
    }
    println!();
}

fn main() {
    signal::install();
    let opts = ExperimentOpts::from_args(500);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = apply_fault_plan(scenario.clone().into_inputs(opts.hours), &opts);

    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        ("Always".into(), Box::new(Always::new(&config))),
        ("LocalOnly".into(), Box::new(LocalOnly::new(&config))),
        ("PriceGreedy".into(), Box::new(PriceGreedy::new(&config))),
        (
            "GreFar b=0".into(),
            Box::new(GreFar::new(&config, GreFarParams::new(DEFAULT_V, 0.0)).expect("valid")),
        ),
        (
            "GreFar b=100".into(),
            Box::new(
                GreFar::new(&config, GreFarParams::new(DEFAULT_V, DEFAULT_BETA)).expect("valid"),
            ),
        ),
        (
            "MPC oracle".into(),
            Box::new(MpcScheduler::new(&config, inputs.clone(), 6, 0.02)),
        ),
    ];
    let mut plane = opts.observability();
    let reports = if plane.is_active() {
        let bounded = vec![
            ("GreFar b=0".to_string(), DEFAULT_V, 0.0),
            ("GreFar b=100".to_string(), DEFAULT_V, DEFAULT_BETA),
        ];
        theory_obs::emit_theory_bounds(&config, &inputs, &bounded, &mut plane);
        sweep::run_all_observed_until(&config, &inputs, runs, &mut plane, &signal::triggered)
    } else {
        sweep::run_all(&config, &inputs, runs)
    };
    // A latched SIGTERM/SIGINT stops the sweep at a run boundary; flush
    // what completed and exit 128 + signo instead of printing torn tables.
    let mut plane = exit_if_signaled(plane);
    print_comparison(
        &format!(
            "Policy comparison, nominal load (≈22% utilization), {} hours, seed {}",
            opts.hours, opts.seed
        ),
        &reports,
    );
    println!(
        "at nominal load every policy keeps up; spatially-greedy policies look\n\
         strong on energy because capacity is abundant everywhere\n"
    );

    // Capacity pressure: 2.5x load. Spatially greedy policies herd the
    // whole load onto one site and melt down; GreFar's queue-driven routing
    // keeps delays bounded.
    let heavy = PaperScenario::default()
        .with_seed(opts.seed)
        .with_load_scale(2.5);
    let heavy_config = heavy.config().clone();
    let heavy_hours = opts.hours.min(500);
    let heavy_inputs = apply_fault_plan(heavy.into_inputs(heavy_hours), &opts);
    let heavy_runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        ("Always".into(), Box::new(Always::new(&heavy_config))),
        ("LocalOnly".into(), Box::new(LocalOnly::new(&heavy_config))),
        (
            "PriceGreedy".into(),
            Box::new(PriceGreedy::new(&heavy_config)),
        ),
        (
            "GreFar b=0".into(),
            Box::new(GreFar::new(&heavy_config, GreFarParams::new(DEFAULT_V, 0.0)).expect("valid")),
        ),
    ];
    let heavy_reports = if plane.is_active() {
        let bounded = vec![("GreFar b=0".to_string(), DEFAULT_V, 0.0)];
        theory_obs::emit_theory_bounds(&heavy_config, &heavy_inputs, &bounded, &mut plane);
        sweep::run_all_observed_until(
            &heavy_config,
            &heavy_inputs,
            heavy_runs,
            &mut plane,
            &signal::triggered,
        )
    } else {
        sweep::run_all(&heavy_config, &heavy_inputs, heavy_runs)
    };
    // Same boundary check after the heavy phase.
    let plane = exit_if_signaled(plane);
    print_comparison(
        &format!(
            "Policy comparison, 2.5x load (≈55% utilization), {heavy_hours} hours, seed {}",
            opts.seed
        ),
        &heavy_reports,
    );

    let by = |reports: &[(String, grefar_sim::SimulationReport)], l: &str| -> f64 {
        reports
            .iter()
            .find(|(label, _)| label == l)
            .map(|(_, r)| r.dc_delay_quantiles[0].p95.max(r.dc_delay_quantiles[1].p95))
            .expect("label exists")
    };
    let rows = vec![vec![
        by(&heavy_reports, "GreFar b=0"),
        by(&heavy_reports, "Always"),
        by(&heavy_reports, "LocalOnly"),
        by(&heavy_reports, "PriceGreedy"),
    ]];
    println!("worst p95 delay across DC1/DC2 under 2.5x load:");
    print_table(&["grefar", "always", "local_only", "price_greedy"], &rows);
    println!(
        "\nunder capacity pressure, home-pinning (LocalOnly) and price-herding\n\
         (PriceGreedy) build deep queues at single sites; GreFar's queue-aware\n\
         routing spreads load and keeps tail delays bounded (Theorem 1a)"
    );

    plane.finish();
}
