//! Ablation: the value of forecasts. GreFar (forecast-free) against
//! receding-horizon MPC with oracle and progressively noisier price
//! forecasts, all on identical inputs.
//!
//! The paper's motivation (§I): statistics "may be estimated or predicted",
//! but GreFar "does not require any prior knowledge of the system
//! statistics … or any prediction on future job arrivals". This experiment
//! quantifies what that robustness is worth.

use grefar_bench::{print_table, ExperimentOpts, DEFAULT_V};
use grefar_core::{GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, MpcScheduler, PaperScenario};

fn main() {
    let opts = ExperimentOpts::from_args(300);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(opts.hours);

    let mut runs: Vec<(String, Box<dyn Scheduler>)> = vec![(
        "grefar".into(),
        Box::new(GreFar::new(&config, GreFarParams::new(DEFAULT_V, 0.0)).expect("valid")),
    )];
    for noise in [0.0, 0.1, 0.3, 0.6] {
        runs.push((
            format!("mpc_noise_{noise}"),
            Box::new(MpcScheduler::new(&config, inputs.clone(), 6, 0.02).with_price_noise(noise)),
        ));
    }
    let reports = sweep::run_all(&config, &inputs, runs);

    println!(
        "Forecast value — GreFar (no forecast) vs MPC at growing forecast error,\n\
         {} hours, seed {}\n",
        opts.hours, opts.seed
    );
    let mut rows = Vec::new();
    for (idx, (_, r)) in reports.iter().enumerate() {
        rows.push(vec![
            idx as f64,
            r.average_energy_cost(),
            r.average_dc_delay(0),
            r.dc_delay_quantiles[0].p95,
            r.max_queue_length(),
        ]);
    }
    println!("(row 0 = GreFar; rows 1.. = MPC with noise 0.0, 0.1, 0.3, 0.6)");
    print_table(
        &["row", "avg_energy", "delay_dc1", "p95_dc1", "max_queue"],
        &rows,
    );
    println!(
        "\nGreFar needs no forecast. The oracle MPC buys lower energy with its perfect\n\
         price forecast; as the forecast degrades MPC loses control of its own\n\
         delay/backlog target (delays and queues drift upward row by row) because it\n\
         increasingly believes cheaper slots lie ahead. GreFar's delay is guaranteed\n\
         by Theorem 1 regardless — and its per-slot decision is a greedy pass, not an LP."
    );
}
