//! `grefar_cli` — run any scheduler against the paper scenario or against
//! replayed CSV traces, from the command line.
//!
//! ```text
//! USAGE:
//!   grefar_cli [--scheduler NAME] [--v V] [--beta B] [--hours N] [--seed S]
//!              [--load-scale X] [--prices FILE] [--workload FILE]
//!              [--admission-cap C] [--csv DIR] [--telemetry FILE.jsonl|-]
//!              [--faults PLAN] [--feeds PROFILE] [--checkpoint FILE]
//!              [--checkpoint-every N] [--kill-at SLOT] [--resume]
//!              [--metrics-snapshot FILE|-] [--metrics-listen ADDR]
//!              [--alerts RULES] [--profile logical|wall]
//!
//! SCHEDULERS:
//!   grefar (default) | always | local-only | price-greedy | mpc
//! ```
//!
//! With `--prices`/`--workload`, the CSV traces (see
//! `grefar_trace::import`) replace the synthetic processes; both files must
//! cover the requested horizon or they are cycled.
//!
//! `--faults` overlays a fault plan (inline DSL spec or a path to a spec
//! file) on the run: data faults transform the frozen inputs, solver
//! squeezes throttle the scheduler at run time, and `fault.inject` /
//! `degraded.mode` events appear in the telemetry.
//!
//! `--feeds` interposes the resilient feed layer (inline
//! `grefar_ingest::FeedProfile` DSL spec or a path to a spec file): the
//! scheduler acts on estimated state with retry/backoff/breaker semantics,
//! `feed.*` / `state.stale` events appear in the telemetry, and the
//! emitted `theory.bounds` carries the degraded staleness certificate.
//! Without the flag the run is byte-identical to the plain engine.
//!
//! `--checkpoint FILE` snapshots the full simulation state to `FILE` every
//! `--checkpoint-every N` slots (default 100). `--kill-at SLOT` injects a
//! crash just before `SLOT` (checkpoint written first; exit status 3), and
//! `--resume` continues bit-identically from the checkpoint — rebuild the
//! run with the *same* seed/scheduler/fault flags, and pass the same
//! `--telemetry FILE` to extend the original stream in place.
//!
//! `--metrics-snapshot FILE` folds the event stream into a Prometheus
//! text-format exposition, atomically rewritten on a slot cadence (`-` =
//! one dump to stdout at the end). `--metrics-listen ADDR` serves the same
//! exposition live at `GET /metrics` plus a three-state health verdict at
//! `GET /healthz`. `--alerts RULES` evaluates declarative alert rules
//! (inline `grefar_metrics::alerts` DSL spec or a path to a spec file)
//! against the fold as the run progresses: fired rules appear as
//! `alert.fire`/`alert.resolve` telemetry events, in the health snapshot,
//! and on the listener's `GET /alerts` endpoint. `--profile logical|wall`
//! attributes time across the
//! per-slot span tree and appends `profile.span` events to the telemetry
//! stream (`grefar-report profile` renders them; the logical clock is
//! fully deterministic).
//!
//! `SIGTERM`/`SIGINT` are honored at checkpoint boundaries: with
//! `--checkpoint`, the first signal cuts the run at the next boundary —
//! checkpoint written, telemetry flushed — and exits `128 + signo` with a
//! `--resume` hint. Without `--checkpoint` there is no safe cut point, so
//! the first signal latches and a second one terminates immediately.

use grefar_bench::{
    format_table, load_fault_plan, load_feed_profile, maybe_write_csv, signal, usage_error,
    ObsPlane,
};
use grefar_cluster::AvailabilityProcess;
use grefar_core::{Always, GreFar, GreFarParams, LocalOnly, PriceGreedy, Scheduler};
use grefar_obs::SpanClock;
use grefar_sim::{
    Checkpoint, MpcScheduler, PaperScenario, RunPolicy, SimError, Simulation, SimulationInputs,
};
use grefar_trace::import::{load_price_trace, load_workload_trace};
use grefar_trace::{PriceProcess, ReplayPrice, ReplayWorkload};
use std::path::PathBuf;

/// Exit status when `--kill-at` fired: the run was deliberately cut short
/// after writing its checkpoint (distinct from usage errors, status 2).
const EXIT_KILLED: i32 = 3;

#[derive(Debug)]
struct CliOptions {
    scheduler: String,
    v: f64,
    beta: f64,
    hours: usize,
    seed: u64,
    load_scale: f64,
    prices: Option<PathBuf>,
    workload: Option<PathBuf>,
    admission_cap: Option<f64>,
    csv_dir: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    faults: Option<String>,
    feeds: Option<String>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    kill_at: Option<u64>,
    resume: bool,
    metrics_snapshot: Option<PathBuf>,
    metrics_listen: Option<String>,
    alerts: Option<String>,
    profile: Option<SpanClock>,
}

const USAGE: &str = "grefar_cli [--scheduler grefar|always|local-only|price-greedy|mpc] \
                     [--v V] [--beta B] [--hours N] [--seed S] [--load-scale X] \
                     [--prices FILE] [--workload FILE] [--admission-cap C] \
                     [--csv DIR] [--telemetry FILE.jsonl|-] [--faults PLAN] [--feeds PROFILE] \
                     [--checkpoint FILE] [--checkpoint-every N] [--kill-at SLOT] [--resume] \
                     [--metrics-snapshot FILE|-] [--metrics-listen ADDR] \
                     [--alerts RULES] [--profile logical|wall]";

fn parse_args() -> CliOptions {
    let mut opts = CliOptions {
        scheduler: "grefar".into(),
        v: 7.5,
        beta: 0.0,
        hours: 24 * 30,
        seed: 2012,
        load_scale: 1.0,
        prices: None,
        workload: None,
        admission_cap: None,
        csv_dir: None,
        telemetry: None,
        faults: None,
        feeds: None,
        checkpoint: None,
        checkpoint_every: 100,
        kill_at: None,
        resume: false,
        metrics_snapshot: None,
        metrics_listen: None,
        alerts: None,
        profile: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v,
                None => usage_error(&format!("missing value after {}", args[i]), USAGE),
            }
        };
        let number = |i: usize, what: &str| -> f64 {
            match value(i).parse() {
                Ok(v) => v,
                Err(_) => usage_error(&format!("{what} expects a number"), USAGE),
            }
        };
        match args[i].as_str() {
            "--scheduler" => opts.scheduler = value(i).to_string(),
            "--v" => opts.v = number(i, "--v"),
            "--beta" => opts.beta = number(i, "--beta"),
            "--hours" => {
                opts.hours = match value(i).parse() {
                    Ok(v) => v,
                    Err(_) => usage_error("--hours expects an integer", USAGE),
                }
            }
            "--seed" => {
                opts.seed = match value(i).parse() {
                    Ok(v) => v,
                    Err(_) => usage_error("--seed expects an integer", USAGE),
                }
            }
            "--load-scale" => opts.load_scale = number(i, "--load-scale"),
            "--prices" => opts.prices = Some(PathBuf::from(value(i))),
            "--workload" => opts.workload = Some(PathBuf::from(value(i))),
            "--admission-cap" => opts.admission_cap = Some(number(i, "--admission-cap")),
            "--csv" => opts.csv_dir = Some(PathBuf::from(value(i))),
            "--telemetry" => opts.telemetry = Some(PathBuf::from(value(i))),
            "--faults" => opts.faults = Some(value(i).to_string()),
            "--feeds" => opts.feeds = Some(value(i).to_string()),
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value(i))),
            "--checkpoint-every" => {
                opts.checkpoint_every = match value(i).parse() {
                    Ok(v) => v,
                    Err(_) => usage_error("--checkpoint-every expects an integer", USAGE),
                }
            }
            "--kill-at" => {
                opts.kill_at = match value(i).parse() {
                    Ok(v) => Some(v),
                    Err(_) => usage_error("--kill-at expects a slot number", USAGE),
                }
            }
            "--resume" => {
                opts.resume = true;
                i -= 1; // flag without a value
            }
            "--metrics-snapshot" => opts.metrics_snapshot = Some(PathBuf::from(value(i))),
            "--metrics-listen" => opts.metrics_listen = Some(value(i).to_string()),
            "--alerts" => opts.alerts = Some(value(i).to_string()),
            "--profile" => {
                opts.profile =
                    Some(SpanClock::parse(value(i)).unwrap_or_else(|| {
                        usage_error("--profile expects 'logical' or 'wall'", USAGE)
                    }))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other}"), USAGE),
        }
        i += 2;
    }
    if opts.hours == 0 {
        usage_error("--hours must be positive", USAGE);
    }
    if opts.checkpoint_every == 0 {
        usage_error("--checkpoint-every must be positive", USAGE);
    }
    if opts.checkpoint.is_none() && (opts.kill_at.is_some() || opts.resume) {
        usage_error("--kill-at/--resume require --checkpoint FILE", USAGE);
    }
    opts
}

fn main() {
    signal::install();
    let opts = parse_args();
    let scenario = PaperScenario::default()
        .with_seed(opts.seed)
        .with_load_scale(opts.load_scale);
    let config = scenario.config().clone();

    // Inputs: synthetic scenario, optionally overridden by CSV replays.
    let inputs: SimulationInputs = if opts.prices.is_some() || opts.workload.is_some() {
        let mut price_procs: Vec<Box<dyn PriceProcess + Send>> = match &opts.prices {
            Some(path) => {
                let trace = load_price_trace(path).expect("readable price csv");
                assert_eq!(
                    trace.num_data_centers(),
                    config.num_data_centers(),
                    "price csv must have one column per data center"
                );
                (0..trace.num_data_centers())
                    .map(|i| {
                        Box::new(ReplayPrice::new(trace.rates(i))) as Box<dyn PriceProcess + Send>
                    })
                    .collect()
            }
            None => scenario.price_processes(),
        };
        let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> =
            scenario.availability_processes();
        match &opts.workload {
            Some(path) => {
                let trace = load_workload_trace(path).expect("readable workload csv");
                assert_eq!(
                    trace.num_job_types(),
                    config.num_job_classes(),
                    "workload csv must have one column per job type"
                );
                let rows = (0..trace.num_slots())
                    .map(|t| trace.arrivals(t as u64).to_vec())
                    .collect();
                let mut workload = ReplayWorkload::new(rows);
                SimulationInputs::generate(
                    &config,
                    opts.hours,
                    opts.seed,
                    &mut price_procs,
                    &mut availability,
                    &mut workload,
                )
            }
            None => {
                let mut workload = scenario.workload();
                SimulationInputs::generate(
                    &config,
                    opts.hours,
                    opts.seed,
                    &mut price_procs,
                    &mut availability,
                    &mut workload,
                )
            }
        }
    } else {
        scenario.clone().into_inputs(opts.hours)
    };

    let scheduler: Box<dyn Scheduler> = match opts.scheduler.as_str() {
        "grefar" => Box::new(
            GreFar::new(&config, GreFarParams::new(opts.v, opts.beta)).expect("valid params"),
        ),
        "always" => Box::new(Always::new(&config)),
        "local-only" => Box::new(LocalOnly::new(&config)),
        "price-greedy" => Box::new(PriceGreedy::new(&config)),
        "mpc" => Box::new(MpcScheduler::new(&config, inputs.clone(), 6, 0.02)),
        other => panic!("unknown scheduler {other}; try --help"),
    };

    let mut sim = Simulation::new(config.clone(), inputs, scheduler);
    if let Some(cap) = opts.admission_cap {
        sim = sim.with_admission_cap(cap);
    }
    if let Some(spec) = &opts.faults {
        let plan = load_fault_plan(spec, USAGE);
        sim = match sim.with_fault_plan(plan) {
            Ok(sim) => sim,
            Err(e) => usage_error(&format!("--faults: {e}"), USAGE),
        };
    }
    if let Some(spec) = &opts.feeds {
        let profile = load_feed_profile(spec, USAGE);
        sim = match sim.with_feed_profile(profile) {
            Ok(sim) => sim,
            Err(e) => usage_error(&format!("--feeds: {e}"), USAGE),
        };
    }

    // A resumed run extends the original telemetry stream in place; when
    // metrics are on, the truncated prefix is pre-folded so aggregates
    // rebuild identically.
    let mut plane = ObsPlane::build(
        opts.telemetry.as_deref(),
        opts.resume,
        opts.metrics_snapshot.as_deref(),
        opts.metrics_listen.as_deref(),
        opts.alerts.as_deref(),
        opts.profile,
        USAGE,
    );
    if plane.is_active() {
        // Theorem 1 only speaks about GreFar runs; the label must match
        // run.start's scheduler name for grefar-report. A resumed run's
        // stream already carries its bounds.
        if opts.scheduler == "grefar" && !opts.resume {
            let bounded = vec![(sim.scheduler_name(), opts.v, opts.beta)];
            // Behind an unreliable feed layer the certificate is the
            // degraded one: Theorem 1(a) relaxed by the profile's
            // admissible staleness.
            let stale_slots = sim
                .feed_profile()
                .map_or(0, |p| p.staleness_bound(config.num_data_centers()));
            grefar_sim::theory_obs::emit_theory_bounds_stale(
                &config,
                sim.inputs(),
                &bounded,
                stale_slots,
                &mut plane,
            );
        }
    }

    let report = match &opts.checkpoint {
        None => {
            if plane.is_active() {
                sim.run_with_observer(&mut plane)
            } else {
                sim.run()
            }
        }
        Some(ck_path) => {
            let mut policy = RunPolicy::new(ck_path.clone(), opts.checkpoint_every)
                .with_kill_when(signal::triggered);
            if let Some(slot) = opts.kill_at {
                policy = policy.with_kill_at(slot);
            }
            let result = if opts.resume {
                match Checkpoint::load(ck_path) {
                    Ok(ck) => sim.resume(ck, &mut plane, Some(&policy)),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                sim.run_resumable(&mut plane, &policy)
            };
            match result {
                Ok(report) => report,
                Err(SimError::Killed { slot, checkpoint }) => {
                    // Flush the (deliberately truncated) telemetry stream so
                    // the resumed run can append to a well-formed prefix. A
                    // latched SIGTERM/SIGINT reaches this same arm via the
                    // policy's kill_when predicate; it exits `128 + signo`
                    // instead of the --kill-at status.
                    plane.finish();
                    eprintln!(
                        "run killed before slot {slot}; checkpoint written to {}",
                        checkpoint.display()
                    );
                    if signal::triggered() {
                        eprintln!("re-run with --resume to continue from the checkpoint");
                        std::process::exit(128 + signal::last_signal());
                    }
                    std::process::exit(EXIT_KILLED);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    };

    let mut summary = String::new();
    summary.push_str(&format!("scheduler        : {}\n", report.scheduler));
    summary.push_str(&format!("hours            : {}\n", report.horizon));
    summary.push_str(&format!(
        "avg energy cost  : {:.3}\n",
        report.average_energy_cost()
    ));
    summary.push_str(&format!(
        "avg fairness     : {:.4}\n",
        report.average_fairness()
    ));
    summary.push_str(&format!(
        "arriving work/h  : {:.2}\n",
        report.arriving_work.mean()
    ));
    summary.push_str(&format!(
        "jobs completed   : {}\n",
        report.completions.completed_total
    ));
    summary.push_str(&format!(
        "mean sojourn     : {:.2} h\n",
        report.completions.mean_sojourn
    ));
    summary.push_str(&format!(
        "max queue        : {:.0}\n",
        report.max_queue_length()
    ));
    if report.dropped_jobs > 0 {
        summary.push_str(&format!("dropped (adm.)   : {}\n", report.dropped_jobs));
    }
    summary.push('\n');
    let rows: Vec<Vec<f64>> = (0..report.num_data_centers())
        .map(|i| {
            vec![
                (i + 1) as f64,
                report.average_work_per_dc(i),
                report.average_dc_delay(i),
                report.dc_delay_quantiles[i].p95,
                report.completions.completed_per_dc[i] as f64,
            ]
        })
        .collect();
    summary.push_str(&format_table(
        &["dc", "avg_work", "avg_delay", "p95_delay", "completed"],
        &rows,
    ));
    // With `--telemetry -`, stdout is a machine-readable JSONL stream; the
    // human summary moves to stderr so the stream stays parseable.
    if opts.telemetry.as_deref() == Some(std::path::Path::new("-")) {
        eprint!("{summary}");
    } else {
        print!("{summary}");
    }

    if opts.csv_dir.is_some() {
        let path = opts.csv_dir.as_ref().map(|d| d.join("run_series.csv"));
        maybe_write_csv(
            path,
            &["energy_avg", "fairness_avg", "queue_total"],
            &[
                report.energy.running(),
                report.fairness.running(),
                &report.queue_total,
            ],
        );
    }

    plane.finish();
}
