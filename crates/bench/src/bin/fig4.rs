//! Fig. 4: GreFar (V = 7.5, β = 100) versus the "Always" baseline on the
//! same frozen inputs. Three panels: (a) average energy cost, (b) average
//! fairness, (c) average delay in DC #1.
//!
//! Expected shape (§VI-B.3): GreFar wins on energy and fairness at the
//! expense of delay; Always's delay is ≈ 1.

use grefar_bench::{
    apply_fault_plan, exit_if_signaled, maybe_write_csv, print_table, signal, ExperimentOpts,
    DEFAULT_BETA, DEFAULT_V,
};
use grefar_core::{Always, GreFar, GreFarParams, Scheduler};
use grefar_sim::{sweep, theory_obs, PaperScenario};

fn main() {
    signal::install();
    let opts = ExperimentOpts::from_args(2000);
    let scenario = PaperScenario::default().with_seed(opts.seed);
    let config = scenario.config().clone();
    let inputs = apply_fault_plan(scenario.into_inputs(opts.hours), &opts);

    let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
        (
            "GreFar".into(),
            Box::new(
                GreFar::new(&config, GreFarParams::new(DEFAULT_V, DEFAULT_BETA))
                    .expect("valid parameters"),
            ),
        ),
        ("Always".into(), Box::new(Always::new(&config))),
    ];
    let mut plane = opts.observability();
    let reports = if plane.is_active() {
        let bounded = vec![("GreFar".to_string(), DEFAULT_V, DEFAULT_BETA)];
        theory_obs::emit_theory_bounds(&config, &inputs, &bounded, &mut plane);
        sweep::run_all_observed_until(&config, &inputs, runs, &mut plane, &signal::triggered)
    } else {
        sweep::run_all(&config, &inputs, runs)
    };
    // A latched SIGTERM/SIGINT stops the sweep at a run boundary; flush
    // what completed and exit 128 + signo instead of printing torn tables.
    let plane = exit_if_signaled(plane);

    println!(
        "Fig. 4 — GreFar (V={DEFAULT_V}, beta={DEFAULT_BETA}) vs Always, {} hours, seed {}\n",
        opts.hours, opts.seed
    );
    let rows: Vec<Vec<f64>> = reports
        .iter()
        .enumerate()
        .map(|(idx, (_, r))| {
            vec![
                idx as f64, // 0 = GreFar, 1 = Always
                r.average_energy_cost(),
                r.average_fairness(),
                r.average_dc_delay(0),
                r.average_dc_delay(1),
                r.average_dc_delay(2),
            ]
        })
        .collect();
    println!("(row 0 = GreFar, row 1 = Always)");
    print_table(
        &[
            "policy",
            "avg_energy",
            "avg_fairness",
            "delay_dc1",
            "delay_dc2",
            "delay_dc3",
        ],
        &rows,
    );

    for (panel, pick) in [
        ("(a) average energy cost over time", 0usize),
        ("(b) average fairness over time", 1),
        ("(c) average delay in DC #1 over time", 2),
    ] {
        println!("\n{panel}");
        print!("{:>8}", "hour");
        for (label, _) in &reports {
            print!(" {label:>12}");
        }
        println!();
        let horizon = reports[0].1.horizon;
        for p in 1..=10 {
            let t = p * (horizon - 1) / 10;
            print!("{t:>8}");
            for (_, r) in &reports {
                let value = match pick {
                    0 => r.energy.running()[t],
                    1 => r.fairness.running()[t],
                    _ => r.dc_delay[0][t],
                };
                print!(" {value:>12.4}");
            }
            println!();
        }
    }

    let labels: Vec<&str> = reports.iter().map(|(l, _)| l.as_str()).collect();
    let energy: Vec<&[f64]> = reports.iter().map(|(_, r)| r.energy.running()).collect();
    maybe_write_csv(opts.csv_path("fig4a_energy.csv"), &labels, &energy);
    let fair: Vec<&[f64]> = reports.iter().map(|(_, r)| r.fairness.running()).collect();
    maybe_write_csv(opts.csv_path("fig4b_fairness.csv"), &labels, &fair);
    let delay: Vec<&[f64]> = reports
        .iter()
        .map(|(_, r)| r.dc_delay[0].as_slice())
        .collect();
    maybe_write_csv(opts.csv_path("fig4c_delay_dc1.csv"), &labels, &delay);

    plane.finish();
}
