//! Shared utilities for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §3 for the experiment index).
//!
//! Every binary accepts:
//!
//! * `--hours N` — simulation horizon in slots (default experiment-specific),
//! * `--seed S` — the master seed (default 2012),
//! * `--csv DIR` — also write the plotted series as CSV files into `DIR`,
//! * `--telemetry FILE` — stream structured events (JSONL) to `FILE` and
//!   print an aggregate summary after the regular output (see
//!   [`Telemetry`]). Without the flag the regular output is byte-identical
//!   and the instrumentation is disabled.
//! * `--faults PLAN` — overlay a `grefar_faults::FaultPlan` (inline DSL
//!   spec or a path to a spec file) on the generated inputs before any
//!   scheduler runs; without the flag the inputs are untouched.
//! * `--alerts RULES` — evaluate `grefar_metrics::alerts` rules (inline
//!   DSL or a spec file) live against the metrics fold; fired alerts
//!   surface as `alert.fire`/`alert.resolve` telemetry events, in the
//!   `/healthz` snapshot, and on the `/alerts` endpoint.
//!
//! Output is plain aligned text: the same rows/series the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use grefar_served::signal;

use grefar_metrics::{shared_handle, MetricsConfig, MetricsLayer, MetricsServer, SnapshotSink};
use grefar_obs::{Event, JsonlSink, MemoryObserver, Observer, SpanClock, SpanProfiler};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The cost-delay values swept in Fig. 2.
pub const FIG2_V_VALUES: [f64; 4] = [0.1, 2.5, 7.5, 20.0];

/// The paper's default GreFar operating point (Figs. 3–5).
pub const DEFAULT_V: f64 = 7.5;

/// The fairness weight used where the paper uses "β = 100".
///
/// β is *not* unit-invariant: it weighs a fairness score in `[-0.3, 0]`
/// against an energy cost whose scale depends on the (undisclosed)
/// normalization of work, prices and `R(t)` in the paper's simulator. We
/// calibrate instead to the paper's *operating point*: the β at which
/// GreFar's fairness crosses above the Always baseline while the energy
/// increase over β = 0 stays marginal (Figs. 3 and 4). In this workspace's
/// normalization that knee sits at β ≈ 300; see EXPERIMENTS.md.
pub const DEFAULT_BETA: f64 = 300.0;

/// Options common to all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentOpts {
    /// Simulation horizon in hours (slots).
    pub hours: usize,
    /// Master seed for all stochastic processes.
    pub seed: u64,
    /// Optional directory for CSV dumps of the plotted series.
    pub csv_dir: Option<PathBuf>,
    /// Optional JSONL file for structured telemetry events (`-` = stdout).
    pub telemetry: Option<PathBuf>,
    /// Optional fault plan: an inline DSL spec or a path to a spec file.
    pub faults: Option<String>,
    /// Optional Prometheus exposition snapshot file (`-` = one dump to
    /// stdout at the end of the run).
    pub metrics_snapshot: Option<PathBuf>,
    /// Optional `ADDR:PORT` for the blocking `/metrics` + `/healthz`
    /// listener.
    pub metrics_listen: Option<String>,
    /// Optional alert rules: an inline `grefar_metrics::alerts` DSL spec
    /// or a path to a spec file.
    pub alerts: Option<String>,
    /// Optional span-profiler clock (requires `--telemetry`, which carries
    /// the `profile.span` trailer events).
    pub profile: Option<SpanClock>,
}

/// Prints a usage error to stderr and exits with status 2, the
/// conventional "command-line usage error" code.
///
/// Shared by every experiment binary so malformed invocations (a flag
/// missing its value, an unknown flag) produce a clean diagnostic instead
/// of a panic with a backtrace.
pub fn usage_error(message: &str, usage: &str) -> ! {
    eprintln!("error: {message}\nusage: {usage}");
    std::process::exit(2);
}

/// The flag set shared by every experiment binary (for [`usage_error`]).
pub const COMMON_USAGE: &str = "[--hours N] [--seed S] [--csv DIR] [--telemetry FILE|-] \
     [--faults PLAN] [--metrics-snapshot FILE|-] [--metrics-listen ADDR] \
     [--alerts RULES] [--profile logical|wall]";

/// Resolves a `--faults` value into a [`grefar_faults::FaultPlan`]: if the
/// value names a readable file its contents are the spec, otherwise the
/// value itself is parsed as an inline DSL spec
/// (e.g. `"outage:dc=0,start=30,end=40"`).
///
/// Exits with a usage error (status 2) when the spec does not parse.
pub fn load_fault_plan(spec: &str, usage: &str) -> grefar_faults::FaultPlan {
    let text = match std::fs::read_to_string(spec) {
        Ok(contents) => contents.trim().to_string(),
        Err(_) => spec.to_string(),
    };
    match grefar_faults::FaultPlan::parse(&text) {
        // Chaos clauses (actor kills, stalls, socket drops) target the
        // daemon's supervision tree; a batch run has no actors to kill, so
        // silently accepting them would make the plan look exercised when
        // it never was.
        Ok(plan) if plan.has_chaos() => usage_error(
            "--faults: chaos clauses (kill/stall/sockdrop) only apply to grefar-served's --chaos",
            usage,
        ),
        Ok(plan) => plan,
        Err(e) => usage_error(&format!("--faults: {e}"), usage),
    }
}

/// Resolves a `--feeds` value into a [`grefar_ingest::FeedProfile`]: if the
/// value names a readable file its contents are the spec, otherwise the
/// value itself is parsed as an inline DSL spec
/// (e.g. `"drop:feed=price,p=0.25,start=0,end=500;policy:retries=1"`).
///
/// Exits with a usage error (status 2) when the spec does not parse.
pub fn load_feed_profile(spec: &str, usage: &str) -> grefar_ingest::FeedProfile {
    let text = match std::fs::read_to_string(spec) {
        Ok(contents) => contents.trim().to_string(),
        Err(_) => spec.to_string(),
    };
    match grefar_ingest::FeedProfile::parse(&text) {
        Ok(profile) => profile,
        Err(e) => usage_error(&format!("--feeds: {e}"), usage),
    }
}

/// Resolves an `--alerts` value into a rule list: if the value names a
/// readable file its contents are the spec, otherwise the value itself is
/// parsed as an inline `grefar_metrics::alerts` DSL spec
/// (e.g. `"deg:degraded_events>0;occ:occupancy_pct>90,for=3"`).
///
/// Exits with a usage error (status 2) when the spec does not parse.
pub fn load_alert_rules(spec: &str, usage: &str) -> Vec<grefar_metrics::AlertRule> {
    let text = match std::fs::read_to_string(spec) {
        Ok(contents) => contents.trim().to_string(),
        Err(_) => spec.to_string(),
    };
    match grefar_metrics::parse_rules(&text) {
        Ok(rules) => rules,
        Err(e) => usage_error(&format!("--alerts: {e}"), usage),
    }
}

/// Applies the `--faults` plan (when one was given) to freshly generated
/// inputs — the shared wiring for sweep-style experiment binaries, whose
/// faults act through the data path only (solver squeezes need the full
/// runtime path, which only `grefar_cli` drives).
///
/// Exits with a usage error (status 2) when the plan does not parse or
/// references data centers or job classes the scenario does not have.
pub fn apply_fault_plan(
    inputs: grefar_sim::SimulationInputs,
    opts: &ExperimentOpts,
) -> grefar_sim::SimulationInputs {
    match opts.fault_plan() {
        Some(plan) => inputs
            .with_faults(&plan)
            .unwrap_or_else(|e| usage_error(&format!("--faults: {e}"), COMMON_USAGE)),
        None => inputs,
    }
}

impl ExperimentOpts {
    /// Parses `--hours`, `--seed`, `--csv` and `--telemetry` from the
    /// process arguments, with `default_hours` as the horizon default.
    ///
    /// On malformed arguments (unknown flag, missing or unparsable value)
    /// prints a usage message to stderr and exits with status 2.
    pub fn from_args(default_hours: usize) -> Self {
        let mut opts = Self {
            hours: default_hours,
            seed: 2012,
            csv_dir: None,
            telemetry: None,
            faults: None,
            metrics_snapshot: None,
            metrics_listen: None,
            alerts: None,
            profile: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| -> &str {
                match args.get(i + 1) {
                    Some(v) => v,
                    None => usage_error(&format!("missing value after {}", args[i]), COMMON_USAGE),
                }
            };
            match args[i].as_str() {
                "--hours" => {
                    opts.hours = value(i).parse().unwrap_or_else(|_| {
                        usage_error("--hours expects an integer", COMMON_USAGE)
                    });
                    i += 2;
                }
                "--seed" => {
                    opts.seed = value(i)
                        .parse()
                        .unwrap_or_else(|_| usage_error("--seed expects an integer", COMMON_USAGE));
                    i += 2;
                }
                "--csv" => {
                    opts.csv_dir = Some(PathBuf::from(value(i)));
                    i += 2;
                }
                "--telemetry" => {
                    opts.telemetry = Some(PathBuf::from(value(i)));
                    i += 2;
                }
                "--faults" => {
                    opts.faults = Some(value(i).to_string());
                    i += 2;
                }
                "--metrics-snapshot" => {
                    opts.metrics_snapshot = Some(PathBuf::from(value(i)));
                    i += 2;
                }
                "--metrics-listen" => {
                    opts.metrics_listen = Some(value(i).to_string());
                    i += 2;
                }
                "--alerts" => {
                    opts.alerts = Some(value(i).to_string());
                    i += 2;
                }
                "--profile" => {
                    opts.profile = Some(SpanClock::parse(value(i)).unwrap_or_else(|| {
                        usage_error("--profile expects 'logical' or 'wall'", COMMON_USAGE)
                    }));
                    i += 2;
                }
                other => usage_error(&format!("unknown argument {other}"), COMMON_USAGE),
            }
        }
        if opts.hours == 0 {
            usage_error("--hours must be positive", COMMON_USAGE);
        }
        validate_obs_flags(
            opts.telemetry.as_deref(),
            opts.metrics_snapshot.as_deref(),
            opts.profile,
            COMMON_USAGE,
        );
        opts
    }

    /// The CSV path for `name` if `--csv` was given.
    pub fn csv_path(&self, name: &str) -> Option<PathBuf> {
        self.csv_dir.as_ref().map(|d| d.join(name))
    }

    /// The observability stack for this invocation: telemetry sink,
    /// metrics layer, span profiler and `/metrics` listener, as requested
    /// by the flags. Inactive (a pass-through) when none were given.
    pub fn observability(&self) -> ObsPlane {
        ObsPlane::build(
            self.telemetry.as_deref(),
            false,
            self.metrics_snapshot.as_deref(),
            self.metrics_listen.as_deref(),
            self.alerts.as_deref(),
            self.profile,
            COMMON_USAGE,
        )
    }

    /// The parsed `--faults` plan, if one was given. The experiment
    /// binaries apply its *data* faults to the frozen inputs (see
    /// `grefar_sim::SimulationInputs::with_faults`); solver squeezes act
    /// through the full runtime path, which only `grefar_cli` drives.
    ///
    /// Exits with a usage error (status 2) when the spec does not parse.
    pub fn fault_plan(&self) -> Option<grefar_faults::FaultPlan> {
        self.faults
            .as_deref()
            .map(|spec| load_fault_plan(spec, COMMON_USAGE))
    }
}

/// The telemetry pipeline shared by the experiment binaries: every event is
/// aggregated in memory (for the end-of-run summary table) and, when a path
/// is given, streamed to a JSONL file — one JSON object per line, schema
/// documented at [`grefar_obs`].
///
/// Implements [`Observer`], so it plugs directly into
/// [`grefar_sim::Simulation::run_with_observer`] or
/// [`grefar_sim::sweep::run_all_observed`]. Call [`Telemetry::finish`] after
/// the regular experiment output to flush the file and print the summary.
pub struct Telemetry {
    memory: MemoryObserver,
    sink: Option<JsonlSink<Box<dyn Write>>>,
    path: Option<PathBuf>,
    to_stdout: bool,
}

impl Telemetry {
    /// In-memory aggregation only (no JSONL file).
    pub fn new() -> Self {
        Self {
            memory: MemoryObserver::new(),
            sink: None,
            path: None,
            to_stdout: false,
        }
    }

    /// Aggregates in memory *and* streams every event to `path` as JSONL.
    ///
    /// # Panics
    /// Panics if the file cannot be created.
    pub fn with_jsonl(path: &Path) -> Self {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {}: {e}", path.display()));
        Self {
            memory: MemoryObserver::new(),
            sink: Some(JsonlSink::new(Box::new(BufWriter::new(file)))),
            path: Some(path.to_path_buf()),
            to_stdout: false,
        }
    }

    /// Like [`with_jsonl`](Telemetry::with_jsonl), but *appends* to `path`
    /// instead of truncating it — used when resuming a checkpointed run so
    /// the continued events extend the original stream into one contiguous
    /// JSONL document.
    ///
    /// # Panics
    /// Panics if the file cannot be opened for append.
    pub fn append_jsonl(path: &Path) -> Self {
        let file = File::options()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| {
                panic!(
                    "cannot open telemetry file {} for append: {e}",
                    path.display()
                )
            });
        Self {
            memory: MemoryObserver::new(),
            sink: Some(JsonlSink::new(Box::new(BufWriter::new(file)))),
            path: Some(path.to_path_buf()),
            to_stdout: false,
        }
    }

    /// Streams every event to stdout as JSONL (`--telemetry -`). The
    /// aggregate summary then goes to *stderr*, so stdout stays a pure,
    /// pipeable JSONL document.
    pub fn to_stdout() -> Self {
        Self {
            memory: MemoryObserver::new(),
            sink: Some(JsonlSink::new(Box::new(std::io::stdout().lock()))),
            path: None,
            to_stdout: true,
        }
    }

    /// The in-memory aggregation (counters, gauges, histograms).
    pub fn memory(&self) -> &MemoryObserver {
        &self.memory
    }

    /// Flushes the JSONL output and prints the aggregate summary table —
    /// to stdout normally, to stderr when the events themselves stream to
    /// stdout.
    ///
    /// # Panics
    /// Panics if the JSONL file saw write errors — a truncated event stream
    /// should not pass silently.
    pub fn finish(mut self) {
        let summary = format!(
            "\ntelemetry ({} events)\n{}",
            self.memory.total_events(),
            self.memory.summary()
        );
        if self.to_stdout {
            eprint!("{summary}");
        } else {
            print!("{summary}");
        }
        if let Some(mut sink) = self.sink.take() {
            sink.flush().expect("flush telemetry file");
            assert_eq!(
                sink.io_errors(),
                0,
                "telemetry file had {} write errors",
                sink.io_errors()
            );
        }
        if let Some(path) = &self.path {
            println!("(wrote {})", path.display());
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for Telemetry {
    fn record_event(&mut self, event: Event) {
        if let Some(sink) = &mut self.sink {
            sink.record_event(event.clone());
        }
        self.memory.record_event(event);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.memory.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.memory.set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.memory.record_value(name, value);
    }
}

/// Validates the combinations of observability flags shared by every
/// binary; exits with a usage error (status 2) on conflicts.
///
/// * `--profile` needs `--telemetry` — the profiler's `profile.span`
///   trailer events have nowhere to go otherwise.
/// * `--telemetry -` and `--metrics-snapshot -` cannot both claim stdout.
pub fn validate_obs_flags(
    telemetry: Option<&Path>,
    metrics_snapshot: Option<&Path>,
    profile: Option<SpanClock>,
    usage: &str,
) {
    let is_stdout = |p: Option<&Path>| p.is_some_and(|p| p.as_os_str() == "-");
    if profile.is_some() && telemetry.is_none() {
        usage_error("--profile requires --telemetry", usage);
    }
    if is_stdout(telemetry) && is_stdout(metrics_snapshot) {
        usage_error(
            "--telemetry - and --metrics-snapshot - both claim stdout; \
             give at least one of them a file",
            usage,
        );
    }
}

/// The telemetry end of the stack: a [`Telemetry`] pipeline, or nothing.
enum TelemetrySink {
    Null(grefar_obs::NullObserver),
    Telemetry(Telemetry),
}

impl Observer for TelemetrySink {
    fn enabled(&self) -> bool {
        matches!(self, TelemetrySink::Telemetry(_))
    }

    fn record_event(&mut self, event: Event) {
        if let TelemetrySink::Telemetry(tel) = self {
            tel.record_event(event);
        }
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        if let TelemetrySink::Telemetry(tel) = self {
            tel.add_counter(name, delta);
        }
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        if let TelemetrySink::Telemetry(tel) = self {
            tel.set_gauge(name, value);
        }
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        if let TelemetrySink::Telemetry(tel) = self {
            tel.record_value(name, value);
        }
    }
}

/// The stack below the profiler: the metrics layer wraps the telemetry
/// sink when any metrics surface was requested, otherwise events pass
/// straight through.
enum Stack {
    Plain(TelemetrySink),
    Metrics(Box<MetricsLayer<TelemetrySink>>),
}

impl Stack {
    fn observer(&mut self) -> &mut dyn Observer {
        match self {
            Stack::Plain(sink) => sink,
            Stack::Metrics(layer) => layer.as_mut(),
        }
    }

    fn observer_enabled(&self) -> bool {
        match self {
            Stack::Plain(sink) => sink.enabled(),
            Stack::Metrics(layer) => layer.enabled(),
        }
    }
}

/// The live observability plane of one experiment invocation, composed
/// from the shared flags (see [`ExperimentOpts::observability`]):
///
/// ```text
/// instrumented code
///   └─ ObsPlane                  (this struct, an Observer)
///        ├─ SpanProfiler         (--profile; consumes span_* hooks)
///        └─ MetricsLayer         (--metrics-snapshot / --metrics-listen)
///             └─ Telemetry       (--telemetry; JSONL file or stdout)
/// ```
///
/// Pass `&mut plane` wherever a `&mut dyn Observer` is expected, then call
/// [`finish`](ObsPlane::finish) after the regular experiment output. When
/// no observability flag was given the plane [is
/// inactive](ObsPlane::is_active) and everything is a no-op — callers keep
/// using the unobserved fast path so default output stays byte-identical.
pub struct ObsPlane {
    stack: Stack,
    profiler: Option<SpanProfiler>,
    server: Option<MetricsServer>,
}

impl ObsPlane {
    /// Composes the plane. `telemetry`/`metrics_snapshot` understand `-`
    /// as stdout; `append_telemetry` opens the telemetry file in append
    /// mode (resumed runs) and pre-seeds the metrics fold from the
    /// truncated stream so aggregates rebuild identically.
    ///
    /// Exits with a usage error (status 2) on conflicting flags or an
    /// unbindable `--metrics-listen` address.
    pub fn build(
        telemetry: Option<&Path>,
        append_telemetry: bool,
        metrics_snapshot: Option<&Path>,
        metrics_listen: Option<&str>,
        alerts: Option<&str>,
        profile: Option<SpanClock>,
        usage: &str,
    ) -> Self {
        validate_obs_flags(telemetry, metrics_snapshot, profile, usage);
        let telemetry_is_stdout = telemetry.is_some_and(|p| p.as_os_str() == "-");
        let sink = match telemetry {
            None => TelemetrySink::Null(grefar_obs::NullObserver),
            Some(_) if telemetry_is_stdout => TelemetrySink::Telemetry(Telemetry::to_stdout()),
            Some(path) if append_telemetry => {
                TelemetrySink::Telemetry(Telemetry::append_jsonl(path))
            }
            Some(path) => TelemetrySink::Telemetry(Telemetry::with_jsonl(path)),
        };
        // Alert rules ride on the metrics fold, so --alerts alone still
        // stands the metrics layer up (fired events flow to telemetry).
        let metrics_wanted =
            metrics_snapshot.is_some() || metrics_listen.is_some() || alerts.is_some();
        let (stack, shared) = if metrics_wanted {
            let config = MetricsConfig {
                sink: match metrics_snapshot {
                    None => SnapshotSink::None,
                    Some(p) if p.as_os_str() == "-" => SnapshotSink::Stdout,
                    Some(p) => SnapshotSink::File(p.to_path_buf()),
                },
                rules: alerts.map_or_else(Vec::new, |spec| load_alert_rules(spec, usage)),
                ..MetricsConfig::default()
            };
            let shared = shared_handle();
            let mut layer = MetricsLayer::new(sink, config).with_shared(shared.clone());
            if append_telemetry && !telemetry_is_stdout {
                if let Some(path) = telemetry {
                    match std::fs::read_to_string(path) {
                        Ok(text) => {
                            if let Err(e) = layer.prefold_jsonl(&text) {
                                eprintln!("warning: metrics prefold of {}: {e}", path.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("warning: cannot re-read {}: {e}", path.display());
                        }
                    }
                }
            }
            (Stack::Metrics(Box::new(layer)), Some(shared))
        } else {
            (Stack::Plain(sink), None)
        };
        let server = metrics_listen.map(|addr| {
            let shared = shared.expect("metrics stack present when listening");
            match MetricsServer::spawn(addr, shared) {
                Ok(server) => {
                    eprintln!("metrics listener on http://{}/metrics", server.addr());
                    server
                }
                Err(e) => usage_error(&format!("--metrics-listen {addr}: {e}"), usage),
            }
        });
        ObsPlane {
            stack,
            profiler: profile.map(SpanProfiler::new),
            server,
        }
    }

    /// Whether any observability flag is in play. Callers branch on this
    /// to keep the unobserved fast path byte-identical.
    pub fn is_active(&self) -> bool {
        !matches!(&self.stack, Stack::Plain(TelemetrySink::Null(_))) || self.profiler.is_some()
    }

    /// Tears the plane down in trailer order: the metrics layer's final
    /// `health.snapshot`, then the profiler's `profile.span` events, then
    /// the telemetry summary. Shuts the `/metrics` listener down last.
    /// Snapshot-write failures are reported to stderr but do not fail the
    /// run.
    pub fn finish(self) {
        let mut sink = match self.stack {
            Stack::Plain(sink) => sink,
            Stack::Metrics(layer) => {
                let (sink, outcome) = layer.into_parts();
                if let Err(e) = outcome {
                    eprintln!("warning: {e}");
                }
                sink
            }
        };
        if let Some(mut profiler) = self.profiler {
            profiler.emit_into(&mut sink);
        }
        if let TelemetrySink::Telemetry(tel) = sink {
            tel.finish();
        }
        if let Some(server) = self.server {
            server.shutdown();
        }
    }
}

/// Honors a latched termination signal at a safe boundary: when
/// [`signal::triggered`], tears the observability plane down in the usual
/// trailer order — so the telemetry written so far is whole and diffable —
/// and exits with the conventional `128 + signo` status. When no signal
/// has arrived the plane is handed back untouched.
///
/// Binaries call this right after each sweep phase (never mid-run): a
/// cancelled sweep returns only whole runs, so the stream ends cleanly at
/// a run boundary and the partially-filled tables are simply not printed.
pub fn exit_if_signaled(plane: ObsPlane) -> ObsPlane {
    if signal::triggered() {
        let signo = signal::last_signal();
        eprintln!("grefar: caught signal {signo}, flushing partial telemetry and exiting");
        plane.finish();
        std::process::exit(128 + signo);
    }
    plane
}

impl Observer for ObsPlane {
    fn enabled(&self) -> bool {
        self.stack.observer_enabled()
    }

    fn record_event(&mut self, event: Event) {
        self.stack.observer().record_event(event);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.stack.observer().add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.stack.observer().set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.stack.observer().record_value(name, value);
    }

    fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    fn span_enter(&mut self, name: &'static str) {
        if let Some(profiler) = &mut self.profiler {
            profiler.span_enter(name);
        }
    }

    fn span_exit(&mut self, name: &'static str) {
        if let Some(profiler) = &mut self.profiler {
            profiler.span_exit(name);
        }
    }

    fn span_leaf(&mut self, name: &'static str, count: u64) {
        if let Some(profiler) = &mut self.profiler {
            profiler.span_leaf(name, count);
        }
    }
}

/// Renders an aligned text table (a header row and numeric rows) to a
/// string, one trailing newline per row.
///
/// # Panics
/// Panics if a row's width differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<f64>]) -> String {
    let width = 12usize;
    let mut out = String::new();
    let header_line: Vec<String> = headers.iter().map(|h| format!("{h:>width$}")).collect();
    out.push_str(&header_line.join(" "));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        let line: Vec<String> = row.iter().map(|v| format!("{v:>width$.4}")).collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Prints an aligned text table: a header row and numeric rows.
///
/// # Panics
/// Panics if a row's width differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<f64>]) {
    print!("{}", format_table(headers, rows));
}

/// Downsamples a series to at most `points` evenly spaced samples,
/// returning `(slot, value)` pairs. Always includes the final slot.
pub fn downsample(series: &[f64], points: usize) -> Vec<(usize, f64)> {
    assert!(points >= 2, "need at least two sample points");
    if series.is_empty() {
        return Vec::new();
    }
    if series.len() <= points {
        return series.iter().copied().enumerate().collect();
    }
    let mut out = Vec::with_capacity(points);
    let last = series.len() - 1;
    for p in 0..points {
        let idx = p * last / (points - 1);
        out.push((idx, series[idx]));
    }
    out.dedup_by_key(|(i, _)| *i);
    out
}

/// Writes labeled series (columns) to a CSV file if a path is given.
/// Column 0 is the slot index.
///
/// # Panics
/// Panics if the series lengths differ or the file cannot be written.
pub fn maybe_write_csv(path: Option<PathBuf>, labels: &[&str], columns: &[&[f64]]) {
    let Some(path) = path else { return };
    assert_eq!(labels.len(), columns.len(), "label/column count mismatch");
    let len = columns.first().map_or(0, |c| c.len());
    assert!(
        columns.iter().all(|c| c.len() == len),
        "column length mismatch"
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create csv directory");
    }
    let mut headers = vec!["slot"];
    headers.extend_from_slice(labels);
    let rows = (0..len).map(|t| {
        let mut row = Vec::with_capacity(columns.len() + 1);
        row.push(t as f64);
        row.extend(columns.iter().map(|c| c[t]));
        row
    });
    grefar_trace::csv::write_csv(&path, &headers, rows).expect("write csv");
    println!("(wrote {})", path.display());
}

/// Prints a downsampled running-average series as an aligned two-column
/// block with a title.
pub fn print_series(title: &str, series: &[f64], points: usize) {
    println!("\n{title}");
    println!("{:>8} {:>12}", "hour", "value");
    for (slot, value) in downsample(series, points) {
        println!("{slot:>8} {value:>12.4}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_includes_endpoints() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let sampled = downsample(&series, 5);
        assert_eq!(sampled.first().unwrap().0, 0);
        assert_eq!(sampled.last().unwrap().0, 99);
        assert!(sampled.len() <= 5);
    }

    #[test]
    fn downsample_short_series_is_identity() {
        let series = vec![1.0, 2.0];
        assert_eq!(downsample(&series, 10), vec![(0, 1.0), (1, 2.0)]);
    }

    #[test]
    fn csv_path_composition() {
        let opts = ExperimentOpts {
            hours: 10,
            seed: 1,
            csv_dir: Some(PathBuf::from("/tmp/x")),
            telemetry: None,
            faults: None,
            metrics_snapshot: None,
            metrics_listen: None,
            alerts: None,
            profile: None,
        };
        assert_eq!(
            opts.csv_path("a.csv").unwrap(),
            PathBuf::from("/tmp/x/a.csv")
        );
        let no_csv = ExperimentOpts {
            csv_dir: None,
            ..opts
        };
        assert_eq!(no_csv.csv_path("a.csv"), None);
    }

    #[test]
    fn telemetry_fans_out_to_memory() {
        let mut tel = Telemetry::new();
        tel.record_event(Event::new("slot").field("t", 0u64));
        tel.record_value("slot.wall_us", 12.0);
        tel.add_counter("slots", 1);
        assert_eq!(tel.memory().event_count("slot"), 1);
        assert_eq!(tel.memory().counter("slots"), 1);
        assert_eq!(tel.memory().histogram("slot.wall_us").unwrap().count(), 1);
    }
}
