//! Simplex solve time vs problem size, plus lookahead-style frame LPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grefar_lp::{LpProblem, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random dense covering LP: min c·x s.t. A x ≥ b, 0 ≤ x ≤ 10.
fn covering_lp(vars: usize, rows: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::minimize(vars);
    for j in 0..vars {
        p.set_objective(j, 0.5 + rng.gen_range(0.0..1.0));
        p.set_upper_bound(j, 10.0);
    }
    for _ in 0..rows {
        let coeffs: Vec<(usize, f64)> = (0..vars)
            .map(|j| (j, 0.05 + rng.gen_range(0.0..1.0)))
            .collect();
        p.add_constraint(&coeffs, Relation::Ge, rng.gen_range(1.0..8.0));
    }
    p
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for (vars, rows) in [(20usize, 10usize), (60, 30), (150, 60), (300, 120)] {
        let p = covering_lp(vars, rows, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}c")),
            &p,
            |b, p| b.iter(|| p.solve().expect("feasible").objective()),
        );
    }
    group.finish();
}

fn bench_frame_lp(c: &mut Criterion) {
    use grefar_core::TStepLookahead;
    use grefar_types::{
        DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
    };

    let config = SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("a", vec![30.0])
        .data_center("b", vec![30.0])
        .account("x", 1.0)
        .job_class(
            JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                .with_max_arrivals(8.0)
                .with_max_route(8.0)
                .with_max_process(20.0),
        )
        .build()
        .expect("valid");

    let mut group = c.benchmark_group("lookahead_frame");
    for frame in [4usize, 12, 24] {
        let states: Vec<SystemState> = (0..frame)
            .map(|t| {
                SystemState::new(
                    t as u64,
                    vec![
                        DataCenterState::new(vec![30.0], Tariff::flat(0.3 + 0.01 * t as f64)),
                        DataCenterState::new(vec![30.0], Tariff::flat(0.5 - 0.01 * t as f64)),
                    ],
                )
            })
            .collect();
        let arrivals: Vec<Vec<f64>> = (0..frame).map(|t| vec![(t % 5) as f64]).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("T{frame}")),
            &(states, arrivals),
            |b, (states, arrivals)| {
                let la = TStepLookahead::new(states.len()).expect("valid frame");
                b.iter(|| {
                    la.plan(&config, states, arrivals)
                        .expect("feasible")
                        .average_cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_frame_lp);
criterion_main!(benches);
