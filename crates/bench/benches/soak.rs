//! Soak-harness overhead: scenario fuzzing, the per-slot conservation
//! ledger, and the repro round-trip. The ledger runs inside every
//! simulated slot (batch CLI, daemon and soak alike), so its accounting
//! cost is a standing tax on the whole system — this bench keeps it
//! visible.

use criterion::{criterion_group, criterion_main, Criterion};
use grefar_core::{JobLedger, QueueState, Scheduler};
use grefar_sim::PaperScenario;
use grefar_soak::{repro, Scenario};

fn bench_scenario_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("soak_scenario");
    group.bench_function("generate_64_seeds", |b| {
        b.iter(|| {
            (0..64u64)
                .map(|seed| Scenario::generate(seed).clauses.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_ledger_accounting(c: &mut Criterion) {
    let scenario = PaperScenario::default().with_seed(1);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(48);

    // Pre-solve every slot so the bench isolates the ledger arithmetic
    // from the scheduler.
    let mut always = grefar_core::Always::new(&config);
    let mut queues = QueueState::new(&config);
    let mut slots = Vec::with_capacity(48);
    for t in 0..48usize {
        let decision = always.decide(inputs.state(t), &queues);
        let arrivals = inputs.arrivals(t).to_vec();
        slots.push((queues.clone(), decision.clone(), arrivals));
        queues.apply(&decision, inputs.arrivals(t));
    }

    let mut group = c.benchmark_group("soak_ledger");
    group.bench_function("account_48_slots", |b| {
        b.iter(|| {
            let mut ledger = JobLedger::new();
            let mut queued = 0.0;
            for (prev, decision, arrivals) in &slots {
                ledger.account(prev, decision, arrivals, arrivals);
                queued = ledger.admitted() - ledger.served() - ledger.route_excess();
                assert!(ledger.balance(queued).abs() <= ledger.tolerance() + queued.abs());
            }
            (ledger.offered(), queued)
        })
    });
    group.finish();
}

fn bench_repro_roundtrip(c: &mut Criterion) {
    let scenario = Scenario::generate(9);
    let violation = grefar_soak::Violation::new(
        grefar_soak::OracleKind::Ledger,
        "slot 16: conservation balance 7.000000 exceeds tolerance 1.763e-6",
    );
    let mut group = c.benchmark_group("soak_repro");
    group.bench_function("render_parse", |b| {
        b.iter(|| {
            let text = repro::render(&scenario, &violation);
            repro::parse(&text)
                .expect("canonical repro parses")
                .scenario
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scenario_generate,
    bench_ledger_accounting,
    bench_repro_roundtrip
);
criterion_main!(benches);
