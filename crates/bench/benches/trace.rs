//! Trace-generation throughput: hours of (prices + availability +
//! arrivals) generated per second for the paper scenario.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grefar_sim::PaperScenario;
use grefar_trace::{PriceTrace, WorkloadTrace};

fn bench_trace_generation(c: &mut Criterion) {
    let hours = 24 * 90; // one quarter per iteration
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(hours as u64));

    group.bench_function("full_inputs", |b| {
        b.iter(|| {
            PaperScenario::default()
                .with_seed(7)
                .into_inputs(hours)
                .horizon()
        })
    });
    group.bench_function("prices_only", |b| {
        b.iter(|| {
            let scenario = PaperScenario::default().with_seed(7);
            let mut prices = scenario.price_processes();
            PriceTrace::generate(&mut prices, hours, 7).num_slots()
        })
    });
    group.bench_function("workload_only", |b| {
        b.iter(|| {
            let scenario = PaperScenario::default().with_seed(7);
            let mut workload = scenario.workload();
            WorkloadTrace::generate(&mut workload, hours, 7).num_slots()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation);
criterion_main!(benches);
