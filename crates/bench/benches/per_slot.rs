//! Per-slot decision latency of the GreFar slot solvers: exact greedy
//! (β = 0) vs Frank–Wolfe (β > 0), and scaling in system size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grefar_convex::FwOptions;
use grefar_core::{QuadraticDeviation, QueueState, SlotInstance};
use grefar_sim::PaperScenario;
use grefar_types::{
    DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
};

/// A synthetic system with `n` data centers and `j` job types.
fn synthetic(n: usize, j: usize) -> (SystemConfig, SystemState, QueueState) {
    let mut builder = SystemConfig::builder();
    for k in 0..n {
        builder = builder.server_class(ServerClass::new(
            1.0 + 0.1 * k as f64,
            1.0 + 0.05 * k as f64,
        ));
    }
    for i in 0..n {
        let mut fleet = vec![0.0; n];
        fleet[i] = 100.0;
        builder = builder.data_center(format!("dc{i}"), fleet);
    }
    builder = builder.account("acct", 1.0);
    for jj in 0..j {
        let eligible: Vec<DataCenterId> = (0..n).map(DataCenterId::new).collect();
        builder = builder.job_class(
            JobClass::new(1.0 + (jj % 4) as f64, eligible, 0)
                .with_max_arrivals(10.0)
                .with_max_route(10.0)
                .with_max_process(30.0),
        );
    }
    let config = builder.build().expect("valid synthetic config");

    let state = SystemState::new(
        0,
        (0..n)
            .map(|i| {
                let mut avail = vec![0.0; n];
                avail[i] = 100.0;
                DataCenterState::new(avail, Tariff::flat(0.3 + 0.05 * i as f64))
            })
            .collect(),
    );
    let mut queues = QueueState::new(&config);
    let mut z = config.decision_zeros();
    for jj in 0..j {
        for i in 0..n {
            z.routed[(i, jj)] = ((i * 7 + jj * 3) % 9) as f64;
        }
    }
    queues.apply(&z, &vec![0.0; j]);
    (config, state, queues)
}

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_greedy_scaling");
    for (n, j) in [(3usize, 12usize), (5, 24), (10, 48), (20, 96)] {
        let (config, state, queues) = synthetic(n, j);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n}_J{j}")),
            &(config, state, queues),
            |bench, (config, state, queues)| {
                bench.iter(|| {
                    SlotInstance::new(config, state, queues, 7.5)
                        .solve_greedy()
                        .objective
                })
            },
        );
    }
    group.finish();
}

fn bench_greedy_vs_fw_paper_scenario(c: &mut Criterion) {
    let scenario = PaperScenario::default().with_seed(1);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(48);
    // A mid-run queue state: run a few warm-up slots with Always.
    let mut queues = QueueState::new(&config);
    let mut always = grefar_core::Always::new(&config);
    use grefar_core::Scheduler;
    for t in 0..24 {
        let d = always.decide(inputs.state(t), &queues);
        queues.apply(&d, inputs.arrivals(t));
    }
    let state = inputs.state(24).clone();

    let mut group = c.benchmark_group("slot_paper_scenario");
    group.bench_function("greedy_beta0", |b| {
        b.iter(|| {
            SlotInstance::new(&config, &state, &queues, 7.5)
                .solve_greedy()
                .objective
        })
    });
    for iters in [50usize, 200] {
        group.bench_function(format!("frank_wolfe_beta100_{iters}it"), |b| {
            let options = FwOptions {
                max_iters: iters,
                gap_tolerance: 1e-6,
                ..FwOptions::default()
            };
            b.iter(|| {
                SlotInstance::new(&config, &state, &queues, 7.5)
                    .solve_with_fairness(100.0, &QuadraticDeviation, options)
                    .objective
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_scaling,
    bench_greedy_vs_fw_paper_scenario
);
criterion_main!(benches);
