//! End-to-end simulator throughput: simulated hours per second for the
//! paper scenario under each scheduler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grefar_core::{Always, GreFar, GreFarParams, Scheduler};
use grefar_sim::{PaperScenario, Simulation};

fn bench_simulation(c: &mut Criterion) {
    let hours = 24 * 14; // two simulated weeks per iteration
    let scenario = PaperScenario::default().with_seed(5);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(hours);

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(hours as u64));
    group.sample_size(20);

    group.bench_function("always", |b| {
        b.iter(|| {
            let scheduler: Box<dyn Scheduler> = Box::new(Always::new(&config));
            Simulation::new(config.clone(), inputs.clone(), scheduler)
                .run()
                .average_energy_cost()
        })
    });
    group.bench_function("grefar_beta0", |b| {
        b.iter(|| {
            let scheduler: Box<dyn Scheduler> =
                Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid"));
            Simulation::new(config.clone(), inputs.clone(), scheduler)
                .run()
                .average_energy_cost()
        })
    });
    group.bench_function("grefar_beta100", |b| {
        b.iter(|| {
            let scheduler: Box<dyn Scheduler> =
                Box::new(GreFar::new(&config, GreFarParams::new(7.5, 100.0)).expect("valid"));
            Simulation::new(config.clone(), inputs.clone(), scheduler)
                .run()
                .average_energy_cost()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
