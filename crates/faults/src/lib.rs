//! Deterministic fault-injection plans for GreFar simulations.
//!
//! The paper's model is built on *time-varying* server availability
//! `n_{i,k}(t)` (§III-A.1) and volatile electricity prices (§III-A.2); this
//! crate drives those variations into the hostile regime on purpose. A
//! [`FaultPlan`] is a list of timed faults — correlated data-center outage
//! windows, availability collapses, price spikes, price-feed gaps, arrival
//! bursts and solver-budget squeezes, plus runtime-only *chaos* clauses
//! (actor kills, stalls, socket drops) consumed by `grefar-served`'s
//! supervisor — that is
//!
//! * **fully deterministic**: a plan is a pure value; applying it to frozen
//!   inputs is a pure transformation. The correlated-outage generator is
//!   seeded ([`FaultPlan::correlated_outages`]) and uses no wall clock or
//!   ambient randomness, the same rules `grefar-verify` enforces on the
//!   decision crates;
//! * **replayable from a compact spec**: [`FaultPlan::parse`] /
//!   [`FaultPlan::spec`] round-trip a plan through a one-line string such as
//!   `outage:dc=2,start=120,end=144;squeeze:iters=2,start=100,end=200`, so
//!   a run (or a checkpoint) can carry its fault schedule verbatim;
//! * **composable over any scenario**: [`FaultPlan::apply`] rewrites an
//!   explicit state/arrival horizon in place, so the same plan layers over
//!   the paper scenario, CSV replays or hand-built inputs.
//!
//! All windows are half-open slot ranges `[start, end)`.
//!
//! # Example
//! ```
//! use grefar_faults::{Fault, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse("outage:dc=0,start=5,end=8;burst:factor=2,start=6,end=7").unwrap();
//! assert_eq!(plan.faults().len(), 2);
//! assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
//! assert!(plan.active_at(6).count() == 2);
//! assert_eq!(plan.fw_budget_at(6), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use grefar_types::{DataCenterState, SystemState};

/// A malformed or inapplicable fault plan (bad spec syntax, out-of-range
/// indices, inverted windows, invalid magnitudes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    message: String,
}

impl FaultPlanError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for FaultPlanError {}

/// What a single fault does. See the module docs for the DSL spelling of
/// each variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// `outage:dc=I` — data center `I` loses *all* servers
    /// (`n_{I,k}(t) = 0` throughout the window).
    DcOutage {
        /// The affected data center.
        dc: usize,
    },
    /// `collapse:dc=I,fraction=F` — availability of data center `I` is
    /// multiplied by `F ∈ [0, 1]` (a partial capacity loss).
    AvailabilityCollapse {
        /// The affected data center.
        dc: usize,
        /// Multiplier applied to every per-class availability.
        fraction: f64,
    },
    /// `spike:dc=I,factor=F` — every marginal electricity rate of data
    /// center `I` is multiplied by `F > 0`.
    PriceSpike {
        /// The affected data center.
        dc: usize,
        /// Multiplier applied to the tariff's marginal rates.
        factor: f64,
    },
    /// `gap:dc=I` — the price feed of data center `I` goes dark: the tariff
    /// is held at its last value before the window (stale data).
    PriceGap {
        /// The affected data center.
        dc: usize,
    },
    /// `burst:factor=F[,job=J]` — arrivals are multiplied by `F > 0` and
    /// re-rounded to whole jobs, for one job class or for all of them.
    ArrivalBurst {
        /// The affected job class, or `None` for all classes.
        job: Option<usize>,
        /// Multiplier applied to the arrival counts.
        factor: f64,
    },
    /// `squeeze:iters=N` — the scheduler's per-slot Frank–Wolfe iteration
    /// budget is capped at `N ≥ 1` (models a slot deadline under load; see
    /// `grefar_core::SolverBudget`).
    SolverSqueeze {
        /// Maximum Frank–Wolfe iterations per slot.
        max_fw_iters: usize,
    },
    /// `kill:actor=A` — chaos clause: the daemon's supervisor target `A`
    /// is killed at every slot boundary inside the window. Runtime-only
    /// (no effect on frozen inputs); see `grefar-served --chaos`.
    ActorKill {
        /// The actor to kill.
        actor: ActorTarget,
    },
    /// `stall:actor=A,ms=M` — chaos clause: actor `A` stalls for `M ≥ 1`
    /// milliseconds at each slot boundary inside the window (exercises the
    /// per-slot deadline budget). Runtime-only.
    ActorStall {
        /// The actor to stall.
        actor: ActorTarget,
        /// Stall duration per slot, in milliseconds.
        ms: u64,
    },
    /// `sockdrop` — chaos clause: the admission socket drops every open
    /// client connection at each slot boundary inside the window.
    /// Runtime-only.
    SocketDrop,
}

/// Which daemon actor a chaos clause targets (see `grefar-served`'s
/// supervision tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorTarget {
    /// The admission (socket front-end) actor.
    Admission,
    /// The state-keeper actor owning `Θ(t)` and the slot loop.
    StateKeeper,
    /// The feeds actor wrapping the ingest breakers.
    Feeds,
    /// The telemetry actor owning the sink, fold, and alert engine.
    Telemetry,
}

impl ActorTarget {
    /// The DSL spelling (also the `actor` field of `fault.inject` events).
    pub fn label(self) -> &'static str {
        match self {
            ActorTarget::Admission => "admission",
            ActorTarget::StateKeeper => "state_keeper",
            ActorTarget::Feeds => "feeds",
            ActorTarget::Telemetry => "telemetry",
        }
    }

    fn parse(raw: &str) -> Option<Self> {
        match raw {
            "admission" => Some(ActorTarget::Admission),
            "state_keeper" => Some(ActorTarget::StateKeeper),
            "feeds" => Some(ActorTarget::Feeds),
            "telemetry" => Some(ActorTarget::Telemetry),
            _ => None,
        }
    }
}

/// One timed fault: a [`FaultKind`] active over the half-open slot window
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// First affected slot.
    pub start: u64,
    /// First slot past the window.
    pub end: u64,
}

impl Fault {
    /// The DSL keyword for this fault's kind (`"outage"`, `"collapse"`,
    /// `"spike"`, `"gap"`, `"burst"`, `"squeeze"`, `"kill"`, `"stall"`,
    /// `"sockdrop"`) — also used as the `kind` field of `fault.inject`
    /// telemetry events.
    pub fn label(&self) -> &'static str {
        match self.kind {
            FaultKind::DcOutage { .. } => "outage",
            FaultKind::AvailabilityCollapse { .. } => "collapse",
            FaultKind::PriceSpike { .. } => "spike",
            FaultKind::PriceGap { .. } => "gap",
            FaultKind::ArrivalBurst { .. } => "burst",
            FaultKind::SolverSqueeze { .. } => "squeeze",
            FaultKind::ActorKill { .. } => "kill",
            FaultKind::ActorStall { .. } => "stall",
            FaultKind::SocketDrop => "sockdrop",
        }
    }

    /// Whether this fault is a runtime-only chaos clause (daemon
    /// supervision faults; no effect on frozen inputs).
    pub fn is_chaos(&self) -> bool {
        matches!(
            self.kind,
            FaultKind::ActorKill { .. } | FaultKind::ActorStall { .. } | FaultKind::SocketDrop
        )
    }

    /// The daemon actor a chaos clause targets, if any.
    pub fn actor(&self) -> Option<ActorTarget> {
        match self.kind {
            FaultKind::ActorKill { actor } | FaultKind::ActorStall { actor, .. } => Some(actor),
            _ => None,
        }
    }

    /// The data center this fault targets, if it targets one.
    pub fn dc(&self) -> Option<usize> {
        match self.kind {
            FaultKind::DcOutage { dc }
            | FaultKind::AvailabilityCollapse { dc, .. }
            | FaultKind::PriceSpike { dc, .. }
            | FaultKind::PriceGap { dc } => Some(dc),
            FaultKind::ArrivalBurst { .. }
            | FaultKind::SolverSqueeze { .. }
            | FaultKind::ActorKill { .. }
            | FaultKind::ActorStall { .. }
            | FaultKind::SocketDrop => None,
        }
    }

    /// The job class an [`FaultKind::ArrivalBurst`] targets, if any.
    pub fn job(&self) -> Option<usize> {
        match self.kind {
            FaultKind::ArrivalBurst { job, .. } => job,
            _ => None,
        }
    }

    /// The fault's magnitude (collapse fraction, spike/burst factor,
    /// squeeze iteration cap), when it has one.
    pub fn magnitude(&self) -> Option<f64> {
        match self.kind {
            FaultKind::AvailabilityCollapse { fraction, .. } => Some(fraction),
            FaultKind::PriceSpike { factor, .. } => Some(factor),
            FaultKind::ArrivalBurst { factor, .. } => Some(factor),
            FaultKind::SolverSqueeze { max_fw_iters } => Some(max_fw_iters as f64),
            FaultKind::ActorStall { ms, .. } => Some(ms as f64),
            FaultKind::DcOutage { .. }
            | FaultKind::PriceGap { .. }
            | FaultKind::ActorKill { .. }
            | FaultKind::SocketDrop => None,
        }
    }

    /// Whether the fault is active during `slot`.
    pub fn active_at(&self, slot: u64) -> bool {
        self.start <= slot && slot < self.end
    }

    /// The canonical DSL clause for this fault (parses back to `self`).
    pub fn spec(&self) -> String {
        let window = format!("start={},end={}", self.start, self.end);
        match self.kind {
            FaultKind::DcOutage { dc } => format!("outage:dc={dc},{window}"),
            FaultKind::AvailabilityCollapse { dc, fraction } => {
                format!("collapse:dc={dc},fraction={fraction},{window}")
            }
            FaultKind::PriceSpike { dc, factor } => {
                format!("spike:dc={dc},factor={factor},{window}")
            }
            FaultKind::PriceGap { dc } => format!("gap:dc={dc},{window}"),
            FaultKind::ArrivalBurst { job: None, factor } => {
                format!("burst:factor={factor},{window}")
            }
            FaultKind::ArrivalBurst {
                job: Some(j),
                factor,
            } => format!("burst:factor={factor},job={j},{window}"),
            FaultKind::SolverSqueeze { max_fw_iters } => {
                format!("squeeze:iters={max_fw_iters},{window}")
            }
            FaultKind::ActorKill { actor } => {
                format!("kill:actor={},{window}", actor.label())
            }
            FaultKind::ActorStall { actor, ms } => {
                format!("stall:actor={},ms={ms},{window}", actor.label())
            }
            FaultKind::SocketDrop => format!("sockdrop:{window}"),
        }
    }

    fn validate(&self, index: usize) -> Result<(), FaultPlanError> {
        if self.start >= self.end {
            return Err(FaultPlanError::new(format!(
                "fault {index} ({}): empty window [{}, {})",
                self.label(),
                self.start,
                self.end
            )));
        }
        let bad_magnitude = |what: &str, v: f64| {
            FaultPlanError::new(format!(
                "fault {index} ({}): {what} must be finite and positive, got {v}",
                self.label()
            ))
        };
        match self.kind {
            FaultKind::AvailabilityCollapse { fraction, .. } => {
                if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                    return Err(FaultPlanError::new(format!(
                        "fault {index} (collapse): fraction must lie in [0, 1], got {fraction}"
                    )));
                }
            }
            FaultKind::PriceSpike { factor, .. } => {
                if !factor.is_finite() || factor <= 0.0 {
                    return Err(bad_magnitude("factor", factor));
                }
            }
            FaultKind::ArrivalBurst { factor, .. } => {
                if !factor.is_finite() || factor <= 0.0 {
                    return Err(bad_magnitude("factor", factor));
                }
            }
            FaultKind::SolverSqueeze { max_fw_iters } => {
                if max_fw_iters == 0 {
                    return Err(FaultPlanError::new(format!(
                        "fault {index} (squeeze): iters must be at least 1"
                    )));
                }
            }
            FaultKind::ActorStall { ms, .. } => {
                if ms == 0 {
                    return Err(FaultPlanError::new(format!(
                        "fault {index} (stall): ms must be at least 1"
                    )));
                }
            }
            FaultKind::DcOutage { .. }
            | FaultKind::PriceGap { .. }
            | FaultKind::ActorKill { .. }
            | FaultKind::SocketDrop => {}
        }
        Ok(())
    }
}

/// An ordered list of timed faults. See the [module docs](crate) for the
/// compact spec DSL.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (applying it is the identity).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit faults, validating each (windows must be
    /// non-empty, magnitudes in range).
    ///
    /// # Errors
    /// [`FaultPlanError`] naming the first invalid fault.
    pub fn new(faults: Vec<Fault>) -> Result<Self, FaultPlanError> {
        for (index, fault) in faults.iter().enumerate() {
            fault.validate(index)?;
        }
        Ok(Self { faults })
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Appends another plan's faults after this plan's (plans compose by
    /// concatenation; application order is plan order).
    #[must_use]
    pub fn concat(mut self, other: FaultPlan) -> Self {
        self.faults.extend(other.faults);
        self
    }

    /// Parses the compact spec DSL: `;`-separated clauses of the form
    /// `kind:key=value,...`. Whitespace around clauses is ignored; empty
    /// clauses are skipped (so trailing `;` is fine).
    ///
    /// ```text
    /// outage:dc=2,start=120,end=144
    /// collapse:dc=1,fraction=0.25,start=10,end=20
    /// spike:dc=0,factor=5,start=5,end=8
    /// gap:dc=0,start=5,end=8
    /// burst:factor=3,start=50,end=60          (optionally ,job=4)
    /// squeeze:iters=2,start=100,end=200
    /// ```
    ///
    /// # Errors
    /// [`FaultPlanError`] with the offending clause and key on any syntax
    /// or range problem.
    pub fn parse(spec: &str) -> Result<Self, FaultPlanError> {
        let mut faults = Vec::new();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            faults.push(parse_clause(clause)?);
        }
        Self::new(faults)
    }

    /// The canonical one-line spec: `;`-joined clause specs.
    /// `FaultPlan::parse(&plan.spec())` reproduces the plan exactly.
    pub fn spec(&self) -> String {
        self.faults
            .iter()
            .map(Fault::spec)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Checks every targeted index against a concrete system shape.
    ///
    /// # Errors
    /// [`FaultPlanError`] naming the first fault whose data center or job
    /// class is out of range.
    pub fn validate_for(&self, num_dcs: usize, num_jobs: usize) -> Result<(), FaultPlanError> {
        for (index, fault) in self.faults.iter().enumerate() {
            if let Some(dc) = fault.dc() {
                if dc >= num_dcs {
                    return Err(FaultPlanError::new(format!(
                        "fault {index} ({}): data center {dc} out of range (system has {num_dcs})",
                        fault.label()
                    )));
                }
            }
            if let Some(job) = fault.job() {
                if job >= num_jobs {
                    return Err(FaultPlanError::new(format!(
                        "fault {index} ({}): job class {job} out of range (system has {num_jobs})",
                        fault.label()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Whether the plan contains any runtime-only chaos clause
    /// (`kill`/`stall`/`sockdrop`). The simulation binaries reject such
    /// plans — chaos clauses only mean something under `grefar-served`'s
    /// supervisor.
    pub fn has_chaos(&self) -> bool {
        self.faults.iter().any(Fault::is_chaos)
    }

    /// Faults whose window starts exactly at `slot` (for `fault.inject`
    /// telemetry).
    pub fn starting_at(&self, slot: u64) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| f.start == slot)
    }

    /// Faults active during `slot`.
    pub fn active_at(&self, slot: u64) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| f.active_at(slot))
    }

    /// The tightest Frank–Wolfe iteration budget any active
    /// [`FaultKind::SolverSqueeze`] imposes at `slot`, if one is active.
    pub fn fw_budget_at(&self, slot: u64) -> Option<usize> {
        self.active_at(slot)
            .filter_map(|f| match f.kind {
                FaultKind::SolverSqueeze { max_fw_iters } => Some(max_fw_iters),
                _ => None,
            })
            .min()
    }

    /// The last slot any fault touches (`end − 1`), or `None` for an empty
    /// plan.
    pub fn last_slot(&self) -> Option<u64> {
        self.faults.iter().map(|f| f.end - 1).max()
    }

    /// Applies the plan's data faults to an explicit horizon in place, in
    /// plan order. `states[t]`/`arrivals[t]` describe slot `t`; windows past
    /// the horizon are silently clipped. [`FaultKind::SolverSqueeze`] has no
    /// data effect (it acts through the scheduler's budget; see
    /// [`fw_budget_at`](Self::fw_budget_at)).
    ///
    /// Burst arrivals are re-rounded to whole jobs, preserving the paper's
    /// integral job counts (§III-C.2).
    ///
    /// # Errors
    /// [`FaultPlanError`] if a fault targets a data center or job class the
    /// horizon does not have. The horizon is unmodified on error.
    pub fn apply(
        &self,
        states: &mut [SystemState],
        arrivals: &mut [Vec<f64>],
    ) -> Result<(), FaultPlanError> {
        let num_dcs = states.first().map_or(0, SystemState::num_data_centers);
        let num_jobs = arrivals.first().map_or(0, Vec::len);
        self.validate_for(num_dcs, num_jobs)?;
        let horizon = states.len() as u64;
        for fault in &self.faults {
            let window = fault.start..fault.end.min(horizon);
            match fault.kind {
                FaultKind::DcOutage { dc } => {
                    for t in window {
                        let state = &mut states[t as usize];
                        *state = rebuild_dc(state, dc, |d| {
                            DataCenterState::new(
                                vec![0.0; d.available_slice().len()],
                                d.tariff().clone(),
                            )
                        });
                    }
                }
                FaultKind::AvailabilityCollapse { dc, fraction } => {
                    for t in window {
                        let state = &mut states[t as usize];
                        *state = rebuild_dc(state, dc, |d| {
                            let avail = d.available_slice().iter().map(|n| n * fraction).collect();
                            DataCenterState::new(avail, d.tariff().clone())
                        });
                    }
                }
                FaultKind::PriceSpike { dc, factor } => {
                    for t in window {
                        let state = &mut states[t as usize];
                        *state = rebuild_dc(state, dc, |d| {
                            DataCenterState::new(
                                d.available_slice().to_vec(),
                                d.tariff().scaled(factor),
                            )
                        });
                    }
                }
                FaultKind::PriceGap { dc } => {
                    // A dark feed reports its last pre-window value; a gap
                    // opening at t = 0 freezes the initial price.
                    let held_slot = fault.start.saturating_sub(1).min(horizon - 1);
                    let held = states[held_slot as usize].data_center(dc).tariff().clone();
                    for t in window {
                        let state = &mut states[t as usize];
                        let tariff = held.clone();
                        *state = rebuild_dc(state, dc, move |d| {
                            DataCenterState::new(d.available_slice().to_vec(), tariff.clone())
                        });
                    }
                }
                FaultKind::ArrivalBurst { job, factor } => {
                    for t in window {
                        let row = &mut arrivals[t as usize];
                        match job {
                            Some(j) => row[j] = (row[j] * factor).round(),
                            None => {
                                for a in row.iter_mut() {
                                    *a = (*a * factor).round();
                                }
                            }
                        }
                    }
                }
                // Runtime-only faults: the squeeze acts through the
                // scheduler's budget, the chaos clauses through the
                // daemon's supervisor — neither touches frozen inputs.
                FaultKind::SolverSqueeze { .. }
                | FaultKind::ActorKill { .. }
                | FaultKind::ActorStall { .. }
                | FaultKind::SocketDrop => {}
            }
        }
        Ok(())
    }

    /// Generates `events` correlated outage windows from `seed`: for each
    /// event every data center in `dcs` goes down for `duration` slots,
    /// with the individual onsets spread over at most `stagger` slots (a
    /// cascading regional failure). Fully deterministic — the same
    /// arguments always produce the same plan.
    ///
    /// # Panics
    /// Panics if `dcs` is empty, `duration` is zero, or the horizon cannot
    /// fit a window (`horizon <= duration + stagger`).
    pub fn correlated_outages(
        seed: u64,
        dcs: &[usize],
        events: usize,
        horizon: u64,
        duration: u64,
        stagger: u64,
    ) -> Self {
        assert!(!dcs.is_empty(), "need at least one data center");
        assert!(duration > 0, "outage duration must be positive");
        assert!(
            horizon > duration + stagger,
            "horizon {horizon} cannot fit an outage of duration {duration} with stagger {stagger}"
        );
        let mut rng_state = seed ^ 0x6a09_e667_f3bc_c908;
        let span = horizon - duration - stagger;
        let mut faults = Vec::with_capacity(events * dcs.len());
        for _ in 0..events {
            let base = splitmix64(&mut rng_state) % span;
            for &dc in dcs {
                let offset = if stagger == 0 {
                    0
                } else {
                    splitmix64(&mut rng_state) % (stagger + 1)
                };
                let start = base + offset;
                faults.push(Fault {
                    kind: FaultKind::DcOutage { dc },
                    start,
                    end: start + duration,
                });
            }
        }
        Self { faults }
    }
}

/// Rebuilds a [`SystemState`] with data center `dc` replaced by
/// `f(old_dc)`.
fn rebuild_dc(
    state: &SystemState,
    dc: usize,
    f: impl Fn(&DataCenterState) -> DataCenterState,
) -> SystemState {
    let dcs = (0..state.num_data_centers())
        .map(|i| {
            if i == dc {
                f(state.data_center(i))
            } else {
                state.data_center(i).clone()
            }
        })
        .collect();
    SystemState::new(state.slot(), dcs)
}

/// SplitMix64: the small, well-mixed generator behind the seeded outage
/// generator (no external RNG dependency, no ambient entropy).
///
/// Public so downstream deterministic tooling (the `grefar-soak` scenario
/// fuzzer) expands its seeds through the exact same stream the fault layer
/// uses — one generator, one notion of "seed" across the workspace.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_clause(clause: &str) -> Result<Fault, FaultPlanError> {
    let err = |msg: String| FaultPlanError::new(format!("clause {clause:?}: {msg}"));
    let (name, rest) = clause
        .split_once(':')
        .ok_or_else(|| err("expected `kind:key=value,...`".into()))?;
    let mut keys: Vec<(&str, &str)> = Vec::new();
    for pair in rest.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| err(format!("expected `key=value`, got {pair:?}")))?;
        let key = key.trim();
        if keys.iter().any(|(k, _)| *k == key) {
            return Err(err(format!("duplicate key `{key}`")));
        }
        keys.push((key, value.trim()));
    }
    let take = |key: &str| keys.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let int = |key: &str| -> Result<u64, FaultPlanError> {
        let raw = take(key).ok_or_else(|| err(format!("missing key `{key}`")))?;
        raw.parse()
            .map_err(|_| err(format!("key `{key}`: expected an integer, got {raw:?}")))
    };
    let float = |key: &str| -> Result<f64, FaultPlanError> {
        let raw = take(key).ok_or_else(|| err(format!("missing key `{key}`")))?;
        raw.parse()
            .map_err(|_| err(format!("key `{key}`: expected a number, got {raw:?}")))
    };
    let actor = || -> Result<ActorTarget, FaultPlanError> {
        let raw = take("actor").ok_or_else(|| err("missing key `actor`".into()))?;
        ActorTarget::parse(raw).ok_or_else(|| {
            err(format!(
                "key `actor`: expected one of admission, state_keeper, feeds, telemetry; got {raw:?}"
            ))
        })
    };
    let known_keys: &[&str] = match name.trim() {
        "outage" | "gap" => &["dc", "start", "end"],
        "collapse" => &["dc", "fraction", "start", "end"],
        "spike" => &["dc", "factor", "start", "end"],
        "burst" => &["factor", "job", "start", "end"],
        "squeeze" => &["iters", "start", "end"],
        "kill" => &["actor", "start", "end"],
        "stall" => &["actor", "ms", "start", "end"],
        "sockdrop" => &["start", "end"],
        other => return Err(err(format!("unknown fault kind `{other}`"))),
    };
    if let Some((key, _)) = keys.iter().find(|(k, _)| !known_keys.contains(k)) {
        return Err(err(format!("unknown key `{key}`")));
    }
    let kind = match name.trim() {
        "outage" => FaultKind::DcOutage {
            dc: int("dc")? as usize,
        },
        "collapse" => FaultKind::AvailabilityCollapse {
            dc: int("dc")? as usize,
            fraction: float("fraction")?,
        },
        "spike" => FaultKind::PriceSpike {
            dc: int("dc")? as usize,
            factor: float("factor")?,
        },
        "gap" => FaultKind::PriceGap {
            dc: int("dc")? as usize,
        },
        "burst" => FaultKind::ArrivalBurst {
            job: match take("job") {
                Some(_) => Some(int("job")? as usize),
                None => None,
            },
            factor: float("factor")?,
        },
        "squeeze" => FaultKind::SolverSqueeze {
            max_fw_iters: int("iters")? as usize,
        },
        "kill" => FaultKind::ActorKill { actor: actor()? },
        "stall" => FaultKind::ActorStall {
            actor: actor()?,
            ms: int("ms")?,
        },
        "sockdrop" => FaultKind::SocketDrop,
        _ => unreachable!("kind validated above"),
    };
    Ok(Fault {
        kind,
        start: int("start")?,
        end: int("end")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::Tariff;

    fn horizon(slots: usize, dcs: usize, price: f64) -> (Vec<SystemState>, Vec<Vec<f64>>) {
        let states = (0..slots)
            .map(|t| {
                SystemState::new(
                    t as u64,
                    (0..dcs)
                        .map(|_| DataCenterState::new(vec![10.0, 4.0], Tariff::flat(price)))
                        .collect(),
                )
            })
            .collect();
        let arrivals = vec![vec![3.0, 1.0]; slots];
        (states, arrivals)
    }

    #[test]
    fn parse_spec_roundtrip() {
        let spec = "outage:dc=2,start=120,end=144;collapse:dc=1,fraction=0.25,start=10,end=20;\
                    spike:dc=0,factor=5,start=5,end=8;gap:dc=0,start=5,end=8;\
                    burst:factor=3,job=1,start=50,end=60;squeeze:iters=2,start=100,end=200";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.faults().len(), 6);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert_eq!(plan.spec(), spec.replace(" ", "").replace("\n", ""));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "meteor:dc=0,start=1,end=2",
            "outage:dc=0,start=2,end=2",
            "outage:dc=0,start=1",
            "outage:dc=x,start=1,end=2",
            "collapse:dc=0,fraction=1.5,start=1,end=2",
            "spike:dc=0,factor=-1,start=1,end=2",
            "spike:dc=0,factor=nope,start=1,end=2",
            "squeeze:iters=0,start=1,end=2",
            "outage:dc=0,dc=1,start=1,end=2",
            "outage:dc=0,job=1,start=1,end=2",
            "outage dc=0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} parsed");
        }
        // Trailing separators and whitespace are tolerated.
        assert!(FaultPlan::parse(" outage:dc=0,start=1,end=2 ; ").is_ok());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn chaos_clauses_roundtrip_and_stay_runtime_only() {
        let spec = "kill:actor=state_keeper,start=3,end=4;\
                    stall:actor=admission,ms=50,start=5,end=7;\
                    sockdrop:start=8,end=9";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert_eq!(plan.spec(), spec.replace(" ", "").replace("\n", ""));
        assert!(plan.has_chaos());
        assert!(plan.faults().iter().all(Fault::is_chaos));
        assert_eq!(
            plan.faults()[0].actor().map(ActorTarget::label),
            Some("state_keeper")
        );
        assert_eq!(plan.faults()[1].magnitude(), Some(50.0));
        assert_eq!(plan.faults()[2].actor(), None);
        assert_eq!(
            ["kill", "stall", "sockdrop"].as_slice(),
            plan.faults()
                .iter()
                .map(Fault::label)
                .collect::<Vec<_>>()
                .as_slice()
        );
        // Chaos clauses never touch frozen inputs or solver budgets.
        let (mut states, mut arrivals) = horizon(10, 1, 0.4);
        let before = (states.clone(), arrivals.clone());
        plan.apply(&mut states, &mut arrivals).unwrap();
        assert_eq!((states, arrivals), before);
        assert_eq!(plan.fw_budget_at(3), None);
        assert!(!FaultPlan::parse("outage:dc=0,start=1,end=2")
            .unwrap()
            .has_chaos());
    }

    #[test]
    fn chaos_clauses_reject_bad_keys() {
        for bad in [
            "kill:actor=reactor,start=1,end=2",
            "kill:start=1,end=2",
            "stall:actor=feeds,ms=0,start=1,end=2",
            "stall:actor=feeds,start=1,end=2",
            "sockdrop:actor=feeds,start=1,end=2",
            "kill:actor=state_keeper,start=2,end=2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn outage_zeroes_availability_in_window_only() {
        let (mut states, mut arrivals) = horizon(10, 2, 0.5);
        let plan = FaultPlan::parse("outage:dc=1,start=3,end=6").unwrap();
        plan.apply(&mut states, &mut arrivals).unwrap();
        for t in 0..10 {
            let expected = if (3..6).contains(&t) { 0.0 } else { 10.0 };
            assert_eq!(states[t].data_center(1).available(0), expected, "slot {t}");
            assert_eq!(states[t].data_center(0).available(0), 10.0, "slot {t}");
        }
    }

    #[test]
    fn collapse_spike_and_burst_scale_values() {
        let (mut states, mut arrivals) = horizon(4, 1, 0.4);
        let plan =
            FaultPlan::parse("collapse:dc=0,fraction=0.5,start=1,end=2;spike:dc=0,factor=3,start=2,end=3;burst:factor=2,start=3,end=4")
                .unwrap();
        plan.apply(&mut states, &mut arrivals).unwrap();
        assert_eq!(states[1].data_center(0).available(0), 5.0);
        assert_eq!(states[1].data_center(0).available(1), 2.0);
        assert!((states[2].data_center(0).price() - 1.2).abs() < 1e-12);
        assert_eq!(arrivals[3], vec![6.0, 2.0]);
        assert_eq!(arrivals[2], vec![3.0, 1.0]);
    }

    #[test]
    fn price_gap_holds_last_known_value() {
        let (mut states, mut arrivals) = horizon(6, 1, 0.4);
        // First spike slots 2..6 to 0.8, then a gap over 3..5 holds the
        // slot-2 value (which the earlier clause already spiked).
        let plan =
            FaultPlan::parse("spike:dc=0,factor=2,start=2,end=6;gap:dc=0,start=3,end=5").unwrap();
        plan.apply(&mut states, &mut arrivals).unwrap();
        assert!((states[3].data_center(0).price() - 0.8).abs() < 1e-12);
        assert!((states[4].data_center(0).price() - 0.8).abs() < 1e-12);
        assert!((states[5].data_center(0).price() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn apply_rejects_out_of_range_targets_without_mutating() {
        let (mut states, mut arrivals) = horizon(4, 2, 0.5);
        let before = states.clone();
        let plan = FaultPlan::parse("outage:dc=0,start=0,end=4;outage:dc=9,start=0,end=2").unwrap();
        assert!(plan.apply(&mut states, &mut arrivals).is_err());
        assert_eq!(states, before, "failed apply must not mutate");
        let plan = FaultPlan::parse("burst:factor=2,job=7,start=0,end=1").unwrap();
        assert!(plan.apply(&mut states, &mut arrivals).is_err());
    }

    #[test]
    fn budget_and_queries() {
        let plan =
            FaultPlan::parse("squeeze:iters=5,start=10,end=20;squeeze:iters=2,start=15,end=17")
                .unwrap();
        assert_eq!(plan.fw_budget_at(9), None);
        assert_eq!(plan.fw_budget_at(10), Some(5));
        assert_eq!(plan.fw_budget_at(16), Some(2));
        assert_eq!(plan.fw_budget_at(19), Some(5));
        assert_eq!(plan.starting_at(15).count(), 1);
        assert_eq!(plan.last_slot(), Some(19));
        assert_eq!(FaultPlan::empty().last_slot(), None);
    }

    #[test]
    fn correlated_outages_are_deterministic_and_correlated() {
        let a = FaultPlan::correlated_outages(7, &[0, 1, 2], 2, 500, 12, 3);
        let b = FaultPlan::correlated_outages(7, &[0, 1, 2], 2, 500, 12, 3);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 6);
        // Each event's onsets are within `stagger` slots of each other and
        // inside the horizon.
        for event in a.faults().chunks(3) {
            let starts: Vec<u64> = event.iter().map(|f| f.start).collect();
            let min = *starts.iter().min().unwrap();
            let max = *starts.iter().max().unwrap();
            assert!(max - min <= 3, "onsets {starts:?} not correlated");
            for f in event {
                assert_eq!(f.end - f.start, 12);
                assert!(f.end <= 500);
            }
        }
        let c = FaultPlan::correlated_outages(8, &[0, 1, 2], 2, 500, 12, 3);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn concat_composes_in_order() {
        let a = FaultPlan::parse("outage:dc=0,start=1,end=2").unwrap();
        let b = FaultPlan::parse("spike:dc=0,factor=2,start=3,end=4").unwrap();
        let joined = a.clone().concat(b);
        assert_eq!(joined.faults().len(), 2);
        assert_eq!(joined.faults()[0], a.faults()[0]);
    }
}
