//! Property test behind the `strict-invariants` layer: whatever the system
//! looks like, `GreFar::decide` must return an action satisfying the
//! constraints the analysis assumes — (4), (5), (11), non-negativity —
//! plus GreFar's own backlog discipline (never route or serve more than
//! is queued). The checkers of `grefar_core::invariant` are the oracle,
//! so this test also pins down that the deployed checkers accept real
//! scheduler output (no false alarms).

use grefar_core::{invariant, GreFar, GreFarParams, QueueState, Scheduler};
use grefar_types::{
    DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized but always-valid system: 1–3 data centers, 1–2 server
/// classes, 1–3 job classes with random eligibility sets and bounds.
fn random_system(rng: &mut StdRng) -> SystemConfig {
    let n = rng.gen_range(1..=3);
    let k = rng.gen_range(1..=2);
    let j = rng.gen_range(1..=3);
    let mut builder = SystemConfig::builder();
    for _ in 0..k {
        builder = builder.server_class(ServerClass::new(
            rng.gen_range(0.5f64..2.0),
            rng.gen_range(0.2f64..1.5),
        ));
    }
    for i in 0..n {
        let fleet: Vec<f64> = (0..k)
            .map(|_| rng.gen_range(0.0f64..30.0).floor())
            .collect();
        builder = builder.data_center(format!("dc{i}"), fleet);
    }
    let accounts = rng.gen_range(1usize..=2);
    for m in 0..accounts {
        builder = builder.account(format!("org{m}"), rng.gen_range(0.1f64..1.0));
    }
    for _ in 0..j {
        // Non-empty random eligibility set.
        let mut eligible: Vec<DataCenterId> = (0..n)
            .filter(|_| rng.gen_bool(0.6))
            .map(DataCenterId::new)
            .collect();
        if eligible.is_empty() {
            eligible.push(DataCenterId::new(rng.gen_range(0..n)));
        }
        builder = builder.job_class(
            JobClass::new(
                rng.gen_range(0.5f64..3.0),
                eligible,
                rng.gen_range(0..accounts),
            )
            .with_max_arrivals(rng.gen_range(1.0f64..6.0).floor())
            .with_max_route(rng.gen_range(1.0f64..10.0).floor())
            .with_max_process(rng.gen_range(1.0f64..12.0)),
        );
    }
    builder.build().expect("randomized config is valid")
}

/// A random state: partial availability (including fully-failed data
/// centers) and random flat prices.
fn random_state(config: &SystemConfig, rng: &mut StdRng, slot: u64) -> SystemState {
    let dcs = config
        .data_centers()
        .iter()
        .map(|dc| {
            let avail: Vec<f64> = dc
                .fleet()
                .iter()
                .map(|&f| (f * rng.gen_range(0.0f64..=1.0)).floor())
                .collect();
            DataCenterState::new(avail, Tariff::flat(rng.gen_range(0.01f64..2.0)))
        })
        .collect();
    SystemState::new(slot, dcs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Every decision on every reachable queue state is feasible and
    /// respects backlogs, for both the greedy (β = 0) and the
    /// Frank–Wolfe (β > 0) solve paths.
    #[test]
    fn grefar_decisions_are_always_feasible(seed in any::<u64>(), fair in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = random_system(&mut rng);
        let v = rng.gen_range(0.0f64..50.0);
        let beta = if fair { rng.gen_range(0.1f64..5.0) } else { 0.0 };
        let mut grefar = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid params");
        let mut queues = QueueState::new(&config);
        let j = config.num_job_classes();

        for t in 0..12u64 {
            let state = random_state(&config, &mut rng, t);
            let decision = grefar.decide(&state, &queues);

            if let Err(violation) = invariant::check_decision(&config, &state, &decision) {
                prop_assert!(false, "slot {t}: infeasible decision: {violation}");
            }
            if let Err(violation) =
                invariant::check_backlog_discipline(&config, &queues, &decision)
            {
                prop_assert!(false, "slot {t}: backlog discipline broken: {violation}");
            }

            // Advance with admissible random arrivals and re-check that the
            // realized transition matches (12)-(13).
            let arrivals: Vec<f64> = (0..j)
                .map(|jj| {
                    let a_max = config.job_classes()[jj].max_arrivals();
                    rng.gen_range(0.0f64..=a_max).floor()
                })
                .collect();
            let prev = queues.clone();
            queues.apply(&decision, &arrivals);
            if let Err(violation) =
                invariant::check_queue_update(&config, &prev, &decision, &arrivals, &queues)
            {
                prop_assert!(false, "slot {t}: queue dynamics drifted: {violation}");
            }
        }
    }
}
