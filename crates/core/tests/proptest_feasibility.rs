//! Property test behind the `strict-invariants` layer: whatever the system
//! looks like, `GreFar::decide` must return an action satisfying the
//! constraints the analysis assumes — (4), (5), (11), non-negativity —
//! plus GreFar's own backlog discipline (never route or serve more than
//! is queued). The checkers of `grefar_core::invariant` are the oracle,
//! so this test also pins down that the deployed checkers accept real
//! scheduler output (no false alarms).

use grefar_core::theory::{slackness_delta_trace, TheoryBounds};
use grefar_core::{invariant, GreFar, GreFarParams, QueueState, Scheduler, SolverBudget};
use grefar_faults::FaultPlan;
use grefar_types::{
    DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized but always-valid system: 1–3 data centers, 1–2 server
/// classes, 1–3 job classes with random eligibility sets and bounds.
fn random_system(rng: &mut StdRng) -> SystemConfig {
    let n = rng.gen_range(1..=3);
    let k = rng.gen_range(1..=2);
    let j = rng.gen_range(1..=3);
    let mut builder = SystemConfig::builder();
    for _ in 0..k {
        builder = builder.server_class(ServerClass::new(
            rng.gen_range(0.5f64..2.0),
            rng.gen_range(0.2f64..1.5),
        ));
    }
    for i in 0..n {
        let fleet: Vec<f64> = (0..k)
            .map(|_| rng.gen_range(0.0f64..30.0).floor())
            .collect();
        builder = builder.data_center(format!("dc{i}"), fleet);
    }
    let accounts = rng.gen_range(1usize..=2);
    for m in 0..accounts {
        builder = builder.account(format!("org{m}"), rng.gen_range(0.1f64..1.0));
    }
    for _ in 0..j {
        // Non-empty random eligibility set.
        let mut eligible: Vec<DataCenterId> = (0..n)
            .filter(|_| rng.gen_bool(0.6))
            .map(DataCenterId::new)
            .collect();
        if eligible.is_empty() {
            eligible.push(DataCenterId::new(rng.gen_range(0..n)));
        }
        builder = builder.job_class(
            JobClass::new(
                rng.gen_range(0.5f64..3.0),
                eligible,
                rng.gen_range(0..accounts),
            )
            .with_max_arrivals(rng.gen_range(1.0f64..6.0).floor())
            .with_max_route(rng.gen_range(1.0f64..10.0).floor())
            .with_max_process(rng.gen_range(1.0f64..12.0)),
        );
    }
    builder.build().expect("randomized config is valid")
}

/// A nominal horizon for the fault-plan property test: full availability,
/// flat random prices, admissible whole-number arrivals. Returns the state
/// trace, the arrival trace and the largest flat price used.
fn nominal_horizon(
    config: &SystemConfig,
    rng: &mut StdRng,
    horizon: u64,
) -> (Vec<SystemState>, Vec<Vec<f64>>, f64) {
    let j = config.num_job_classes();
    let mut price_max: f64 = 0.0;
    let mut states = Vec::with_capacity(horizon as usize);
    let mut arrivals = Vec::with_capacity(horizon as usize);
    for t in 0..horizon {
        let dcs = config
            .data_centers()
            .iter()
            .map(|dc| {
                let price = rng.gen_range(0.01f64..1.0);
                price_max = price_max.max(price);
                DataCenterState::new(dc.fleet().to_vec(), Tariff::flat(price))
            })
            .collect();
        states.push(SystemState::new(t, dcs));
        arrivals.push(
            (0..j)
                .map(|jj| {
                    let a_max = config.job_classes()[jj].max_arrivals();
                    rng.gen_range(0.0f64..=a_max).floor()
                })
                .collect(),
        );
    }
    (states, arrivals, price_max)
}

/// A random fault plan whose targets are in range for `config` and whose
/// windows fall inside `[0, horizon)`. Magnitudes are biased mild (partial
/// collapses, small bursts) so a useful share of sampled traces stays
/// admissible. Returns the plan plus the largest price-spike factor, which
/// the caller needs to keep `price_max` an upper bound after faulting.
fn random_fault_plan(config: &SystemConfig, rng: &mut StdRng, horizon: u64) -> (FaultPlan, f64) {
    let n = config.num_data_centers();
    let j = config.num_job_classes();
    let mut spike_max: f64 = 1.0;
    let clauses: Vec<String> = (0..rng.gen_range(1usize..=3))
        .map(|_| {
            let start = rng.gen_range(0..horizon - 1);
            let end = rng.gen_range(start + 1..=(start + horizon / 2).min(horizon));
            let window = format!("start={start},end={end}");
            let dc = rng.gen_range(0..n);
            match rng.gen_range(0..6) {
                0 => format!("outage:dc={dc},{window}"),
                1 => {
                    let fraction = rng.gen_range(0.5f64..1.0);
                    format!("collapse:dc={dc},fraction={fraction:.3},{window}")
                }
                2 => {
                    let factor = rng.gen_range(1.0f64..4.0);
                    spike_max = spike_max.max(factor);
                    format!("spike:dc={dc},factor={factor:.3},{window}")
                }
                3 => format!("gap:dc={dc},{window}"),
                4 => {
                    let factor = rng.gen_range(1.0f64..2.0);
                    if rng.gen_bool(0.5) {
                        let job = rng.gen_range(0..j);
                        format!("burst:factor={factor:.3},job={job},{window}")
                    } else {
                        format!("burst:factor={factor:.3},{window}")
                    }
                }
                _ => {
                    let iters = rng.gen_range(1usize..=3);
                    format!("squeeze:iters={iters},{window}")
                }
            }
        })
        .collect();
    let plan = FaultPlan::parse(&clauses.join(";")).expect("generated clauses are well-formed");
    (plan, spike_max)
}

/// A random state: partial availability (including fully-failed data
/// centers) and random flat prices.
fn random_state(config: &SystemConfig, rng: &mut StdRng, slot: u64) -> SystemState {
    let dcs = config
        .data_centers()
        .iter()
        .map(|dc| {
            let avail: Vec<f64> = dc
                .fleet()
                .iter()
                .map(|&f| (f * rng.gen_range(0.0f64..=1.0)).floor())
                .collect();
            DataCenterState::new(avail, Tariff::flat(rng.gen_range(0.01f64..2.0)))
        })
        .collect();
    SystemState::new(slot, dcs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Every decision on every reachable queue state is feasible and
    /// respects backlogs, for both the greedy (β = 0) and the
    /// Frank–Wolfe (β > 0) solve paths.
    #[test]
    fn grefar_decisions_are_always_feasible(seed in any::<u64>(), fair in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = random_system(&mut rng);
        let v = rng.gen_range(0.0f64..50.0);
        let beta = if fair { rng.gen_range(0.1f64..5.0) } else { 0.0 };
        let mut grefar = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid params");
        let mut queues = QueueState::new(&config);
        let j = config.num_job_classes();

        for t in 0..12u64 {
            let state = random_state(&config, &mut rng, t);
            let decision = grefar.decide(&state, &queues);

            if let Err(violation) = invariant::check_decision(&config, &state, &decision) {
                prop_assert!(false, "slot {t}: infeasible decision: {violation}");
            }
            if let Err(violation) =
                invariant::check_backlog_discipline(&config, &queues, &decision)
            {
                prop_assert!(false, "slot {t}: backlog discipline broken: {violation}");
            }

            // Advance with admissible random arrivals and re-check that the
            // realized transition matches (12)-(13).
            let arrivals: Vec<f64> = (0..j)
                .map(|jj| {
                    let a_max = config.job_classes()[jj].max_arrivals();
                    rng.gen_range(0.0f64..=a_max).floor()
                })
                .collect();
            let prev = queues.clone();
            queues.apply(&decision, &arrivals);
            if let Err(violation) =
                invariant::check_queue_update(&config, &prev, &decision, &arrivals, &queues)
            {
                prop_assert!(false, "slot {t}: queue dynamics drifted: {violation}");
            }
        }
    }
}

proptest! {
    // Each case simulates a full horizon and a large share of sampled
    // traces is rejected as inadmissible, so fewer (but heavier) cases.
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 1(a) under faults: for any randomly generated fault plan
    /// that leaves the realized trace *admissible* (certified slack
    /// δ > 0), every queue stays below the `queue_bound(V)` envelope —
    /// outages, collapses, price spikes/gaps, bursts and solver squeezes
    /// included. Squeezes exercise the degraded-mode fallback chain, so
    /// this also pins down that fallback decisions preserve the bound.
    #[test]
    fn queue_bound_holds_under_admissible_fault_plans(seed in any::<u64>(), fair in any::<bool>()) {
        let horizon = 36u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let config = random_system(&mut rng);
        let (mut states, mut arrivals, mut price_max) =
            nominal_horizon(&config, &mut rng, horizon);
        let (plan, spike_max) = random_fault_plan(&config, &mut rng, horizon);
        plan.apply(&mut states, &mut arrivals)
            .expect("generated plan targets are in range");
        price_max *= spike_max;

        // Admissibility after faulting: the trace must still certify a
        // positive slackness δ, with a small margin so the bound is not
        // vacuously astronomical near δ = 0.
        let capacities: Vec<Vec<f64>> = states
            .iter()
            .map(|state| {
                (0..config.num_data_centers())
                    .map(|i| state.data_center(i).capacity(config.server_classes()))
                    .collect()
            })
            .collect();
        let delta = slackness_delta_trace(&config, &capacities, &arrivals);
        prop_assume!(matches!(delta, Some(d) if d > 0.05));
        let delta = delta.expect("assumed Some above");

        let v = rng.gen_range(1.0f64..30.0);
        let beta = if fair { rng.gen_range(0.1f64..5.0) } else { 0.0 };
        let bound = TheoryBounds::new(&config, delta, price_max, beta).queue_bound(v);

        let mut grefar = GreFar::new(&config, GreFarParams::new(v, beta)).expect("valid params");
        let mut queues = QueueState::new(&config);
        for t in 0..horizon {
            grefar.set_solver_budget(plan.fw_budget_at(t).map(SolverBudget::fw_iters));
            let decision = grefar.decide(&states[t as usize], &queues);
            if let Err(violation) =
                invariant::check_decision(&config, &states[t as usize], &decision)
            {
                prop_assert!(false, "slot {t}: infeasible decision under faults: {violation}");
            }
            queues.apply(&decision, &arrivals[t as usize]);
            prop_assert!(
                queues.max_len() <= bound + 1e-6,
                "slot {t}: queue {} exceeded Theorem 1(a) bound {bound} \
                 (delta {delta}, V {v}, plan `{}`)",
                queues.max_len(),
                plan.spec(),
            );
        }
    }
}
