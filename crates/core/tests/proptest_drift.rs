//! Numerical verification of the drift inequality (29) — the backbone of
//! Theorem 1's proof — on random queue states and random bounded actions:
//!
//! ```text
//! L(Θ(t+1)) − L(Θ(t)) ≤ B + Σ_j Q_j·[a_j − Σ_i r_{i,j}] + Σ_{i,j} q_{i,j}·[r_{i,j} − h_{i,j}]
//! ```
//!
//! with `B = ½Σ_j[(Σ_i r^max)² + (a^max)²] + ½Σ_{i,j}[(r^max)² + (h^max)²]`
//! (the standard constant; the paper's (30) drops a square — see
//! `grefar_core::theory`).

use grefar_core::{theory::TheoryBounds, QueueState};
use grefar_types::{DataCenterId, JobClass, ServerClass, SystemConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn system(n: usize, j: usize) -> SystemConfig {
    let mut builder = SystemConfig::builder().server_class(ServerClass::new(1.0, 1.0));
    for i in 0..n {
        builder = builder.data_center(format!("dc{i}"), vec![50.0]);
    }
    builder = builder.account("only", 1.0);
    for _ in 0..j {
        builder = builder.job_class(
            JobClass::new(1.0, (0..n).map(DataCenterId::new).collect(), 0)
                .with_max_arrivals(6.0)
                .with_max_route(5.0)
                .with_max_process(9.0),
        );
    }
    builder.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The one-step Lyapunov drift obeys inequality (29) for arbitrary
    /// bounded actions and arrivals, from arbitrary reachable queue states.
    #[test]
    fn one_step_drift_inequality(seed in any::<u64>(), n in 1usize..3, j in 1usize..3) {
        let config = system(n, j);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queues = QueueState::new(&config);

        // Reach a random state by applying a few random slots.
        for _ in 0..rng.gen_range(0..6) {
            let mut z = config.decision_zeros();
            for jj in 0..j {
                for i in 0..n {
                    z.routed[(i, jj)] = rng.gen_range(0.0f64..5.0).floor();
                    z.processed[(i, jj)] = rng.gen_range(0.0f64..9.0);
                }
            }
            let arrivals: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0f64..6.0).floor()).collect();
            queues.apply(&z, &arrivals);
        }

        // One measured step with fresh random action and arrivals.
        let mut z = config.decision_zeros();
        for jj in 0..j {
            for i in 0..n {
                z.routed[(i, jj)] = rng.gen_range(0.0f64..5.0).floor();
                z.processed[(i, jj)] = rng.gen_range(0.0f64..9.0);
            }
        }
        let arrivals: Vec<f64> = (0..j).map(|_| rng.gen_range(0.0f64..6.0).floor()).collect();

        let l_before = queues.lyapunov();
        // Right-hand side of (29) uses the *pre-update* queues.
        let bounds = TheoryBounds::new(&config, 1.0, 1.0, 0.0);
        let mut rhs = bounds.b_const();
        for jj in 0..j {
            let routed: f64 = (0..n).map(|i| z.routed[(i, jj)]).sum();
            rhs += queues.central(jj) * (arrivals[jj] - routed);
            for i in 0..n {
                rhs += queues.local(i, jj) * (z.routed[(i, jj)] - z.processed[(i, jj)]);
            }
        }
        let mut after = queues.clone();
        after.apply(&z, &arrivals);
        let drift = after.lyapunov() - l_before;
        prop_assert!(
            drift <= rhs + 1e-9,
            "drift {drift} exceeds the (29) bound {rhs}"
        );
    }

    /// Queue lengths never exceed (previous + max change) and never go
    /// negative — the `q^max` constant really bounds one-slot changes.
    #[test]
    fn one_slot_queue_change_is_bounded(seed in any::<u64>()) {
        let config = system(2, 2);
        let bounds = TheoryBounds::new(&config, 1.0, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queues = QueueState::new(&config);
        for _ in 0..30 {
            let before_max = queues.max_len();
            let mut z = config.decision_zeros();
            for jj in 0..2 {
                for i in 0..2 {
                    z.routed[(i, jj)] = rng.gen_range(0.0f64..5.0).floor();
                    z.processed[(i, jj)] = rng.gen_range(0.0f64..9.0);
                }
            }
            let arrivals: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0f64..6.0).floor()).collect();
            queues.apply(&z, &arrivals);
            prop_assert!(queues.max_len() <= before_max + bounds.q_max() + 1e-9);
            prop_assert!(queues.central_slice().iter().all(|&v| v >= 0.0));
        }
    }
}
