//! Property-based verification of the exact greedy slot solver against the
//! LP solver on random instances of the β = 0 per-slot problem.
//!
//! The processing part of (14) with flat tariffs is the LP
//!
//! ```text
//! min  V Σ_i φ_i Σ_k p_k b_{i,k} − Σ_{i,j} q_{i,j} h_{i,j}
//! s.t. Σ_j d_j h_{i,j} ≤ Σ_k s_k b_{i,k},  0 ≤ h ≤ h_cap,  0 ≤ b ≤ n
//! ```
//!
//! The greedy fractional matching must achieve the LP optimum exactly.

use grefar_core::{drift_penalty_objective, QuadraticDeviation, QueueState, SlotInstance};
use grefar_lp::{LpProblem, Relation};
use grefar_types::{
    DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Instance {
    config: SystemConfig,
    state: SystemState,
    queues: QueueState,
    v: f64,
}

fn random_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..=3usize);
    let k = rng.gen_range(1..=3usize);
    let j = rng.gen_range(1..=4usize);

    let mut builder = SystemConfig::builder();
    for _ in 0..k {
        builder = builder.server_class(ServerClass::new(
            rng.gen_range(0.5..2.0),
            rng.gen_range(0.1..2.0),
        ));
    }
    for i in 0..n {
        let fleet: Vec<f64> = (0..k)
            .map(|_| rng.gen_range(0.0f64..12.0).floor())
            .collect();
        builder = builder.data_center(format!("dc{i}"), fleet);
    }
    builder = builder.account("only", 1.0);
    for _ in 0..j {
        // Random non-empty eligibility set.
        let mut eligible: Vec<DataCenterId> = (0..n)
            .filter(|_| rng.gen_bool(0.7))
            .map(DataCenterId::new)
            .collect();
        if eligible.is_empty() {
            eligible.push(DataCenterId::new(rng.gen_range(0..n)));
        }
        builder = builder.job_class(
            JobClass::new(rng.gen_range(0.25..3.0), eligible, 0)
                .with_max_arrivals(10.0)
                .with_max_route(10.0)
                .with_max_process(rng.gen_range(0.0..8.0)),
        );
    }
    let config = builder.build().expect("random config is valid");

    let state = SystemState::new(
        0,
        (0..n)
            .map(|i| {
                DataCenterState::new(
                    config.data_centers()[i].fleet().to_vec(),
                    Tariff::flat(rng.gen_range(0.0..1.5)),
                )
            })
            .collect(),
    );

    // Random queues: route random amounts into local queues.
    let mut queues = QueueState::new(&config);
    let mut z = config.decision_zeros();
    for jj in 0..j {
        for i in 0..n {
            if config.job_classes()[jj].is_eligible(DataCenterId::new(i)) {
                z.routed[(i, jj)] = rng.gen_range(0.0f64..9.0).floor();
            }
        }
    }
    queues.apply(&z, &vec![0.0; j]);

    Instance {
        config,
        state,
        queues,
        v: rng.gen_range(0.0..10.0),
    }
}

/// Solves the processing LP with the simplex and returns its optimum.
fn lp_processing_optimum(inst: &Instance) -> f64 {
    let n = inst.config.num_data_centers();
    let j = inst.config.num_job_classes();
    let k = inst.config.num_server_classes();
    let h_var = |i: usize, jj: usize| i * j + jj;
    let b_var = |i: usize, kk: usize| n * j + i * k + kk;

    let mut p = LpProblem::minimize(n * j + n * k);
    for i in 0..n {
        let price = inst.state.data_center(i).price();
        for (kk, class) in inst.config.server_classes().iter().enumerate() {
            p.set_objective(b_var(i, kk), inst.v * price * class.active_power());
            p.set_upper_bound(b_var(i, kk), inst.state.data_center(i).available(kk));
        }
        for (jj, job) in inst.config.job_classes().iter().enumerate() {
            p.set_objective(h_var(i, jj), -inst.queues.local(i, jj));
            let cap = if job.is_eligible(DataCenterId::new(i)) {
                job.max_process().min(inst.queues.local(i, jj))
            } else {
                0.0
            };
            p.set_upper_bound(h_var(i, jj), cap);
        }
        let mut coeffs = Vec::new();
        for (jj, job) in inst.config.job_classes().iter().enumerate() {
            coeffs.push((h_var(i, jj), job.work()));
        }
        for (kk, class) in inst.config.server_classes().iter().enumerate() {
            coeffs.push((b_var(i, kk), -class.speed()));
        }
        p.add_constraint(&coeffs, Relation::Le, 0.0);
    }
    p.solve()
        .expect("processing LP is feasible (0 works)")
        .objective()
}

/// The processing part of the greedy decision's objective.
fn greedy_processing_objective(inst: &Instance) -> f64 {
    let slot = SlotInstance::new(&inst.config, &inst.state, &inst.queues, inst.v);
    let decision = slot.solve_greedy().decision;

    // Full (14) value minus the routing terms = the processing value.
    let full = drift_penalty_objective(
        &inst.config,
        &inst.state,
        &inst.queues,
        &decision,
        inst.v,
        0.0,
        &QuadraticDeviation,
    );
    let mut routing_part = 0.0;
    for (i, jj) in inst.config.eligible_pairs() {
        let (i, jj) = (i.index(), jj.index());
        let r = decision.routed[(i, jj)];
        routing_part -= inst.queues.central(jj) * r;
        routing_part += inst.queues.local(i, jj) * r;
    }
    full - routing_part
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The greedy dispatch achieves the LP optimum of the processing
    /// subproblem on arbitrary random instances.
    #[test]
    fn greedy_matches_lp(seed in any::<u64>()) {
        let inst = random_instance(seed);
        let lp = lp_processing_optimum(&inst);
        let greedy = greedy_processing_objective(&inst);
        let scale = 1.0 + lp.abs();
        prop_assert!(
            (greedy - lp).abs() <= 1e-6 * scale,
            "seed {seed}: greedy {greedy} vs LP {lp}"
        );
    }

    /// The greedy decision is always primal feasible.
    #[test]
    fn greedy_is_feasible(seed in any::<u64>()) {
        let inst = random_instance(seed);
        let slot = SlotInstance::new(&inst.config, &inst.state, &inst.queues, inst.v);
        let d = slot.solve_greedy().decision;
        prop_assert!(d.is_nonnegative());
        prop_assert!(d.is_finite());
        let speeds = inst.config.speed_vector();
        let work = inst.config.work_vector();
        for i in 0..inst.config.num_data_centers() {
            let served = d.work_processed(i, &work);
            let supply = d.supply(i, &speeds);
            prop_assert!(served <= supply + 1e-9, "dc {i}: served {served} > supply {supply}");
            for kk in 0..inst.config.num_server_classes() {
                prop_assert!(d.busy[(i, kk)] <= inst.state.data_center(i).available(kk) + 1e-9);
            }
            for (jj, job) in inst.config.job_classes().iter().enumerate() {
                prop_assert!(d.processed[(i, jj)] <= job.max_process() + 1e-9);
                prop_assert!(d.processed[(i, jj)] <= inst.queues.local(i, jj) + 1e-9);
                if !job.is_eligible(DataCenterId::new(i)) {
                    prop_assert!(d.processed[(i, jj)] == 0.0);
                    prop_assert!(d.routed[(i, jj)] == 0.0);
                }
            }
        }
    }

    /// Routing never exceeds the central backlog and only targets shorter
    /// local queues.
    #[test]
    fn routing_invariants(seed in any::<u64>()) {
        let inst = random_instance(seed);
        let slot = SlotInstance::new(&inst.config, &inst.state, &inst.queues, inst.v);
        let routed = slot.solve_routing();
        for jj in 0..inst.config.num_job_classes() {
            let total = routed.col_sum(jj);
            prop_assert!(total <= inst.queues.central(jj) + 1e-9);
            for i in 0..inst.config.num_data_centers() {
                if routed[(i, jj)] > 0.0 {
                    prop_assert!(inst.queues.local(i, jj) < inst.queues.central(jj));
                    prop_assert!(routed[(i, jj)] <= inst.config.job_classes()[jj].max_route());
                    prop_assert!(routed[(i, jj)].fract() == 0.0, "routing must be integral");
                }
            }
        }
    }
}
