//! Cross-checks for the Frank–Wolfe fairness path (`β > 0`) of the slot
//! solver: against a brute-force grid on tiny instances, against projected
//! subgradient descent, and against the exact greedy at `β = 0`.

use grefar_convex::FwOptions;
use grefar_core::{
    drift_penalty_objective, FairnessFunction, QuadraticDeviation, QueueState, SlotInstance,
};
use grefar_types::{
    DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One DC, two accounts, one job type each — small enough to brute force.
fn tiny_config(h_max: f64) -> SystemConfig {
    SystemConfig::builder()
        .server_class(ServerClass::new(1.0, 1.0))
        .data_center("dc", vec![20.0])
        .account("x", 0.7)
        .account("y", 0.3)
        .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0).with_max_process(h_max))
        .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 1).with_max_process(h_max))
        .build()
        .unwrap()
}

fn queues_with(cfg: &SystemConfig, loads: &[f64]) -> QueueState {
    let mut q = QueueState::new(cfg);
    let mut z = cfg.decision_zeros();
    for (j, &amount) in loads.iter().enumerate() {
        z.routed[(0, j)] = amount;
    }
    q.apply(&z, &vec![0.0; loads.len()]);
    q
}

#[test]
fn fw_matches_brute_force_grid() {
    let cfg = tiny_config(20.0);
    let st = SystemState::new(0, vec![DataCenterState::new(vec![20.0], Tariff::flat(0.8))]);
    let q = queues_with(&cfg, &[9.0, 4.0]);
    let v = 4.0;
    let beta = 120.0;
    let fairness = QuadraticDeviation;

    let inst = SlotInstance::new(&cfg, &st, &q, v);
    let fw = inst.solve_with_fairness(beta, &fairness, FwOptions::default());

    // Brute force over (h0, h1) on a fine grid; b = h0 + h1 (min-power for
    // this single unit-speed class).
    let mut best = f64::INFINITY;
    let steps = 240;
    for a in 0..=steps {
        for b in 0..=steps {
            let h0 = 9.0 * a as f64 / steps as f64;
            let h1 = 4.0 * b as f64 / steps as f64;
            if h0 + h1 > 20.0 {
                continue;
            }
            let mut z = cfg.decision_zeros();
            z.routed = fw.decision.routed.clone();
            z.processed[(0, 0)] = h0;
            z.processed[(0, 1)] = h1;
            z.busy[(0, 0)] = h0 + h1;
            let val = drift_penalty_objective(&cfg, &st, &q, &z, v, beta, &fairness);
            best = best.min(val);
        }
    }
    assert!(
        fw.objective <= best + 0.05 * (1.0 + best.abs()),
        "FW {} vs brute-force {}",
        fw.objective,
        best
    );
}

#[test]
fn fw_matches_projected_subgradient_on_random_instances() {
    use grefar_convex::projection::project_capped_box;
    use grefar_convex::{projected_subgradient, Objective, SubgradientOptions};

    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = tiny_config(30.0);
        let price: f64 = rng.gen_range(0.05..1.2);
        let st = SystemState::new(
            0,
            vec![DataCenterState::new(vec![20.0], Tariff::flat(price))],
        );
        let q0: f64 = rng.gen_range(0.0f64..12.0).floor();
        let q1: f64 = rng.gen_range(0.0f64..12.0).floor();
        let q = queues_with(&cfg, &[q0, q1]);
        let v: f64 = rng.gen_range(0.5..8.0);
        let beta: f64 = rng.gen_range(0.0..200.0);
        let fairness = QuadraticDeviation;

        let inst = SlotInstance::new(&cfg, &st, &q, v);
        let fw = inst.solve_with_fairness(beta, &fairness, FwOptions::default());

        // Reference: minimize over x = (h0, h1) with b = h0 + h1 folded in.
        struct Folded {
            v: f64,
            beta: f64,
            price: f64,
            q: [f64; 2],
            gammas: [f64; 2],
            total_capacity: f64,
        }
        impl Objective for Folded {
            fn value(&self, x: &[f64]) -> f64 {
                let shares = [x[0] / self.total_capacity, x[1] / self.total_capacity];
                let f =
                    -(shares[0] - self.gammas[0]).powi(2) - (shares[1] - self.gammas[1]).powi(2);
                self.v * (self.price * (x[0] + x[1]) - self.beta * f)
                    - self.q[0] * x[0]
                    - self.q[1] * x[1]
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                for m in 0..2 {
                    let share = x[m] / self.total_capacity;
                    g[m] = self.v * self.price
                        + self.v * self.beta * 2.0 * (share - self.gammas[m]) / self.total_capacity
                        - self.q[m];
                }
            }
        }
        let folded = Folded {
            v,
            beta,
            price,
            q: [q0, q1],
            gammas: [0.7, 0.3],
            total_capacity: 20.0,
        };
        let caps = [q0.min(30.0), q1.min(30.0)];
        let reference = projected_subgradient(
            &folded,
            |x: &mut [f64]| project_capped_box(x, &caps, &[1.0, 1.0], 20.0),
            vec![0.0, 0.0],
            SubgradientOptions {
                iterations: 30_000,
                step0: 1.0,
            },
        );
        assert!(
            fw.objective <= reference.value + 0.05 * (1.0 + reference.value.abs()),
            "seed {seed}: FW {} vs subgradient {}",
            fw.objective,
            reference.value
        );
    }
}

#[test]
fn beta_zero_fw_equals_greedy_on_random_instances() {
    for seed in 100..130u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = tiny_config(rng.gen_range(1.0..25.0));
        let st = SystemState::new(
            0,
            vec![DataCenterState::new(
                vec![rng.gen_range(1.0f64..20.0).floor()],
                Tariff::flat(rng.gen_range(0.0..1.5)),
            )],
        );
        let q = queues_with(
            &cfg,
            &[
                rng.gen_range(0.0f64..10.0).floor(),
                rng.gen_range(0.0f64..10.0).floor(),
            ],
        );
        let v = rng.gen_range(0.0..8.0);
        let inst = SlotInstance::new(&cfg, &st, &q, v);
        let greedy = inst.solve_greedy();
        let fw = inst.solve_with_fairness(0.0, &QuadraticDeviation, FwOptions::default());
        assert!(
            (greedy.objective - fw.objective).abs() <= 1e-5 * (1.0 + greedy.objective.abs()),
            "seed {seed}: greedy {} vs FW {}",
            greedy.objective,
            fw.objective
        );
    }
}

#[test]
fn increasing_beta_improves_fairness_of_the_slot_decision() {
    let cfg = tiny_config(30.0);
    let st = SystemState::new(0, vec![DataCenterState::new(vec![20.0], Tariff::flat(0.9))]);
    // Asymmetric queues: account y has much more backlog than its γ = 0.3.
    let q = queues_with(&cfg, &[2.0, 12.0]);
    let inst = SlotInstance::new(&cfg, &st, &q, 5.0);
    let fairness = QuadraticDeviation;
    let gammas = cfg.gammas();

    let mut prev_score = f64::NEG_INFINITY;
    for beta in [0.0, 50.0, 500.0] {
        let d = inst
            .solve_with_fairness(beta, &fairness, FwOptions::default())
            .decision;
        let shares = grefar_core::resource_shares(&cfg, &st, &d);
        let score = fairness.score(&shares, &gammas);
        assert!(
            score >= prev_score - 1e-6,
            "beta {beta}: fairness decreased ({score} < {prev_score})"
        );
        prev_score = score;
    }
}
