//! The performance guarantees of Theorem 1 (§V-B, Appendix).
//!
//! Computes the constants `B` (29)–(30), `D` (36), `q^max` and `C3`
//! (39)–(42) for a concrete system, yielding:
//!
//! * the **queue bound** (23): `Q_j(t), q_{i,j}(t) ≤ V·C3/δ` for all `t`,
//! * the **cost bound** (24): `g* ≤ (1/R)Σ_r G*_r + (B + D(T−1))/V`.
//!
//! The paper's inequality (30) defining `B` drops a square on its first
//! bracket (a typo — the derivation of (29) via the standard
//! `(max[q − b, 0] + a)² ≤ q² + a² + b² + 2q(a − b)` identity requires it);
//! we implement the standard constant.
//!
//! Also provides [`slackness_delta`], which finds the largest slack `δ` for
//! which the conditions (20)–(22) hold with a simple proportional-routing
//! witness, certifying a trace admissible for Theorem 1.

use grefar_types::SystemConfig;

/// The constants of Theorem 1 for one system.
///
/// # Example
/// ```
/// use grefar_core::theory::TheoryBounds;
/// use grefar_types::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let config = SystemConfig::builder()
/// #     .server_class(ServerClass::new(1.0, 1.0))
/// #     .data_center("dc", vec![100.0])
/// #     .account("org", 1.0)
/// #     .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
/// #         .with_max_arrivals(5.0).with_max_route(10.0).with_max_process(10.0))
/// #     .build()?;
/// let bounds = TheoryBounds::new(&config, 1.0, 0.8, 0.0);
/// // The queue bound grows linearly in V (Theorem 1a)...
/// assert!(bounds.queue_bound(20.0) > bounds.queue_bound(5.0));
/// // ...and the optimality gap shrinks as O(1/V) (Theorem 1b).
/// assert!(bounds.cost_gap_bound(20.0, 4) < bounds.cost_gap_bound(5.0, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryBounds {
    b_const: f64,
    d_const: f64,
    q_max: f64,
    g_spread: f64,
    delta: f64,
}

impl TheoryBounds {
    /// Computes the constants for a system, given:
    ///
    /// * `delta` — the slackness of conditions (20)–(22)
    ///   (see [`slackness_delta`]),
    /// * `price_max` — an upper bound on every electricity price,
    /// * `beta` — the energy-fairness parameter (enters `g^max − g^min`
    ///   through the quadratic fairness range).
    ///
    /// # Panics
    /// Panics if `delta <= 0`, `price_max < 0` or `beta < 0`.
    pub fn new(config: &SystemConfig, delta: f64, price_max: f64, beta: f64) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        assert!(
            price_max >= 0.0 && price_max.is_finite(),
            "price_max must be non-negative"
        );
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be non-negative");

        let mut b_const = 0.0;
        let mut d_const = 0.0;
        let mut q_max = 0.0f64;
        for job in config.job_classes() {
            let sum_rmax = job.eligible().len() as f64 * job.max_route();
            let q_diff_central = job.max_arrivals().max(sum_rmax);
            let q_diff_local = job.max_route().max(job.max_process());
            // B: ½[(Σr)² + a²] per central queue, ½[r² + h²] per local queue.
            b_const += 0.5 * (sum_rmax.powi(2) + job.max_arrivals().powi(2));
            b_const += 0.5
                * job.eligible().len() as f64
                * (job.max_route().powi(2) + job.max_process().powi(2));
            // D (36): ½ Σ Q_diff·max[a, Σr] + ½ Σ q_diff·max[r, h].
            d_const += 0.5 * q_diff_central.powi(2);
            d_const += 0.5 * job.eligible().len() as f64 * q_diff_local.powi(2);
            q_max = q_max.max(q_diff_central).max(q_diff_local);
        }

        // g^max − g^min: all servers busy at max price, plus the fairness
        // range −β·[f_min, 0] for the quadratic score.
        let e_max: f64 = config
            .data_centers()
            .iter()
            .map(|dc| {
                dc.fleet()
                    .iter()
                    .zip(config.server_classes())
                    .map(|(n, c)| n * c.active_power())
                    .sum::<f64>()
            })
            .sum::<f64>()
            * price_max;
        let f_range: f64 = config
            .gammas()
            .iter()
            .map(|&g| g.max(1.0 - g).powi(2))
            .sum();
        let g_spread = e_max + beta * f_range;

        Self {
            b_const,
            d_const,
            q_max,
            g_spread,
            delta,
        }
    }

    /// The drift constant `B` of (29).
    pub fn b_const(&self) -> f64 {
        self.b_const
    }

    /// The frame-coupling constant `D` of (36).
    pub fn d_const(&self) -> f64 {
        self.d_const
    }

    /// The largest one-slot queue change `q^max`.
    pub fn q_max(&self) -> f64 {
        self.q_max
    }

    /// The cost spread `g^max − g^min` used in (34).
    pub fn g_spread(&self) -> f64 {
        self.g_spread
    }

    /// Theorem 1(a): the uniform queue-length bound (23), evaluated through
    /// (38) (the pre-factored form, valid for every `V ≥ 0`):
    ///
    /// ```text
    /// Q_j(t), q_{i,j}(t) ≤ sqrt( (P/δ)² + 2D + 2 q^max P/δ ),  P = B + V·(g^max − g^min)
    /// ```
    ///
    /// which equals `V·C3/δ` with `C3` as in (39)–(42).
    ///
    /// # Panics
    /// Panics if `v` is negative or non-finite.
    pub fn queue_bound(&self, v: f64) -> f64 {
        assert!(v >= 0.0 && v.is_finite(), "V must be non-negative");
        let p = self.b_const + v * self.g_spread;
        ((p / self.delta).powi(2) + 2.0 * self.d_const + 2.0 * self.q_max * p / self.delta).sqrt()
    }

    /// The degraded queue bound under bounded state staleness — an
    /// engineering corollary of Theorem 1(a), **not** a bound from the
    /// paper (which assumes the scheduler observes `x(t)` exactly).
    ///
    /// When the scheduler acts on estimates at most `stale_slots` slots old
    /// (the feed layer's admissible staleness,
    /// `FeedProfile::staleness_bound`), every threshold crossing the exact
    /// algorithm would react to is seen at most `stale_slots` slots late,
    /// and during that blind window each queue moves by at most `q^max`
    /// per slot (the same one-slot bound used inside (38)). The uniform
    /// bound therefore relaxes additively:
    ///
    /// ```text
    /// Q_j(t), q_{i,j}(t) ≤ queue_bound(V) + S · q^max,   S = stale_slots
    /// ```
    ///
    /// With `S = 0` this is exactly [`queue_bound`](TheoryBounds::queue_bound).
    ///
    /// # Panics
    /// Panics if `v` is negative or non-finite.
    pub fn stale_queue_bound(&self, v: f64, stale_slots: u64) -> f64 {
        self.queue_bound(v) + stale_slots as f64 * self.q_max
    }

    /// Theorem 1(b): the optimality-gap bound `(B + D(T−1)) / V` of (24)
    /// against the `T`-step lookahead policy.
    ///
    /// # Panics
    /// Panics if `v <= 0` (the bound is vacuous at `V = 0`) or `t == 0`.
    pub fn cost_gap_bound(&self, v: f64, t: usize) -> f64 {
        assert!(v > 0.0 && v.is_finite(), "V must be positive");
        assert!(t >= 1, "frame length must be positive");
        (self.b_const + self.d_const * (t as f64 - 1.0)) / v
    }
}

/// Finds (by bisection) the largest `δ ∈ (0, δ_hi]` for which the slackness
/// conditions (20)–(22) hold with the capacity-proportional witness
///
/// ```text
/// r'_{i,j} = (a_j^max + δ) · c_i / Σ_{i'∈𝒟_j} c_{i'},   h'_{i,j} = r'_{i,j} + δ,
/// ```
///
/// where `c_i = min_capacity[i]` is a lower bound on every slot's capacity
/// `Σ_k n_{i,k}(t) s_k`. (Any witness suffices for Theorem 1; splitting
/// load proportionally to capacity certifies systems with heterogeneous
/// data-center sizes that an equal split would reject.)
///
/// Returns `None` if even an arbitrarily small `δ` fails (the system is not
/// provably stable under Theorem 1's assumptions).
///
/// # Panics
/// Panics if `min_capacity.len()` differs from the data-center count.
pub fn slackness_delta(config: &SystemConfig, min_capacity: &[f64]) -> Option<f64> {
    assert_eq!(
        min_capacity.len(),
        config.num_data_centers(),
        "capacity vector mismatch"
    );
    // Capacity share of DC i within the eligible set of a job.
    let share = |i: usize, job: &grefar_types::JobClass| -> f64 {
        let total: f64 = job
            .eligible()
            .iter()
            .map(|dc| min_capacity[dc.index()])
            .sum();
        if total <= 0.0 {
            1.0 / job.eligible().len() as f64
        } else {
            min_capacity[i] / total
        }
    };
    let feasible = |delta: f64| -> bool {
        // Per-job bounds on the witness (checked at the largest share).
        for job in config.job_classes() {
            for dc in job.eligible() {
                let r = (job.max_arrivals() + delta) * share(dc.index(), job);
                if r > job.max_route() {
                    return false;
                }
                if r + delta > job.max_process() {
                    return false;
                }
            }
        }
        // Capacity: Σ_{j: i∈𝒟_j} h'_{i,j} d_j ≤ min_cap_i − δ.
        for (i, &cap) in min_capacity.iter().enumerate() {
            let mut load = 0.0;
            for job in config.job_classes() {
                if job.is_eligible(grefar_types::DataCenterId::new(i)) {
                    let r = (job.max_arrivals() + delta) * share(i, job);
                    load += (r + delta) * job.work();
                }
            }
            if load > cap - delta {
                return false;
            }
        }
        true
    };

    let tiny = 1e-9;
    if !feasible(tiny) {
        return None;
    }
    let mut lo = tiny;
    let mut hi = min_capacity.iter().cloned().fold(1.0f64, f64::max) + 1.0;
    // Expand hi is unnecessary: capacity condition fails once delta ≥ cap.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Trace-based slackness certificate: the conditions (20)–(22) quantify
/// over each slot `t` separately, so the witness may adapt to the realized
/// arrivals. Each slot first tries the cheap capacity-proportional split
/// `r'_{i,j}(t) = (a_j(t) + δ)·c_i(t)/Σ_{i'∈𝒟_j} c_{i'}(t)`, `h' = r' + δ`;
/// slots where that heuristic is too coarse (e.g. several locality-
/// restricted bursts landing together) fall back to an *exact* feasibility
/// LP over `r'(t)`. This certifies bursty traces that the worst-case bound
/// of [`slackness_delta`] (built from `a^max` alone) would reject.
///
/// `capacities[t][i]` is `Σ_k n_{i,k}(t)·s_k` and `arrivals[t][j]` is
/// `a_j(t)`. Returns the largest certified `δ`, or `None`.
///
/// # Panics
/// Panics on shape mismatches or an empty trace.
pub fn slackness_delta_trace(
    config: &SystemConfig,
    capacities: &[Vec<f64>],
    arrivals: &[Vec<f64>],
) -> Option<f64> {
    assert_eq!(
        capacities.len(),
        arrivals.len(),
        "capacity/arrival trace length mismatch"
    );
    assert!(!capacities.is_empty(), "trace must be non-empty");
    let n = config.num_data_centers();
    for (caps, arr) in capacities.iter().zip(arrivals) {
        assert_eq!(caps.len(), n, "capacity row length mismatch");
        assert_eq!(
            arr.len(),
            config.num_job_classes(),
            "arrival row length mismatch"
        );
    }

    // Exact per-slot witness: does any r' satisfy (20)-(22) at this delta?
    let lp_witness = |caps: &[f64], arr: &[f64], delta: f64| -> bool {
        use grefar_lp::{LpProblem, Relation};
        let j_count = config.num_job_classes();
        let var = |i: usize, j: usize| i * j_count + j;
        let mut p = LpProblem::minimize(n * j_count);
        for (j, job) in config.job_classes().iter().enumerate() {
            let ub = job.max_route().min(job.max_process() - delta);
            if ub < 0.0 {
                return false;
            }
            let mut coeffs = Vec::new();
            for i in 0..n {
                if job.is_eligible(grefar_types::DataCenterId::new(i)) {
                    p.set_upper_bound(var(i, j), ub);
                    coeffs.push((var(i, j), 1.0));
                } else {
                    p.set_upper_bound(var(i, j), 0.0);
                }
            }
            p.add_constraint(&coeffs, Relation::Ge, arr[j] + delta);
        }
        for (i, &cap) in caps.iter().enumerate() {
            let mut coeffs = Vec::new();
            let mut fixed = 0.0;
            for (j, job) in config.job_classes().iter().enumerate() {
                if job.is_eligible(grefar_types::DataCenterId::new(i)) {
                    coeffs.push((var(i, j), job.work()));
                    fixed += delta * job.work(); // h' = r' + δ
                }
            }
            p.add_constraint(&coeffs, Relation::Le, cap - delta - fixed);
        }
        p.solve().is_ok()
    };

    let feasible = |delta: f64| -> bool {
        for (caps, arr) in capacities.iter().zip(arrivals) {
            let mut load = vec![0.0; n];
            let mut proportional_ok = true;
            'jobs: for (j, job) in config.job_classes().iter().enumerate() {
                let total: f64 = job.eligible().iter().map(|dc| caps[dc.index()]).sum();
                for dc in job.eligible() {
                    let i = dc.index();
                    let share = if total > 0.0 {
                        caps[i] / total
                    } else {
                        1.0 / job.eligible().len() as f64
                    };
                    let r = (arr[j] + delta) * share;
                    if r > job.max_route() || r + delta > job.max_process() {
                        proportional_ok = false;
                        break 'jobs;
                    }
                    load[i] += (r + delta) * job.work();
                }
            }
            if proportional_ok {
                proportional_ok = (0..n).all(|i| load[i] <= caps[i] - delta);
            }
            if !proportional_ok && !lp_witness(caps, arr, delta) {
                return false;
            }
        }
        true
    };

    let tiny = 1e-9;
    if !feasible(tiny) {
        return None;
    }
    let mut lo = tiny;
    let mut hi = capacities
        .iter()
        .flat_map(|c| c.iter().copied())
        .fold(1.0f64, f64::max)
        + 1.0;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![100.0])
            .data_center("b", vec![100.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                    .with_max_arrivals(6.0)
                    .with_max_route(8.0)
                    .with_max_process(16.0),
            )
            .job_class(
                JobClass::new(2.0, vec![DataCenterId::new(1)], 1)
                    .with_max_arrivals(3.0)
                    .with_max_route(5.0)
                    .with_max_process(10.0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn constants_are_positive_and_finite() {
        let b = TheoryBounds::new(&config(), 1.0, 1.0, 50.0);
        assert!(b.b_const() > 0.0 && b.b_const().is_finite());
        assert!(b.d_const() > 0.0 && b.d_const().is_finite());
        assert!(b.q_max() >= 6.0);
        assert!(b.g_spread() > 0.0);
    }

    #[test]
    fn queue_bound_is_monotone_in_v() {
        let b = TheoryBounds::new(&config(), 2.0, 0.8, 0.0);
        let mut prev = 0.0;
        for v in [0.0, 0.1, 1.0, 10.0, 100.0] {
            let q = b.queue_bound(v);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn queue_bound_scales_linearly_for_large_v() {
        let b = TheoryBounds::new(&config(), 2.0, 0.8, 0.0);
        let q1 = b.queue_bound(1_000.0);
        let q2 = b.queue_bound(2_000.0);
        assert!((q2 / q1 - 2.0).abs() < 0.05, "ratio {}", q2 / q1);
    }

    #[test]
    fn cost_gap_shrinks_as_one_over_v() {
        let b = TheoryBounds::new(&config(), 1.0, 0.8, 0.0);
        let g1 = b.cost_gap_bound(10.0, 4);
        let g2 = b.cost_gap_bound(20.0, 4);
        assert!((g1 / g2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cost_gap_grows_with_frame_length() {
        let b = TheoryBounds::new(&config(), 1.0, 0.8, 0.0);
        assert!(b.cost_gap_bound(10.0, 8) > b.cost_gap_bound(10.0, 2));
        // T = 1 leaves only B/V.
        assert!((b.cost_gap_bound(10.0, 1) - b.b_const() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn slackness_found_for_overprovisioned_system() {
        let cfg = config();
        let delta = slackness_delta(&cfg, &[80.0, 80.0]).expect("system is overprovisioned");
        assert!(delta > 1.0, "delta {delta}");
        // The witness must satisfy all three conditions at the found delta.
        let b = TheoryBounds::new(&cfg, delta, 1.0, 0.0);
        assert!(b.queue_bound(5.0).is_finite());
    }

    #[test]
    fn slackness_none_when_capacity_too_small() {
        let cfg = config();
        assert_eq!(slackness_delta(&cfg, &[0.5, 0.5]), None);
    }

    #[test]
    fn slackness_respects_route_bounds() {
        // a^max = 6 with |D| = 1 and r^max = 3: even δ → 0 fails (6 > 3).
        let cfg = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![100.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(6.0)
                    .with_max_route(3.0)
                    .with_max_process(10.0),
            )
            .build()
            .unwrap();
        assert_eq!(slackness_delta(&cfg, &[100.0]), None);
    }

    #[test]
    fn beta_widens_g_spread() {
        let cfg = config();
        let b0 = TheoryBounds::new(&cfg, 1.0, 0.8, 0.0);
        let b100 = TheoryBounds::new(&cfg, 1.0, 0.8, 100.0);
        assert!(b100.g_spread() > b0.g_spread());
        assert!(b100.queue_bound(5.0) > b0.queue_bound(5.0));
    }
}
