//! The energy–fairness cost `g(t)` (eqs. (2), (3), (6)) and the
//! drift-plus-penalty objective (14).

use crate::fairness::FairnessFunction;
use crate::queue::QueueState;
use grefar_cluster::energy_cost;
use grefar_types::{Decision, SystemConfig, SystemState};

/// The per-slot cost components of one decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Total energy cost `e(t) = Σ_i e_i(t)` (eq. (2)).
    pub energy: f64,
    /// Fairness score `f(t)` (eq. (3) or an alternative). Higher is fairer.
    pub fairness: f64,
    /// The combined cost `g(t) = e(t) − β·f(t)` (eq. (6)).
    pub combined: f64,
    /// The shares `r_m(t)/R(t)` used by the fairness score (length `M`).
    pub shares: Vec<f64>,
}

/// Computes the per-account resource shares `r_m(t) / R(t)`, where
/// `r_m(t) = Σ_{j: ρ_j = m} Σ_i h_{i,j}(t) · d_j` is the computing resource
/// allocated to account `m` and `R(t) = Σ_i Σ_k n_{i,k}(t) s_k` is the total
/// available resource (§III-C.1).
///
/// Returns all-zero shares if `R(t) = 0` (a fully-down system).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn resource_shares(
    config: &SystemConfig,
    state: &SystemState,
    decision: &Decision,
) -> Vec<f64> {
    let total = state.total_capacity(config.server_classes());
    let mut shares = vec![0.0; config.num_accounts()];
    if total <= 0.0 {
        return shares;
    }
    for (j, job) in config.job_classes().iter().enumerate() {
        let served: f64 = decision.processed.col_sum(j) * job.work();
        shares[job.account().index()] += served / total;
    }
    shares
}

/// Computes the full cost breakdown of a decision in a state:
/// energy (2), fairness (3), and `g(t) = e − β·f` (6).
///
/// # Panics
/// Panics on dimension mismatches or if the decision exceeds availability.
pub fn cost_breakdown(
    config: &SystemConfig,
    state: &SystemState,
    decision: &Decision,
    beta: f64,
    fairness: &dyn FairnessFunction,
) -> CostBreakdown {
    let energy = energy_cost_total(config, state, decision);
    let shares = resource_shares(config, state, decision);
    let score = fairness.score(&shares, &config.gammas());
    CostBreakdown {
        energy,
        fairness: score,
        combined: energy - beta * score,
        shares,
    }
}

/// Total energy cost `e(t) = Σ_i e_i(t)` of the decision (eq. (2)).
///
/// # Panics
/// Panics on dimension mismatches or if busy counts exceed availability.
pub fn energy_cost_total(config: &SystemConfig, state: &SystemState, decision: &Decision) -> f64 {
    (0..config.num_data_centers())
        .map(|i| {
            energy_cost(
                state.data_center(i),
                decision.busy.row(i),
                config.server_classes(),
            )
        })
        .sum()
}

/// Evaluates the drift-plus-penalty expression (14) that GreFar minimizes
/// each slot:
///
/// ```text
/// V·g(t) − Σ_j Q_j(t)·Σ_{i∈𝒟_j} r_{i,j}(t) + Σ_j Σ_{i∈𝒟_j} q_{i,j}(t)·[r_{i,j}(t) − h_{i,j}(t)]
/// ```
///
/// Used by the verification tests to compare solver outputs.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn drift_penalty_objective(
    config: &SystemConfig,
    state: &SystemState,
    queues: &QueueState,
    decision: &Decision,
    v: f64,
    beta: f64,
    fairness: &dyn FairnessFunction,
) -> f64 {
    let g = cost_breakdown(config, state, decision, beta, fairness).combined;
    let mut value = v * g;
    for (i, j) in config.eligible_pairs() {
        let (i, j) = (i.index(), j.index());
        let r = decision.routed[(i, j)];
        let h = decision.processed[(i, j)];
        value -= queues.central(j) * r;
        value += queues.local(i, j) * (r - h);
    }
    value
}

/// Per-data-center provenance of one decision: how much of the slot's
/// drift and energy each DC contributed, plus the capacity-constraint
/// operating point. Backs the `decision.explain` telemetry family.
#[derive(Debug, Clone, PartialEq)]
pub struct DcExplain {
    /// Data center index `i`.
    pub dc: usize,
    /// This DC's share of the drift term of (14):
    /// `Σ_{j: i∈𝒟_j} [−Q_j·r_{i,j} + q_{i,j}·(r_{i,j} − h_{i,j})]`.
    pub drift: f64,
    /// This DC's energy cost `e_i(t)` (eq. (2) summand).
    pub energy: f64,
    /// Jobs routed to this DC this slot, `Σ_j r_{i,j}`.
    pub routed: f64,
    /// Jobs processed at this DC this slot, `Σ_j h_{i,j}`.
    pub processed: f64,
    /// Local queue backlog `Σ_j q_{i,j}(t)` observed before the decision.
    pub backlog: f64,
    /// Work scheduled this slot, `Σ_j h_{i,j}·d_j` (LHS of constraint (11)).
    pub busy: f64,
    /// Work capacity `Σ_k n_{i,k}·s_k` (RHS of constraint (11)); `busy`
    /// close to `capacity` marks the constraint as binding.
    pub capacity: f64,
}

/// Decomposes a decision's drift and energy by data center.
///
/// Reconciliation invariants (checked by unit tests and by
/// `grefar-report explain`):
/// * `Σ_i drift_i == drift_penalty_objective(..) − V·g` — the per-DC
///   drifts sum to the full drift term of (14);
/// * `Σ_i energy_i == energy_cost_total(..)` — the per-DC energies sum to
///   the total energy cost (2).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn explain_decision(
    config: &SystemConfig,
    state: &SystemState,
    queues: &QueueState,
    decision: &Decision,
) -> Vec<DcExplain> {
    let jobs = config.job_classes();
    let mut out: Vec<DcExplain> = (0..config.num_data_centers())
        .map(|i| DcExplain {
            dc: i,
            drift: 0.0,
            energy: energy_cost(
                state.data_center(i),
                decision.busy.row(i),
                config.server_classes(),
            ),
            routed: 0.0,
            processed: 0.0,
            backlog: 0.0,
            busy: 0.0,
            capacity: state.data_center(i).capacity(config.server_classes()),
        })
        .collect();
    for (i, j) in config.eligible_pairs() {
        let (i, j) = (i.index(), j.index());
        let r = decision.routed[(i, j)];
        let h = decision.processed[(i, j)];
        let entry = &mut out[i];
        entry.drift += -queues.central(j) * r + queues.local(i, j) * (r - h);
        entry.routed += r;
        entry.processed += h;
        entry.backlog += queues.local(i, j);
        entry.busy += h * jobs[j].work();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::QuadraticDeviation;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .server_class(ServerClass::new(0.5, 0.2))
            .data_center("a", vec![10.0, 10.0])
            .data_center("b", vec![10.0, 0.0])
            .account("x", 0.6)
            .account("y", 0.4)
            .job_class(JobClass::new(
                2.0,
                vec![DataCenterId::new(0), DataCenterId::new(1)],
                0,
            ))
            .job_class(JobClass::new(1.0, vec![DataCenterId::new(1)], 1))
            .build()
            .unwrap()
    }

    fn state() -> SystemState {
        SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![10.0, 10.0], Tariff::flat(0.5)),
                DataCenterState::new(vec![10.0, 0.0], Tariff::flat(0.25)),
            ],
        )
    }

    #[test]
    fn energy_cost_sums_data_centers() {
        let cfg = config();
        let st = state();
        let mut z = cfg.decision_zeros();
        z.busy[(0, 0)] = 4.0; // 4 servers × power 1 × price 0.5 = 2.0
        z.busy[(0, 1)] = 5.0; // 5 × 0.2 × 0.5 = 0.5
        z.busy[(1, 0)] = 2.0; // 2 × 1 × 0.25 = 0.5
        assert!((energy_cost_total(&cfg, &st, &z) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shares_weight_by_work_and_capacity() {
        let cfg = config();
        let st = state();
        // R = (10·1 + 10·0.5) + (10·1) = 25.
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 2.0; // account x: 2 jobs × d=2 = 4 work
        z.processed[(1, 1)] = 5.0; // account y: 5 × 1 = 5 work
        let shares = resource_shares(&cfg, &st, &z);
        assert!((shares[0] - 4.0 / 25.0).abs() < 1e-12);
        assert!((shares[1] - 5.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn combined_cost_matches_eq6() {
        let cfg = config();
        let st = state();
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 1.0;
        z.busy[(0, 0)] = 2.0;
        let f = QuadraticDeviation;
        let b = cost_breakdown(&cfg, &st, &z, 10.0, &f);
        assert!((b.combined - (b.energy - 10.0 * b.fairness)).abs() < 1e-12);
        assert!(b.fairness < 0.0); // shares far from (0.6, 0.4)
        assert_eq!(b.shares.len(), 2);
    }

    #[test]
    fn zero_capacity_yields_zero_shares() {
        let cfg = config();
        let st = SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![0.0, 0.0], Tariff::flat(0.5)),
                DataCenterState::new(vec![0.0, 0.0], Tariff::flat(0.25)),
            ],
        );
        let z = cfg.decision_zeros();
        assert_eq!(resource_shares(&cfg, &st, &z), vec![0.0, 0.0]);
    }

    #[test]
    fn drift_penalty_matches_manual_computation() {
        let cfg = config();
        let st = state();
        let mut queues = QueueState::new(&cfg);
        queues.apply(&cfg.decision_zeros(), &[4.0, 6.0]); // Q = (4, 6)
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 2.0;
        route.routed[(1, 1)] = 3.0;
        queues.apply(&route, &[0.0, 0.0]); // Q = (2, 3); q(0,0)=2, q(1,1)=3

        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 1.0;
        z.processed[(1, 1)] = 2.0;
        z.busy[(1, 0)] = 2.0;
        let f = QuadraticDeviation;
        let v = 3.0;
        let beta = 0.0;
        let val = drift_penalty_objective(&cfg, &st, &queues, &z, v, beta, &f);
        // g = energy = 2 servers × 1 power × 0.25 price = 0.5; V·g = 1.5.
        // −Q₀·r = −2·1; +q(0,0)·r = +2·1; −q(1,1)·h = −3·2.
        let expected = 1.5 - 2.0 + 2.0 - 6.0;
        assert!((val - expected).abs() < 1e-12, "{val} vs {expected}");
    }

    #[test]
    fn explain_reconciles_with_objective_and_energy() {
        let cfg = config();
        let st = state();
        let mut queues = QueueState::new(&cfg);
        queues.apply(&cfg.decision_zeros(), &[4.0, 6.0]);
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 2.0;
        route.routed[(1, 1)] = 3.0;
        queues.apply(&route, &[0.0, 0.0]);

        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 1.0;
        z.routed[(1, 0)] = 1.0;
        z.processed[(1, 1)] = 2.0;
        z.busy[(0, 0)] = 1.0;
        z.busy[(1, 0)] = 2.0;
        let f = QuadraticDeviation;
        let (v, beta) = (3.0, 0.5);

        let explains = explain_decision(&cfg, &st, &queues, &z);
        assert_eq!(explains.len(), 2);
        let g = cost_breakdown(&cfg, &st, &z, beta, &f).combined;
        let objective = drift_penalty_objective(&cfg, &st, &queues, &z, v, beta, &f);
        let drift_sum: f64 = explains.iter().map(|e| e.drift).sum();
        assert!((drift_sum - (objective - v * g)).abs() < 1e-12);
        let energy_sum: f64 = explains.iter().map(|e| e.energy).sum();
        assert!((energy_sum - energy_cost_total(&cfg, &st, &z)).abs() < 1e-12);
    }

    #[test]
    fn explain_reports_operating_point_per_dc() {
        let cfg = config();
        let st = state();
        let queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 2.0;
        z.processed[(0, 0)] = 1.0; // 1 job × work 2 = 2 work units
        let explains = explain_decision(&cfg, &st, &queues, &z);
        assert_eq!(explains[0].dc, 0);
        assert!((explains[0].routed - 2.0).abs() < 1e-12);
        assert!((explains[0].processed - 1.0).abs() < 1e-12);
        assert!((explains[0].busy - 2.0).abs() < 1e-12);
        // DC 0 capacity: 10 servers × speed 1 + 10 servers × speed 0.5.
        assert!((explains[0].capacity - 15.0).abs() < 1e-12);
        assert_eq!(explains[1].routed, 0.0);
    }
}
