//! The offline `T`-step lookahead policy (§V-A).
//!
//! The benchmark of Theorem 1: the horizon is divided into frames of `T`
//! slots; within each frame the policy knows all states and arrivals in
//! advance and solves (15)–(18). For `β = 0` each frame is a linear program
//! over `(r, h, b)` trajectories, solved here with the workspace simplex.
//!
//! The routing variables are relaxed to be continuous (the paper's `r` are
//! integers), so each frame value is a *lower bound* `G*_r` on the true
//! frame optimum — which only makes the comparison against GreFar in the
//! `lookahead_gap` experiment conservative.

use crate::error::ParamError;
use grefar_lp::{LpProblem, Relation, SolveError};
use grefar_types::{SystemConfig, SystemState};

/// The offline `T`-step lookahead planner (β = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TStepLookahead {
    frame: usize,
}

/// The result of planning a horizon with the lookahead policy.
#[derive(Debug, Clone, PartialEq)]
pub struct LookaheadPlan {
    /// `G*_r` for each frame: the minimum time-average frame cost (15).
    pub frame_costs: Vec<f64>,
    /// `(1/R) Σ_r G*_r` — the benchmark value (19) of Theorem 1(b).
    pub average_cost: f64,
    /// Work processed per (frame-relative slot, data center) in the last
    /// planned frame — exposed for inspection and tests.
    pub last_frame_work: Vec<Vec<f64>>,
}

impl TStepLookahead {
    /// Creates the planner with frame length `T ≥ 1`.
    ///
    /// # Errors
    /// [`ParamError::InvalidFrame`] if `frame == 0`.
    pub fn new(frame: usize) -> Result<Self, ParamError> {
        if frame == 0 {
            return Err(ParamError::InvalidFrame(frame));
        }
        Ok(Self { frame })
    }

    /// The frame length `T`.
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// Plans a whole horizon: `states[t]` and `arrivals[t]` for
    /// `t = 0 .. R·T − 1`. Returns the frame costs `G*_r` and their average.
    ///
    /// # Errors
    /// [`SolveError`] if any frame LP fails (an infeasible frame means the
    /// slackness conditions (20)–(22) are violated for this trace).
    ///
    /// # Panics
    /// Panics if `states` and `arrivals` differ in length, are empty, or are
    /// not a whole number of frames.
    pub fn plan(
        &self,
        config: &SystemConfig,
        states: &[SystemState],
        arrivals: &[Vec<f64>],
    ) -> Result<LookaheadPlan, SolveError> {
        assert_eq!(
            states.len(),
            arrivals.len(),
            "states/arrivals length mismatch"
        );
        assert!(!states.is_empty(), "horizon must be non-empty");
        assert_eq!(
            states.len() % self.frame,
            0,
            "horizon must be a whole number of frames (t_end = R·T)"
        );
        let frames = states.len() / self.frame;
        let mut frame_costs = Vec::with_capacity(frames);
        let mut last_frame_work = Vec::new();
        for r in 0..frames {
            let lo = r * self.frame;
            let hi = lo + self.frame;
            let (cost, work) = solve_frame(config, &states[lo..hi], &arrivals[lo..hi])?;
            frame_costs.push(cost);
            last_frame_work = work;
        }
        let average_cost = frame_costs.iter().sum::<f64>() / frames as f64;
        Ok(LookaheadPlan {
            frame_costs,
            average_cost,
            last_frame_work,
        })
    }
}

/// Variable layout inside one frame LP.
struct FrameLayout {
    n: usize,
    j: usize,
    k: usize,
    t: usize,
}

impl FrameLayout {
    fn per_slot(&self) -> usize {
        2 * self.n * self.j + self.n * self.k
    }

    fn r(&self, t: usize, i: usize, j: usize) -> usize {
        t * self.per_slot() + i * self.j + j
    }

    fn h(&self, t: usize, i: usize, j: usize) -> usize {
        t * self.per_slot() + self.n * self.j + i * self.j + j
    }

    fn b(&self, t: usize, i: usize, k: usize) -> usize {
        t * self.per_slot() + 2 * self.n * self.j + i * self.k + k
    }

    fn total(&self) -> usize {
        self.t * self.per_slot()
    }
}

/// Solves one frame of (15)–(18) as an LP; returns
/// `(G*_r, work per (slot, dc))`.
fn solve_frame(
    config: &SystemConfig,
    states: &[SystemState],
    arrivals: &[Vec<f64>],
) -> Result<(f64, Vec<Vec<f64>>), SolveError> {
    let l = FrameLayout {
        n: config.num_data_centers(),
        j: config.num_job_classes(),
        k: config.num_server_classes(),
        t: states.len(),
    };
    let mut p = LpProblem::minimize(l.total());

    // Objective (15): Σ_t Σ_i φ_i(t) Σ_k p_k b_{i,k}(t)   (β = 0; flat tariffs).
    for (t, state) in states.iter().enumerate() {
        for i in 0..l.n {
            let price = state.data_center(i).price();
            for (k, class) in config.server_classes().iter().enumerate() {
                p.set_objective(l.b(t, i, k), price * class.active_power());
            }
        }
    }

    // Eligibility and bounds: ineligible pairs pinned to zero via ub 0.
    for (t, state) in states.iter().enumerate() {
        for (j, job) in config.job_classes().iter().enumerate() {
            for i in 0..l.n {
                let eligible = job.is_eligible(grefar_types::DataCenterId::new(i));
                let r_ub = if eligible { job.max_route() } else { 0.0 };
                let h_ub = if eligible { job.max_process() } else { 0.0 };
                p.set_upper_bound(l.r(t, i, j), r_ub);
                p.set_upper_bound(l.h(t, i, j), h_ub);
            }
        }
        for i in 0..l.n {
            for k in 0..l.k {
                p.set_upper_bound(l.b(t, i, k), state.data_center(i).available(k));
            }
        }
    }

    // (16): Σ_t Σ_{i∈𝒟_j} r_{i,j}(t) ≥ Σ_t a_j(t).
    for (j, job) in config.job_classes().iter().enumerate() {
        let mut coeffs = Vec::new();
        for t in 0..l.t {
            for &dc in job.eligible() {
                coeffs.push((l.r(t, dc.index(), j), 1.0));
            }
        }
        let demand: f64 = arrivals.iter().map(|a| a[j]).sum();
        p.add_constraint(&coeffs, Relation::Ge, demand);
    }

    // (17): Σ_t [r_{i,j}(t) − h_{i,j}(t)] ≤ 0 for every eligible pair.
    for (j, job) in config.job_classes().iter().enumerate() {
        for &dc in job.eligible() {
            let i = dc.index();
            let mut coeffs = Vec::new();
            for t in 0..l.t {
                coeffs.push((l.r(t, i, j), 1.0));
                coeffs.push((l.h(t, i, j), -1.0));
            }
            p.add_constraint(&coeffs, Relation::Le, 0.0);
        }
    }

    // (18): Σ_j d_j h_{i,j}(t) − Σ_k s_k b_{i,k}(t) ≤ 0 per slot and DC.
    for t in 0..l.t {
        for i in 0..l.n {
            let mut coeffs = Vec::new();
            for (j, job) in config.job_classes().iter().enumerate() {
                coeffs.push((l.h(t, i, j), job.work()));
            }
            for (k, class) in config.server_classes().iter().enumerate() {
                coeffs.push((l.b(t, i, k), -class.speed()));
            }
            p.add_constraint(&coeffs, Relation::Le, 0.0);
        }
    }

    let solution = p.solve()?;
    let x = solution.x();
    let mut work = vec![vec![0.0; l.n]; l.t];
    for (t, row) in work.iter_mut().enumerate() {
        for (i, cell) in row.iter_mut().enumerate() {
            *cell = (0..l.j)
                .map(|j| x[l.h(t, i, j)] * config.job_class(grefar_types::JobTypeId::new(j)).work())
                .sum();
        }
    }
    Ok((solution.objective() / l.t as f64, work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(4.0)
                    .with_max_route(10.0)
                    .with_max_process(10.0),
            )
            .build()
            .unwrap()
    }

    fn state(price: f64, slot: u64) -> SystemState {
        SystemState::new(
            slot,
            vec![DataCenterState::new(vec![10.0], Tariff::flat(price))],
        )
    }

    #[test]
    fn rejects_zero_frame() {
        assert!(TStepLookahead::new(0).is_err());
        assert_eq!(TStepLookahead::new(4).unwrap().frame(), 4);
    }

    #[test]
    fn schedules_all_work_in_cheapest_slot() {
        // Two-slot frame: prices 1.0 then 0.1; 3 jobs arrive in slot 0.
        // Offline optimum: serve everything in slot 1 at 0.1.
        let cfg = config();
        let la = TStepLookahead::new(2).unwrap();
        let states = vec![state(1.0, 0), state(0.1, 1)];
        let arrivals = vec![vec![3.0], vec![0.0]];
        let plan = la.plan(&cfg, &states, &arrivals).unwrap();
        // Cost: 3 units of work × power 1 × price 0.1, averaged over T=2.
        assert!(
            (plan.average_cost - 0.15).abs() < 1e-9,
            "{}",
            plan.average_cost
        );
        assert!((plan.last_frame_work[1][0] - 3.0).abs() < 1e-7);
        assert!(plan.last_frame_work[0][0] < 1e-7);
    }

    #[test]
    fn multiple_frames_average() {
        let cfg = config();
        let la = TStepLookahead::new(1).unwrap();
        let states = vec![state(0.2, 0), state(0.4, 1)];
        let arrivals = vec![vec![2.0], vec![2.0]];
        let plan = la.plan(&cfg, &states, &arrivals).unwrap();
        assert_eq!(plan.frame_costs.len(), 2);
        // Frame 0: 2 work at 0.2 = 0.4; frame 1: 2 at 0.4 = 0.8; avg 0.6.
        assert!((plan.average_cost - 0.6).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_capacity_insufficient() {
        let cfg = config();
        let la = TStepLookahead::new(1).unwrap();
        // 4 + 10? No: arrivals exceed what r^max/capacity can absorb: 40 jobs
        // in one slot with capacity 10 and r ≤ 10.
        let states = vec![state(0.2, 0)];
        let arrivals = vec![vec![40.0]];
        assert!(la.plan(&cfg, &states, &arrivals).is_err());
    }

    #[test]
    #[should_panic(expected = "whole number of frames")]
    fn rejects_partial_frames() {
        let cfg = config();
        let la = TStepLookahead::new(2).unwrap();
        let states = vec![state(0.2, 0)];
        let arrivals = vec![vec![0.0]];
        let _ = la.plan(&cfg, &states, &arrivals);
    }
}
