//! Additional baseline schedulers beyond the paper's "Always".
//!
//! These correspond to the strawmen of the related-work discussion (§II):
//!
//! * [`LocalOnly`] — no geographic scheduling at all: every job type runs
//!   in its first eligible ("home") data center. Quantifies the value of
//!   geo-distribution itself.
//! * [`PriceGreedy`] — myopic per-slot local optimization in the spirit of
//!   [5], [6]: route everything to the currently cheapest eligible site and
//!   serve immediately, "without considering the electricity variations
//!   across time periods". Captures spatial but not temporal arbitrage, and
//!   offers no queueing guarantees.
//!
//! Both serve as aggressively as capacity allows (the `V = 0` processing
//! rule), so like "Always" their delay is ≈ 1 slot.

use crate::queue::QueueState;
use crate::scheduler::Scheduler;
use crate::solver::SlotInstance;
use grefar_cluster::PowerCurve;
use grefar_types::{Decision, SystemConfig, SystemState};

/// Serve-immediately scheduler with *home-data-center* routing: job type
/// `j` always runs in `𝒟_j`'s first entry. The no-geo-scheduling baseline.
pub struct LocalOnly {
    config: SystemConfig,
}

impl core::fmt::Debug for LocalOnly {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LocalOnly").finish_non_exhaustive()
    }
}

impl LocalOnly {
    /// Creates the baseline for a system.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }
}

impl Scheduler for LocalOnly {
    fn name(&self) -> String {
        "LocalOnly".to_string()
    }

    fn decide(&mut self, state: &SystemState, queues: &QueueState) -> Decision {
        // Processing: serve everything capacity allows (V = 0), but route
        // each type only to its home data center.
        let inst = SlotInstance::new(&self.config, state, queues, 0.0);
        let mut decision = inst.solve_greedy().decision;
        decision.routed.clear();
        for (j, job) in self.config.job_classes().iter().enumerate() {
            let home = job.eligible()[0].index();
            let give = job.max_route().min(queues.central(j)).floor();
            if give > 0.0 {
                decision.routed[(home, j)] = give;
            }
        }
        decision
    }
}

/// Serve-immediately scheduler that routes every queued job to the
/// eligible data center with the lowest *current* marginal energy price per
/// unit work — spatially greedy, temporally blind.
pub struct PriceGreedy {
    config: SystemConfig,
}

impl core::fmt::Debug for PriceGreedy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PriceGreedy").finish_non_exhaustive()
    }
}

impl PriceGreedy {
    /// Creates the baseline for a system.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// The marginal cost of the first unit of work in data center `i` right
    /// now: `φ_i(t) · min_k p_k/s_k` over available classes (∞ if the data
    /// center is fully unavailable).
    fn marginal_cost(&self, state: &SystemState, i: usize) -> f64 {
        let dc = state.data_center(i);
        let curve = PowerCurve::build(dc.available_slice(), self.config.server_classes());
        match curve.marginal_power_per_work(0.0) {
            Some(ppw) => dc.tariff().marginal_rate(0.0) * ppw,
            None => f64::INFINITY,
        }
    }
}

impl Scheduler for PriceGreedy {
    fn name(&self) -> String {
        "PriceGreedy".to_string()
    }

    fn decide(&mut self, state: &SystemState, queues: &QueueState) -> Decision {
        let inst = SlotInstance::new(&self.config, state, queues, 0.0);
        let mut decision = inst.solve_greedy().decision;
        decision.routed.clear();
        for (j, job) in self.config.job_classes().iter().enumerate() {
            let cheapest = job
                .eligible()
                .iter()
                .map(|dc| dc.index())
                .min_by(|&a, &b| {
                    self.marginal_cost(state, a)
                        .partial_cmp(&self.marginal_cost(state, b))
                        .expect("finite or infinite costs compare")
                })
                .expect("eligibility sets are non-empty");
            let give = job.max_route().min(queues.central(j)).floor();
            if give > 0.0 {
                decision.routed[(cheapest, j)] = give;
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![20.0])
            .data_center("b", vec![20.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(1), DataCenterId::new(0)], 0)
                    .with_max_route(50.0)
                    .with_max_process(50.0),
            )
            .build()
            .unwrap()
    }

    fn state(p0: f64, p1: f64) -> SystemState {
        SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![20.0], Tariff::flat(p0)),
                DataCenterState::new(vec![20.0], Tariff::flat(p1)),
            ],
        )
    }

    #[test]
    fn local_only_routes_home() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[5.0]);
        // Home is eligible()[0] = DC 1 even though DC 0 is cheaper.
        let d = LocalOnly::new(&cfg).decide(&state(0.1, 9.0), &q);
        assert_eq!(d.routed[(1, 0)], 5.0);
        assert_eq!(d.routed[(0, 0)], 0.0);
    }

    #[test]
    fn price_greedy_routes_to_cheapest() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[5.0]);
        let d = PriceGreedy::new(&cfg).decide(&state(0.1, 9.0), &q);
        assert_eq!(d.routed[(0, 0)], 5.0);
        let d = PriceGreedy::new(&cfg).decide(&state(9.0, 0.1), &q);
        assert_eq!(d.routed[(1, 0)], 5.0);
    }

    #[test]
    fn price_greedy_skips_unavailable_site() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[3.0]);
        let st = SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![0.0], Tariff::flat(0.01)), // down but "cheap"
                DataCenterState::new(vec![20.0], Tariff::flat(5.0)),
            ],
        );
        let d = PriceGreedy::new(&cfg).decide(&st, &q);
        assert_eq!(d.routed[(1, 0)], 3.0, "must not route into a down site");
    }

    #[test]
    fn both_serve_immediately() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 4.0;
        q.apply(&z, &[0.0]);
        let st = state(100.0, 100.0); // price is irrelevant to these baselines
        for mut s in [
            Box::new(LocalOnly::new(&cfg)) as Box<dyn Scheduler>,
            Box::new(PriceGreedy::new(&cfg)),
        ] {
            let d = s.decide(&st, &q);
            assert_eq!(d.processed[(0, 0)], 4.0, "{} must serve eagerly", s.name());
        }
    }

    #[test]
    fn names() {
        let cfg = config();
        assert_eq!(LocalOnly::new(&cfg).name(), "LocalOnly");
        assert_eq!(PriceGreedy::new(&cfg).name(), "PriceGreedy");
    }
}
