//! Fairness functions (§III-C.1).
//!
//! The paper's primary fairness score is the quadratic deviation (3):
//!
//! ```text
//! f(t) = − Σ_m ( r_m(t)/R(t) − γ_m )²
//! ```
//!
//! maximized (at 0) when every account receives exactly its weighted share
//! `r_m = γ_m R`. Footnote 5 notes the analysis applies to other fairness
//! functions too, citing the α-fair family \[12\]; both are provided here
//! behind one trait so every scheduler is generic over the choice.

/// A concave fairness score of the per-account resource *shares*
/// `x_m = r_m(t) / R(t) ∈ [0, 1]`.
///
/// Implementations must be concave in `x` (GreFar's per-slot problem
/// minimizes `−β·f`, which must be convex) and differentiable on `[0, 1]`.
pub trait FairnessFunction: Send + Sync {
    /// The fairness score `f(x; γ)`. Higher is fairer.
    ///
    /// `shares` and `gammas` have length `M`.
    fn score(&self, shares: &[f64], gammas: &[f64]) -> f64;

    /// Writes `∂f/∂x_m` into `grad`.
    fn gradient(&self, shares: &[f64], gammas: &[f64], grad: &mut [f64]);

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's fairness function (3): `f = −Σ_m (x_m − γ_m)²`.
///
/// # Example
/// ```
/// use grefar_core::fairness::{FairnessFunction, QuadraticDeviation};
///
/// let f = QuadraticDeviation;
/// // Ideal allocation scores 0...
/// assert_eq!(f.score(&[0.6, 0.4], &[0.6, 0.4]), 0.0);
/// // ...and any deviation scores negative.
/// assert!(f.score(&[1.0, 0.0], &[0.6, 0.4]) < 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuadraticDeviation;

impl FairnessFunction for QuadraticDeviation {
    fn score(&self, shares: &[f64], gammas: &[f64]) -> f64 {
        assert_eq!(shares.len(), gammas.len(), "share/gamma length mismatch");
        -shares
            .iter()
            .zip(gammas)
            .map(|(x, g)| (x - g) * (x - g))
            .sum::<f64>()
    }

    fn gradient(&self, shares: &[f64], gammas: &[f64], grad: &mut [f64]) {
        assert_eq!(shares.len(), gammas.len(), "share/gamma length mismatch");
        assert_eq!(shares.len(), grad.len(), "gradient length mismatch");
        for ((g, x), gamma) in grad.iter_mut().zip(shares).zip(gammas) {
            *g = -2.0 * (x - gamma);
        }
    }

    fn name(&self) -> &'static str {
        "quadratic-deviation"
    }
}

/// The α-fair utility family of \[12\] (footnote 5's alternative), applied to
/// shares with the account weights as multipliers:
///
/// ```text
/// f(x) = Σ_m γ_m · u_α(x_m + ε),     u_α(v) = v^{1−α}/(1−α)  (α ≠ 1)
///                                    u_1(v) = ln v
/// ```
///
/// `α = 1` is proportional fairness; `α → ∞` approaches max–min fairness.
/// The small `ε` keeps the gradient bounded at zero shares (jobs may well
/// receive nothing during expensive-price slots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaFair {
    alpha: f64,
    epsilon: f64,
}

impl AlphaFair {
    /// Creates the utility with fairness parameter `alpha ≥ 0` and
    /// regularizer `epsilon > 0`.
    ///
    /// # Panics
    /// Panics if `alpha < 0` or `epsilon <= 0`.
    pub fn new(alpha: f64, epsilon: f64) -> Self {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be non-negative"
        );
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self { alpha, epsilon }
    }

    /// The fairness parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for AlphaFair {
    /// Proportional fairness (`α = 1`) with `ε = 10⁻³`.
    fn default() -> Self {
        Self::new(1.0, 1e-3)
    }
}

impl FairnessFunction for AlphaFair {
    fn score(&self, shares: &[f64], gammas: &[f64]) -> f64 {
        assert_eq!(shares.len(), gammas.len(), "share/gamma length mismatch");
        shares
            .iter()
            .zip(gammas)
            .map(|(x, g)| {
                let v = x + self.epsilon;
                let u = if (self.alpha - 1.0).abs() < 1e-12 {
                    v.ln()
                } else {
                    v.powf(1.0 - self.alpha) / (1.0 - self.alpha)
                };
                g * u
            })
            .sum()
    }

    fn gradient(&self, shares: &[f64], gammas: &[f64], grad: &mut [f64]) {
        assert_eq!(shares.len(), gammas.len(), "share/gamma length mismatch");
        assert_eq!(shares.len(), grad.len(), "gradient length mismatch");
        for ((out, x), g) in grad.iter_mut().zip(shares).zip(gammas) {
            let v = x + self.epsilon;
            *out = g * v.powf(-self.alpha);
        }
    }

    fn name(&self) -> &'static str {
        "alpha-fair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_check(f: &dyn FairnessFunction, shares: &[f64], gammas: &[f64]) {
        let m = shares.len();
        let mut grad = vec![0.0; m];
        f.gradient(shares, gammas, &mut grad);
        let eps = 1e-6;
        for i in 0..m {
            let mut hi = shares.to_vec();
            let mut lo = shares.to_vec();
            hi[i] += eps;
            lo[i] -= eps;
            let fd = (f.score(&hi, gammas) - f.score(&lo, gammas)) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-5,
                "{}: component {i}: {} vs {fd}",
                f.name(),
                grad[i]
            );
        }
    }

    #[test]
    fn quadratic_maximized_at_gamma() {
        let f = QuadraticDeviation;
        let gammas = [0.4, 0.3, 0.15, 0.15];
        assert_eq!(f.score(&gammas, &gammas), 0.0);
        // Perturbations strictly reduce the score.
        for i in 0..4 {
            let mut s = gammas;
            s[i] += 0.05;
            assert!(f.score(&s, &gammas) < 0.0);
        }
    }

    #[test]
    fn quadratic_idle_system_score_matches_paper_scale() {
        // With the paper's weights and an idle system (all shares 0) the
        // score is −Σγ² = −0.295; the running averages in Fig. 3 live in
        // [−0.22, −0.16], i.e. between idle and ideal.
        let f = QuadraticDeviation;
        let gammas = [0.4, 0.3, 0.15, 0.15];
        let idle = f.score(&[0.0; 4], &gammas);
        assert!((idle + 0.295).abs() < 1e-12);
    }

    #[test]
    fn quadratic_gradient_matches_finite_differences() {
        finite_difference_check(&QuadraticDeviation, &[0.2, 0.5, 0.1], &[0.3, 0.3, 0.4]);
    }

    #[test]
    fn alpha_fair_gradients() {
        for alpha in [0.0, 0.5, 1.0, 2.0] {
            let f = AlphaFair::new(alpha, 1e-2);
            finite_difference_check(&f, &[0.2, 0.5, 0.1], &[0.3, 0.3, 0.4]);
        }
    }

    #[test]
    fn alpha_one_is_logarithmic() {
        let f = AlphaFair::new(1.0, 1e-3);
        let s = f.score(&[0.5], &[1.0]);
        assert!((s - (0.501f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn alpha_fair_prefers_balanced_shares() {
        let f = AlphaFair::new(2.0, 1e-3);
        let g = [0.5, 0.5];
        assert!(f.score(&[0.4, 0.4], &g) > f.score(&[0.79, 0.01], &g));
    }

    #[test]
    fn quadratic_concavity_along_segment() {
        let f = QuadraticDeviation;
        let g = [0.4, 0.6];
        let a = [0.1, 0.2];
        let b = [0.7, 0.5];
        for k in 0..=10 {
            let t = k as f64 / 10.0;
            let mid = [(1.0 - t) * a[0] + t * b[0], (1.0 - t) * a[1] + t * b[1]];
            let lhs = f.score(&mid, &g);
            let rhs = (1.0 - t) * f.score(&a, &g) + t * f.score(&b, &g);
            assert!(lhs >= rhs - 1e-12, "concavity violated at t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = QuadraticDeviation.score(&[0.1], &[0.1, 0.2]);
    }
}
