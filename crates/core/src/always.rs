//! The "Always" baseline scheduler (§VI-B.3).

use crate::queue::QueueState;
use crate::scheduler::Scheduler;
use crate::solver::SlotInstance;
use grefar_types::{Decision, SystemConfig, SystemState};

/// The baseline that "always schedules the jobs immediately whenever there
/// are resources available" (§VI-B.3), ignoring electricity prices.
///
/// Formally this is exactly GreFar's slot problem with `V = 0`: with no
/// energy penalty, the drift terms alone are minimized by routing every
/// queued job to a shorter local queue and serving every queued job the
/// capacity allows. As the paper notes, "most of the jobs will be scheduled
/// in the next time slot upon their arrivals. Thus, the average delay is
/// expected to be one."
///
/// # Example
/// ```
/// use grefar_core::{Always, QueueState, Scheduler};
/// use grefar_types::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let config = SystemConfig::builder()
/// #     .server_class(ServerClass::new(1.0, 1.0))
/// #     .data_center("dc", vec![10.0])
/// #     .account("org", 1.0)
/// #     .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
/// #         .with_max_route(100.0).with_max_process(100.0))
/// #     .build()?;
/// let mut always = Always::new(&config);
/// let mut queues = QueueState::new(&config);
/// // 4 jobs sit in the data-center queue; price is enormous.
/// let mut z = config.decision_zeros();
/// z.routed[(0, 0)] = 4.0;
/// queues.apply(&z, &[0.0]);
/// let state = SystemState::new(0, vec![DataCenterState::new(vec![10.0], Tariff::flat(99.0))]);
/// // Always serves them anyway.
/// assert_eq!(always.decide(&state, &queues).processed[(0, 0)], 4.0);
/// # Ok(())
/// # }
/// ```
pub struct Always {
    config: SystemConfig,
}

impl core::fmt::Debug for Always {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Always").finish_non_exhaustive()
    }
}

impl Always {
    /// Creates the baseline for a system.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }
}

impl Scheduler for Always {
    fn name(&self) -> String {
        "Always".to_string()
    }

    fn decide(&mut self, state: &SystemState, queues: &QueueState) -> Decision {
        SlotInstance::new(&self.config, state, queues, 0.0)
            .solve_greedy()
            .decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![5.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_route(100.0)
                    .with_max_process(100.0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn serves_up_to_capacity_regardless_of_price() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 9.0;
        queues.apply(&z, &[0.0]); // q = 9, capacity 5
        let state = SystemState::new(
            0,
            vec![DataCenterState::new(vec![5.0], Tariff::flat(1000.0))],
        );
        let mut always = Always::new(&cfg);
        let d = always.decide(&state, &queues);
        assert_eq!(d.processed[(0, 0)], 5.0); // capacity-bound, not price-bound
        assert_eq!(always.name(), "Always");
    }

    #[test]
    fn routes_all_arrivals_immediately() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        queues.apply(&cfg.decision_zeros(), &[3.0]);
        let state = SystemState::new(
            0,
            vec![DataCenterState::new(vec![5.0], Tariff::flat(1000.0))],
        );
        let d = Always::new(&cfg).decide(&state, &queues);
        assert_eq!(d.routed[(0, 0)], 3.0);
    }
}
