//! The job-conservation ledger: shadow accounting for the queue dynamics.
//!
//! Every slot the dynamics (12)–(13) move jobs between four places:
//! arrivals enter the central queues, routing moves them to local queues,
//! processing removes them, and admission control drops the overflow. The
//! `max[·, 0]` truncation in (12)–(13) complicates naive conservation —
//! routing more than a central queue holds *mints* phantom jobs (they are
//! added to local queues in full but only `min(r, Q)` leaves the central
//! queue), and processing an empty local queue removes nothing. The ledger
//! tracks exactly those effective flows, so that at every slot
//!
//! ```text
//! Σ Θ(t)  ==  admitted − served_eff + route_excess
//! ```
//!
//! where `served_eff = Σ min(h_ij, q_ij)` is the work actually removed and
//! `route_excess = Σ_j max(0, Σ_i r_ij − Q_j)` is the phantom work minted
//! by over-routing. A scheduler respecting backlogs (all built-in ones do;
//! see [`invariant::check_backlog_discipline`](crate::invariant)) keeps
//! `route_excess` at zero and `served_eff = Σ h_ij`.
//!
//! The ledger is **always compiled** into the simulator's slot loop — it
//! is a handful of additions per slot — and emitted as a `soak.ledger`
//! telemetry event each slot. Under the `strict-invariants` feature a
//! non-zero balance aborts the run; in the default build the `grefar-soak`
//! harness checks the emitted balances offline.

use grefar_obs::Event;
use grefar_types::Decision;

use crate::invariant::InvariantViolation;
use crate::queue::QueueState;

/// Cumulative conservation counters for one run (see module docs).
///
/// All counters are cumulative job counts since slot 0 (or since the
/// state a checkpoint restored; the counters are checkpointed so a
/// resumed run continues the identical series).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobLedger {
    offered: f64,
    admitted: f64,
    dropped: f64,
    served: f64,
    route_excess: f64,
}

impl JobLedger {
    /// A fresh ledger with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a ledger from checkpointed counters.
    ///
    /// # Errors
    /// A counter that is negative or non-finite, or an `offered` that
    /// disagrees with `admitted + dropped` beyond rounding.
    pub fn from_parts(
        offered: f64,
        admitted: f64,
        dropped: f64,
        served: f64,
        route_excess: f64,
    ) -> Result<Self, String> {
        for (name, v) in [
            ("offered", offered),
            ("admitted", admitted),
            ("dropped", dropped),
            ("served", served),
            ("route_excess", route_excess),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!(
                    "ledger counter {name} must be non-negative, got {v}"
                ));
            }
        }
        let ledger = Self {
            offered,
            admitted,
            dropped,
            served,
            route_excess,
        };
        if (offered - (admitted + dropped)).abs() > ledger.tolerance() {
            return Err(format!(
                "ledger offered {offered} disagrees with admitted {admitted} + dropped {dropped}"
            ));
        }
        Ok(ledger)
    }

    /// Accounts one slot's flows. Call with the queue state **before**
    /// [`QueueState::apply`] for this slot: `raw` is the pre-admission
    /// arrival vector, `admitted` the post-cap vector actually applied.
    ///
    /// # Panics
    /// Panics if `raw` and `admitted` lengths differ from the decision's
    /// job-class count.
    pub fn account(
        &mut self,
        prev: &QueueState,
        decision: &Decision,
        raw: &[f64],
        admitted: &[f64],
    ) {
        let j_count = decision.num_job_types();
        assert_eq!(raw.len(), j_count, "raw arrival vector mismatch");
        assert_eq!(admitted.len(), j_count, "admitted arrival vector mismatch");
        let n = decision.num_data_centers();
        for (j, (&r, &a)) in raw.iter().zip(admitted).enumerate() {
            self.offered += r;
            self.admitted += a;
            self.dropped += r - a;
            let routed = decision.routed.col_sum(j);
            self.route_excess += (routed - prev.central(j)).max(0.0);
            for i in 0..n {
                self.served += decision.processed[(i, j)].min(prev.local(i, j));
            }
        }
    }

    /// Jobs offered (pre-admission-control arrivals) so far.
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Jobs admitted into the queues so far.
    pub fn admitted(&self) -> f64 {
        self.admitted
    }

    /// Jobs dropped by admission control so far.
    pub fn dropped(&self) -> f64 {
        self.dropped
    }

    /// Effective service so far: `Σ min(h_ij, q_ij)` summed over slots.
    pub fn served(&self) -> f64 {
        self.served
    }

    /// Phantom work minted by over-routing so far.
    pub fn route_excess(&self) -> f64 {
        self.route_excess
    }

    /// The queue total the conservation identity predicts.
    pub fn expected_total(&self) -> f64 {
        self.admitted - self.served + self.route_excess
    }

    /// The signed discrepancy between an observed queue total and the
    /// ledger's prediction (zero up to float accumulation on a healthy
    /// run).
    pub fn balance(&self, queued: f64) -> f64 {
        queued - self.expected_total()
    }

    /// The accumulated-rounding tolerance the conservation check allows:
    /// proportional to the total flow the ledger has summed.
    pub fn tolerance(&self) -> f64 {
        1e-9 * (1.0 + self.offered + self.served + self.route_excess)
    }

    /// Checks the conservation identity against the live queues.
    ///
    /// # Errors
    /// [`InvariantViolation::Ledger`] when the balance exceeds the
    /// accumulation [`tolerance`](Self::tolerance).
    pub fn check(&self, queues: &QueueState) -> Result<(), InvariantViolation> {
        let queued = queues.total();
        let balance = self.balance(queued);
        if balance.abs() > self.tolerance() {
            return Err(InvariantViolation::Ledger {
                queued,
                expected: self.expected_total(),
                balance,
            });
        }
        Ok(())
    }

    /// Renders the slot's ledger state as a `soak.ledger` telemetry event.
    pub fn event(&self, t: u64, queued: f64) -> Event {
        Event::new("soak.ledger")
            .field("t", t)
            .field("offered", self.offered)
            .field("admitted", self.admitted)
            .field("dropped", self.dropped)
            .field("served", self.served)
            .field("route_excess", self.route_excess)
            .field("queued", queued)
            .field("balance", self.balance(queued))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, JobClass, ServerClass, SystemConfig};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(8.0)
                    .with_max_route(8.0)
                    .with_max_process(8.0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn conservation_holds_across_route_and_serve() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut ledger = JobLedger::new();

        // Slot 0: 5 jobs arrive.
        let z = cfg.decision_zeros();
        ledger.account(&queues, &z, &[5.0], &[5.0]);
        queues.apply(&z, &[5.0]);
        assert_eq!(ledger.check(&queues), Ok(()));

        // Slot 1: route 3 to the DC, 2 more arrive.
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 3.0;
        ledger.account(&queues, &z, &[2.0], &[2.0]);
        queues.apply(&z, &[2.0]);
        assert_eq!(ledger.check(&queues), Ok(()));

        // Slot 2: serve 2 locally.
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 2.0;
        ledger.account(&queues, &z, &[0.0], &[0.0]);
        queues.apply(&z, &[0.0]);
        assert_eq!(ledger.check(&queues), Ok(()));
        assert_eq!(ledger.served(), 2.0);
        assert_eq!(ledger.admitted(), 7.0);
        assert_eq!(queues.total(), 5.0);
    }

    #[test]
    fn over_routing_mints_route_excess_and_still_balances() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut ledger = JobLedger::new();
        let z0 = cfg.decision_zeros();
        ledger.account(&queues, &z0, &[1.0], &[1.0]);
        queues.apply(&z0, &[1.0]);

        // Route 4 with only 1 queued: 3 phantom jobs are minted by (12).
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 4.0;
        ledger.account(&queues, &z, &[0.0], &[0.0]);
        queues.apply(&z, &[0.0]);
        assert_eq!(ledger.route_excess(), 3.0);
        assert_eq!(ledger.check(&queues), Ok(()));
        assert_eq!(queues.total(), 4.0);
    }

    #[test]
    fn phantom_service_is_not_counted() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut ledger = JobLedger::new();
        // Serve 5 from an empty local queue: effective service is zero.
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 5.0;
        ledger.account(&queues, &z, &[0.0], &[0.0]);
        queues.apply(&z, &[0.0]);
        assert_eq!(ledger.served(), 0.0);
        assert_eq!(ledger.check(&queues), Ok(()));
    }

    #[test]
    fn admission_drops_are_ledgered() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut ledger = JobLedger::new();
        let z = cfg.decision_zeros();
        ledger.account(&queues, &z, &[6.0], &[4.0]);
        queues.apply(&z, &[4.0]);
        assert_eq!(ledger.offered(), 6.0);
        assert_eq!(ledger.dropped(), 2.0);
        assert_eq!(ledger.check(&queues), Ok(()));
    }

    #[test]
    fn a_corrupted_queue_breaks_the_balance() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut ledger = JobLedger::new();
        let z = cfg.decision_zeros();
        ledger.account(&queues, &z, &[3.0], &[3.0]);
        queues.apply(&z, &[3.0]);
        queues.corrupt_central_for_test(0, 2.5);
        let err = ledger.check(&queues).unwrap_err();
        match err {
            InvariantViolation::Ledger { balance, .. } => assert_eq!(balance, 2.5),
            other => panic!("expected ledger violation, got {other:?}"),
        }
        assert_eq!(err.kind(), "ledger");
        assert_eq!(err.event(7).name(), "invariant.violation");
    }

    #[test]
    fn roundtrips_through_parts() {
        let ledger = JobLedger::from_parts(10.0, 8.0, 2.0, 3.0, 0.5).unwrap();
        assert_eq!(ledger.expected_total(), 5.5);
        assert!(JobLedger::from_parts(-1.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(JobLedger::from_parts(10.0, 3.0, 2.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn event_carries_every_declared_field() {
        let ledger = JobLedger::from_parts(4.0, 4.0, 0.0, 1.0, 0.0).unwrap();
        let event = ledger.event(9, 3.0);
        assert_eq!(event.name(), "soak.ledger");
        for key in [
            "t",
            "offered",
            "admitted",
            "dropped",
            "served",
            "route_excess",
            "queued",
            "balance",
        ] {
            assert!(event.get(key).is_some(), "missing {key}");
        }
    }
}
