//! The GreFar online scheduler, baselines and performance theory.
//!
//! This crate implements the primary contribution of *"Provably-Efficient
//! Job Scheduling for Energy and Fairness in Geographically Distributed Data
//! Centers"* (Ren, He, Xu — ICDCS 2012):
//!
//! * [`QueueState`] — the queue vector `Θ(t)` with the exact dynamics
//!   (12)–(13) and the Lyapunov function (26),
//! * [`GreFar`] — Algorithm 1: every slot, observe `x(t)` and `Θ(t)` and
//!   minimize the drift-plus-penalty expression (14). The minimization is
//!   **exact** via a greedy fractional matching when `β = 0` (the problem
//!   is an LP with product structure) and solved by Frank–Wolfe with that
//!   same greedy as the linear-minimization oracle when `β > 0`,
//! * [`Always`] — the baseline of §VI-B.3 that schedules jobs immediately
//!   whenever resources are available,
//! * [`TStepLookahead`] — the offline frame policy of §V-A (eqs. (15)–(18)),
//!   solved with the workspace LP solver,
//! * [`theory`] — the constants `B`, `D`, `C3` and the bounds of
//!   Theorem 1, plus a slackness-condition (20)–(22) checker,
//! * [`fairness`] — the paper's quadratic-deviation fairness function (3)
//!   and the α-fair family mentioned in §III-C.1.
//!
//! # Example
//!
//! One slot of GreFar by hand:
//!
//! ```
//! use grefar_core::{GreFar, GreFarParams, QueueState, Scheduler};
//! use grefar_types::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::builder()
//!     .server_class(ServerClass::new(1.0, 1.0))
//!     .data_center("dc", vec![50.0])
//!     .account("org", 1.0)
//!     .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
//!         .with_max_arrivals(10.0).with_max_route(20.0).with_max_process(50.0))
//!     .build()?;
//! let mut grefar = GreFar::new(&config, GreFarParams::new(2.0, 0.0))?;
//! let mut queues = QueueState::new(&config);
//!
//! // Pretend 8 jobs arrived last slot; observe a cheap-price state.
//! queues.apply(&config.decision_zeros(), &[8.0]);
//! let state = SystemState::new(1, vec![DataCenterState::new(vec![50.0], Tariff::flat(0.01))]);
//! let decision = grefar.decide(&state, &queues);
//! // All 8 jobs are routed toward the data center.
//! assert_eq!(decision.routed[(0, 0)], 8.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod always;
mod baselines;
mod cost;
mod error;
pub mod fairness;
mod grefar;
pub mod invariant;
mod ledger;
mod lookahead;
mod queue;
mod scheduler;
mod solver;
pub mod stale;
pub mod theory;

pub use always::Always;
pub use baselines::{LocalOnly, PriceGreedy};
pub use cost::{
    cost_breakdown, drift_penalty_objective, energy_cost_total, resource_shares, CostBreakdown,
};
pub use error::ParamError;
pub use fairness::{AlphaFair, FairnessFunction, QuadraticDeviation};
pub use grefar::{GreFar, GreFarParams};
pub use ledger::JobLedger;
pub use lookahead::{LookaheadPlan, TStepLookahead};
pub use queue::QueueState;
pub use scheduler::Scheduler;
pub use solver::fallback::{Degradation, DegradedReason, SolverBudget};
pub use solver::{SlotInstance, SlotSolution, SolverChoice};
