//! Exact greedy solvers for one data center's processing decision.
//!
//! Both functions solve instances of the same transportation-on-a-line LP:
//! match *demand segments* (jobs, sorted by value per unit work, descending)
//! against *supply segments* (server classes, sorted by cost per unit work,
//! ascending), serving while the marginal value strictly exceeds the
//! marginal cost. An exchange argument shows this is optimal; the LP-based
//! property tests in `tests/greedy_vs_lp.rs` verify it exhaustively.

use grefar_types::Tariff;

/// Solves the *linear* per-DC dispatch
///
/// ```text
/// min  Σ_j c_h[j]·h_j + Σ_k c_b[k]·b_k
/// s.t. Σ_j d_j h_j ≤ Σ_k s_k b_k,   0 ≤ h_j ≤ h_cap[j],   0 ≤ b_k ≤ avail[k]
/// ```
///
/// writing the minimizer into `h_out` (jobs) and `b_out` (busy servers).
/// This is the Frank–Wolfe linear-minimization oracle for the fairness
/// (`β > 0`) path of GreFar.
///
/// Server classes with *negative* cost are switched fully on (their
/// capacity is then free to any job). Jobs with non-negative `c_h` are
/// never served.
#[allow(clippy::too_many_arguments)]
pub(crate) fn linear_dispatch_dc(
    c_h: &[f64],
    c_b: &[f64],
    work: &[f64],
    speeds: &[f64],
    avail: &[f64],
    h_cap: &[f64],
    h_out: &mut [f64],
    b_out: &mut [f64],
) {
    let j_count = c_h.len();
    let k_count = c_b.len();
    debug_assert_eq!(work.len(), j_count);
    debug_assert_eq!(h_cap.len(), j_count);
    debug_assert_eq!(speeds.len(), k_count);
    debug_assert_eq!(avail.len(), k_count);
    debug_assert_eq!(h_out.len(), j_count);
    debug_assert_eq!(b_out.len(), k_count);

    h_out.fill(0.0);
    b_out.fill(0.0);

    // Negative-cost classes: switching them on is free profit; their
    // capacity then costs nothing at the margin.
    let mut free_capacity = 0.0;
    let mut supply: Vec<(usize, f64, f64)> = Vec::with_capacity(k_count); // (k, cost/work, work)
    for k in 0..k_count {
        if avail[k] <= 0.0 {
            continue;
        }
        if c_b[k] < 0.0 {
            b_out[k] = avail[k];
            free_capacity += avail[k] * speeds[k];
        } else {
            supply.push((k, c_b[k] / speeds[k], avail[k] * speeds[k]));
        }
    }
    supply.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Demand: only jobs whose service improves the objective.
    let mut demand: Vec<(usize, f64, f64)> = Vec::with_capacity(j_count); // (j, value/work, work)
    demand.extend(
        (0..j_count)
            .filter(|&j| c_h[j] < 0.0 && h_cap[j] > 0.0 && work[j] > 0.0)
            .map(|j| (j, -c_h[j] / work[j], h_cap[j] * work[j])),
    );
    demand.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut supply_idx = 0usize;
    let mut supply_left = supply.first().map_or(0.0, |s| s.2);

    for (j, value, mut want) in demand {
        // Free capacity first: any positive value beats cost 0.
        let from_free = want.min(free_capacity);
        if from_free > 0.0 {
            h_out[j] += from_free / work[j];
            free_capacity -= from_free;
            want -= from_free;
        }
        // Paid capacity while marginal value strictly exceeds marginal cost.
        while want > 0.0 && supply_idx < supply.len() {
            let (k, cost, _) = supply[supply_idx];
            if value <= cost {
                break;
            }
            let served = want.min(supply_left);
            h_out[j] += served / work[j];
            b_out[k] += served / speeds[k];
            want -= served;
            supply_left -= served;
            if supply_left <= 0.0 {
                supply_idx += 1;
                supply_left = supply.get(supply_idx).map_or(0.0, |s| s.2);
            }
        }
    }
}

/// Remaining width and rate of the tariff tier active at energy level `e`.
fn tier_at(tariff: &Tariff, e: f64) -> (f64, f64) {
    let mut level = e;
    for seg in tariff.segments() {
        if level < seg.width {
            return (seg.rate, seg.width - level);
        }
        level -= seg.width;
    }
    match tariff.segments().last() {
        Some(last) => (last.rate, f64::INFINITY),
        // Tariff validates segment lists non-empty; an empty curve bills 0.
        None => (0.0, f64::INFINITY),
    }
}

/// Solves the β = 0 GreFar per-DC processing problem *exactly*, including
/// convex (tiered) tariffs:
///
/// ```text
/// min  V · tariff.cost( Σ_k b_k p_k ) − Σ_j q_j h_j
/// s.t. Σ_j d_j h_j ≤ Σ_k s_k b_k,   0 ≤ h_j ≤ h_cap[j],   0 ≤ b_k ≤ avail[k]
/// ```
///
/// Demand is served in decreasing `q_j / d_j`; supply is consumed in
/// increasing `p_k / s_k`; the effective marginal cost of one unit of work is
/// `V · rate(E) · p_k / s_k` where `rate(E)` is the tariff's marginal price
/// at the current energy level `E`. Because the cost of work is convex and
/// demand values are sorted, the marginal rule is exact. With a flat tariff
/// this reduces to the classic "serve while `q_j/d_j > V φ p_k/s_k`" rule of
/// §IV-B.
#[allow(clippy::too_many_arguments)]
pub(crate) fn price_aware_dispatch_dc(
    queue_values: &[f64],
    work: &[f64],
    speeds: &[f64],
    powers: &[f64],
    avail: &[f64],
    h_cap: &[f64],
    tariff: &Tariff,
    v: f64,
    h_out: &mut [f64],
    b_out: &mut [f64],
) {
    let j_count = queue_values.len();
    let k_count = speeds.len();
    debug_assert_eq!(work.len(), j_count);
    debug_assert_eq!(h_cap.len(), j_count);
    debug_assert_eq!(powers.len(), k_count);
    debug_assert_eq!(avail.len(), k_count);

    h_out.fill(0.0);
    b_out.fill(0.0);

    // Supply: classes by power-per-work ascending (the order is invariant to
    // the shared tariff rate multiplier).
    let mut supply: Vec<(usize, f64, f64)> = Vec::with_capacity(k_count); // (k, p/s, work)
    supply.extend(
        (0..k_count)
            .filter(|&k| avail[k] > 0.0)
            .map(|k| (k, powers[k] / speeds[k], avail[k] * speeds[k])),
    );
    supply.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Demand: positive queues by value-per-work descending.
    let mut demand: Vec<(usize, f64, f64)> = Vec::with_capacity(j_count);
    demand.extend(
        (0..j_count)
            .filter(|&j| queue_values[j] > 0.0 && h_cap[j] > 0.0 && work[j] > 0.0)
            .map(|j| (j, queue_values[j] / work[j], h_cap[j] * work[j])),
    );
    demand.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut energy = 0.0f64;
    let mut supply_idx = 0usize;
    let mut supply_left = supply.first().map_or(0.0, |s| s.2);

    'demand: for (j, value, mut want) in demand {
        while want > 0.0 {
            if supply_idx >= supply.len() {
                break 'demand; // out of capacity
            }
            let (k, ppw, _) = supply[supply_idx];
            let (rate, tier_left) = tier_at(tariff, energy);
            let marginal_cost = v * rate * ppw;
            if value <= marginal_cost {
                // Costs only rise from here and later demand is worth less.
                break 'demand;
            }
            // Work that fits in this (class, tariff-tier) cell.
            let tier_work = if ppw > 0.0 {
                tier_left / ppw
            } else {
                f64::INFINITY
            };
            let served = want.min(supply_left).min(tier_work);
            debug_assert!(served > 0.0);
            h_out[j] += served / work[j];
            b_out[k] += served / speeds[k];
            energy += served * ppw;
            want -= served;
            supply_left -= served;
            if supply_left <= 1e-15 {
                supply_idx += 1;
                supply_left = supply.get(supply_idx).map_or(0.0, |s| s.2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_serves_only_profitable_jobs() {
        // One class: speed 1, cost 2/server → cost 2 per unit work.
        // Job 0 (d=1): value 3 > 2: serve. Job 1: value 1 < 2: skip.
        let mut h = vec![0.0; 2];
        let mut b = vec![0.0; 1];
        linear_dispatch_dc(
            &[-3.0, -1.0],
            &[2.0],
            &[1.0, 1.0],
            &[1.0],
            &[10.0],
            &[4.0, 4.0],
            &mut h,
            &mut b,
        );
        assert_eq!(h, vec![4.0, 0.0]);
        assert_eq!(b, vec![4.0]);
    }

    #[test]
    fn linear_respects_capacity_priority() {
        // Capacity for 3 units of work; job 0 (value 5/work) beats job 1 (2).
        let mut h = vec![0.0; 2];
        let mut b = vec![0.0; 1];
        linear_dispatch_dc(
            &[-5.0, -2.0],
            &[0.5],
            &[1.0, 1.0],
            &[1.0],
            &[3.0],
            &[2.0, 9.0],
            &mut h,
            &mut b,
        );
        assert_eq!(h, vec![2.0, 1.0]);
        assert_eq!(b, vec![3.0]);
    }

    #[test]
    fn linear_negative_server_cost_turns_fully_on() {
        let mut h = vec![0.0; 1];
        let mut b = vec![0.0; 2];
        // Class 0 has negative cost → fully on; its capacity is free for
        // job 0 even though class 1 would be too expensive.
        linear_dispatch_dc(
            &[-0.1],
            &[-1.0, 100.0],
            &[1.0],
            &[2.0, 1.0],
            &[3.0, 3.0],
            &[4.0],
            &mut h,
            &mut b,
        );
        assert_eq!(b[0], 3.0);
        assert_eq!(b[1], 0.0);
        assert_eq!(h, vec![4.0]); // 4 ≤ free capacity 6
    }

    #[test]
    fn linear_zero_value_jobs_not_served() {
        let mut h = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        linear_dispatch_dc(
            &[0.0],
            &[1.0],
            &[1.0],
            &[1.0],
            &[10.0],
            &[5.0],
            &mut h,
            &mut b,
        );
        assert_eq!(h, vec![0.0]);
        assert_eq!(b, vec![0.0]);
    }

    #[test]
    fn price_aware_flat_matches_threshold_rule() {
        // V=2, φ=0.5, p/s=1 → threshold q/d > 1. Jobs: q=3,d=1 (serve),
        // q=0.5,d=1 (skip).
        let tariff = Tariff::flat(0.5);
        let mut h = vec![0.0; 2];
        let mut b = vec![0.0; 1];
        price_aware_dispatch_dc(
            &[3.0, 0.5],
            &[1.0, 1.0],
            &[1.0],
            &[1.0],
            &[10.0],
            &[3.0, 3.0],
            &tariff,
            2.0,
            &mut h,
            &mut b,
        );
        assert_eq!(h, vec![3.0, 0.0]);
        assert_eq!(b, vec![3.0]);
    }

    #[test]
    fn price_aware_v_zero_serves_everything_possible() {
        // V=0: cost-free; serve all backlog up to capacity (the "Always"
        // behavior).
        let tariff = Tariff::flat(10.0);
        let mut h = vec![0.0; 2];
        let mut b = vec![0.0; 1];
        price_aware_dispatch_dc(
            &[1.0, 4.0],
            &[1.0, 2.0],
            &[1.0],
            &[1.0],
            &[5.0],
            &[2.0, 2.0],
            &tariff,
            0.0,
            &mut h,
            &mut b,
        );
        // Demand: job 1 first (4/2 = 2 per work, 4 work) then job 0 (1 work);
        // capacity 5 covers both.
        assert_eq!(h, vec![1.0, 2.0]);
        assert_eq!(b, vec![5.0]);
    }

    #[test]
    fn price_aware_prefers_efficient_servers() {
        // Class 1 is more efficient (0.6/0.75 = 0.8 < 1.0).
        let tariff = Tariff::flat(0.1);
        let mut h = vec![0.0; 1];
        let mut b = vec![0.0; 2];
        price_aware_dispatch_dc(
            &[10.0],
            &[1.0],
            &[1.0, 0.75],
            &[1.0, 0.6],
            &[10.0, 4.0],
            &[3.0],
            &tariff,
            1.0,
            &mut h,
            &mut b,
        );
        // 3 units of work all fit on class 1 (capacity 3 = 4 × 0.75).
        assert_eq!(h, vec![3.0]);
        assert!(b[0].abs() < 1e-12);
        assert!((b[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn price_aware_convex_tariff_stops_at_tier_boundary() {
        // Tier 1: 2 units of energy at 0.1; tier 2: rate 10.
        // Value/work = 1; p/s = 1; V = 1. Serving is profitable in tier 1
        // (cost 0.1) but not tier 2 (cost 10) → exactly 2 units served.
        let tariff = Tariff::convex(vec![(2.0, 0.1), (f64::INFINITY, 10.0)]).unwrap();
        let mut h = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        price_aware_dispatch_dc(
            &[1.0],
            &[1.0],
            &[1.0],
            &[1.0],
            &[100.0],
            &[50.0],
            &tariff,
            1.0,
            &mut h,
            &mut b,
        );
        assert!((h[0] - 2.0).abs() < 1e-9, "{h:?}");
        assert!((b[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn price_aware_caps_at_queue() {
        let tariff = Tariff::flat(0.0);
        let mut h = vec![0.0; 1];
        let mut b = vec![0.0; 1];
        price_aware_dispatch_dc(
            &[7.0],
            &[1.0],
            &[1.0],
            &[1.0],
            &[100.0],
            &[7.0],
            &tariff,
            5.0,
            &mut h,
            &mut b,
        );
        assert_eq!(h, vec![7.0]);
    }

    #[test]
    fn tier_tracking() {
        let tariff = Tariff::convex(vec![(5.0, 0.2), (5.0, 0.4), (f64::INFINITY, 0.9)]).unwrap();
        assert_eq!(tier_at(&tariff, 0.0), (0.2, 5.0));
        assert_eq!(tier_at(&tariff, 4.0), (0.2, 1.0));
        assert_eq!(tier_at(&tariff, 7.5), (0.4, 2.5));
        let (rate, left) = tier_at(&tariff, 50.0);
        assert_eq!(rate, 0.9);
        assert!(left.is_infinite());
    }
}
