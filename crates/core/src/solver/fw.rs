//! The Frank–Wolfe path of the slot solver (`β > 0`).
//!
//! With fairness, the processing part of (14) becomes, over the variables
//! `x = (h, b)`,
//!
//! ```text
//! min  V·Σ_i tariff_i( Σ_k b_{i,k} p_k )  −  V·β·f(shares(h))  −  Σ_{i,j} q_{i,j} h_{i,j}
//! s.t. Σ_j d_j h_{i,j} ≤ Σ_k s_k b_{i,k},  0 ≤ h ≤ h_cap,  0 ≤ b ≤ n     ∀i
//! ```
//!
//! a smooth convex program (exactly smooth for the paper's flat tariffs;
//! for tiered tariffs the energy term is piecewise linear and we use its
//! subgradient — the cross-check tests keep this honest). The feasible set
//! decomposes per data center and its linear minimization oracle is the
//! exact greedy of [`super::greedy`], so Frank–Wolfe applies directly.

use super::greedy::linear_dispatch_dc;
use super::SlotInstance;
use crate::fairness::FairnessFunction;
use grefar_convex::{frank_wolfe_observed, FwOptions, Lmo, Objective};
use grefar_obs::Observer;
use grefar_types::Grid;

/// Flat layout: `x[0 .. N*J]` is `h` row-major, `x[N*J ..]` is `b` row-major.
struct Layout {
    n: usize,
    j: usize,
    k: usize,
}

impl Layout {
    #[inline]
    fn h(&self, i: usize, j: usize) -> usize {
        i * self.j + j
    }

    #[inline]
    fn b(&self, i: usize, k: usize) -> usize {
        self.n * self.j + i * self.k + k
    }

    #[inline]
    fn len(&self) -> usize {
        self.n * self.j + self.n * self.k
    }
}

struct ProcessingObjective<'a> {
    inst: &'a SlotInstance<'a>,
    beta: f64,
    fairness: &'a dyn FairnessFunction,
    layout: Layout,
    gammas: Vec<f64>,
    account_of: Vec<usize>,
}

impl ProcessingObjective<'_> {
    fn shares(&self, x: &[f64]) -> Vec<f64> {
        let mut shares = vec![0.0; self.gammas.len()];
        if self.inst.total_capacity <= 0.0 {
            return shares;
        }
        for i in 0..self.layout.n {
            for j in 0..self.layout.j {
                shares[self.account_of[j]] +=
                    x[self.layout.h(i, j)] * self.inst.work[j] / self.inst.total_capacity;
            }
        }
        shares
    }
}

impl Objective for ProcessingObjective<'_> {
    fn value(&self, x: &[f64]) -> f64 {
        let l = &self.layout;
        let mut value = 0.0;
        // Energy term.
        for i in 0..l.n {
            let power: f64 = (0..l.k).map(|k| x[l.b(i, k)] * self.inst.powers[k]).sum();
            value += self.inst.v * self.inst.state.data_center(i).tariff().cost(power.max(0.0));
        }
        // Fairness term.
        if self.beta > 0.0 && self.inst.total_capacity > 0.0 {
            let shares = self.shares(x);
            value -= self.inst.v * self.beta * self.fairness.score(&shares, &self.gammas);
        }
        // Queue-service term.
        for i in 0..l.n {
            for j in 0..l.j {
                value -= self.inst.queues.local(i, j) * x[l.h(i, j)];
            }
        }
        value
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        let l = &self.layout;
        grad.fill(0.0);
        // Energy: ∂/∂b_{i,k} = V · rate_i(power_i) · p_k.
        for i in 0..l.n {
            let power: f64 = (0..l.k).map(|k| x[l.b(i, k)] * self.inst.powers[k]).sum();
            let rate = self
                .inst
                .state
                .data_center(i)
                .tariff()
                .marginal_rate(power.max(0.0));
            for k in 0..l.k {
                grad[l.b(i, k)] = self.inst.v * rate * self.inst.powers[k];
            }
        }
        // Fairness: ∂/∂h_{i,j} = −V·β·f'_{m(j)}(shares) · d_j / R.
        let mut fair_grad = vec![0.0; self.gammas.len()];
        if self.beta > 0.0 && self.inst.total_capacity > 0.0 {
            let shares = self.shares(x);
            self.fairness
                .gradient(&shares, &self.gammas, &mut fair_grad);
        }
        for i in 0..l.n {
            for j in 0..l.j {
                let mut g = -self.inst.queues.local(i, j);
                if self.beta > 0.0 && self.inst.total_capacity > 0.0 {
                    g -=
                        self.inst.v * self.beta * fair_grad[self.account_of[j]] * self.inst.work[j]
                            / self.inst.total_capacity;
                }
                grad[l.h(i, j)] = g;
            }
        }
    }
}

/// The per-DC-decomposed LMO: for each data center, run the exact greedy
/// linear dispatch on that block of the gradient.
struct SlotLmo<'a> {
    inst: &'a SlotInstance<'a>,
    layout: Layout,
}

impl Lmo for SlotLmo<'_> {
    fn minimize(&self, gradient: &[f64], out: &mut [f64]) {
        let l = &self.layout;
        out.fill(0.0);
        let mut h_row = vec![0.0; l.j];
        let mut b_row = vec![0.0; l.k];
        for i in 0..l.n {
            let c_h = &gradient[l.h(i, 0)..l.h(i, 0) + l.j];
            let c_b = &gradient[l.b(i, 0)..l.b(i, 0) + l.k];
            linear_dispatch_dc(
                c_h,
                c_b,
                &self.inst.work,
                &self.inst.speeds,
                self.inst.state.data_center(i).available_slice(),
                self.inst.h_cap.row(i),
                &mut h_row,
                &mut b_row,
            );
            out[l.h(i, 0)..l.h(i, 0) + l.j].copy_from_slice(&h_row);
            out[l.b(i, 0)..l.b(i, 0) + l.k].copy_from_slice(&b_row);
        }
    }
}

/// Solves the processing part of (14) with fairness via Frank–Wolfe,
/// returning `(h, b, iterations, gap)`. The final busy matrix is
/// re-dispatched at minimum power for the chosen work (never worse, always
/// feasible); the iteration count and final duality gap are passed through
/// for telemetry. A profiling observer additionally sees one `fw.iter`
/// span per Frank–Wolfe iteration.
pub(crate) fn solve_processing_fw_observed(
    inst: &SlotInstance<'_>,
    beta: f64,
    fairness: &dyn FairnessFunction,
    options: FwOptions,
    obs: &mut dyn Observer,
) -> (Grid, Grid, usize, f64) {
    let layout = Layout {
        n: inst.config.num_data_centers(),
        j: inst.config.num_job_classes(),
        k: inst.config.num_server_classes(),
    };
    let x0 = vec![0.0; layout.len()];
    let objective = ProcessingObjective {
        inst,
        beta,
        fairness,
        gammas: inst.config.gammas(),
        account_of: inst
            .config
            .job_classes()
            .iter()
            .map(|j| j.account().index())
            // verify: allow(hot-path-alloc): exact-size collect from a slice iterator, once per slot instance
            .collect(),
        layout,
    };
    let lmo = SlotLmo {
        inst,
        layout: Layout {
            n: objective.layout.n,
            j: objective.layout.j,
            k: objective.layout.k,
        },
    };
    let result = frank_wolfe_observed(&objective, &lmo, x0, options, obs);

    let l = &objective.layout;
    let mut processed = Grid::zeros(l.n, l.j);
    let mut work_by_dc = vec![0.0; l.n];
    for i in 0..l.n {
        for j in 0..l.j {
            let h = result.x[l.h(i, j)].max(0.0);
            processed[(i, j)] = h;
            work_by_dc[i] += h * inst.work[j];
        }
    }
    let busy = inst.min_power_busy(&work_by_dc);
    (processed, busy, result.iterations, result.gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::QuadraticDeviation;
    use crate::queue::QueueState;
    use grefar_types::{
        DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, SystemState, Tariff,
    };

    fn two_account_config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![20.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0).with_max_process(20.0))
            .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 1).with_max_process(20.0))
            .build()
            .unwrap()
    }

    fn queues_with(cfg: &SystemConfig, q0: f64, q1: f64) -> QueueState {
        let mut q = QueueState::new(cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = q0;
        z.routed[(0, 1)] = q1;
        q.apply(&z, &[0.0, 0.0]);
        q
    }

    #[test]
    fn beta_zero_fw_matches_greedy() {
        let cfg = two_account_config();
        let st = SystemState::new(0, vec![DataCenterState::new(vec![20.0], Tariff::flat(0.4))]);
        let q = queues_with(&cfg, 8.0, 2.0);
        let inst = SlotInstance::new(&cfg, &st, &q, 3.0);
        let greedy = inst.solve_greedy();
        let fw = inst.solve_with_fairness(0.0, &QuadraticDeviation, FwOptions::default());
        assert!(
            (greedy.objective - fw.objective).abs() < 1e-6,
            "greedy {} vs FW {}",
            greedy.objective,
            fw.objective
        );
    }

    #[test]
    fn fairness_balances_accounts() {
        let cfg = two_account_config();
        // Expensive power so β=0 would serve nothing.
        let st = SystemState::new(
            0,
            vec![DataCenterState::new(vec![20.0], Tariff::flat(10.0))],
        );
        let q = queues_with(&cfg, 6.0, 6.0);
        let inst = SlotInstance::new(&cfg, &st, &q, 1.0);
        let none = inst.solve_greedy().decision;
        assert_eq!(none.processed.sum(), 0.0);
        // Strong fairness pressure serves work to move shares toward γ.
        let fair = inst
            .solve_with_fairness(1000.0, &QuadraticDeviation, FwOptions::default())
            .decision;
        assert!(fair.processed.sum() > 1.0, "{:?}", fair.processed);
        // Both accounts served roughly equally (γ = 0.5/0.5, symmetric queues).
        let s0 = fair.processed[(0, 0)];
        let s1 = fair.processed[(0, 1)];
        assert!((s0 - s1).abs() < 0.5, "{s0} vs {s1}");
    }

    #[test]
    fn fw_solution_is_feasible() {
        let cfg = two_account_config();
        let st = SystemState::new(0, vec![DataCenterState::new(vec![5.0], Tariff::flat(0.2))]);
        let q = queues_with(&cfg, 10.0, 10.0);
        let inst = SlotInstance::new(&cfg, &st, &q, 2.0);
        let d = inst
            .solve_with_fairness(50.0, &QuadraticDeviation, FwOptions::default())
            .decision;
        // Capacity: Σ d h ≤ Σ s b ≤ availability.
        let served = d.work_processed(0, &[1.0, 1.0]);
        let supply = d.supply(0, &[1.0]);
        assert!(served <= supply + 1e-6, "served {served} supply {supply}");
        assert!(d.busy[(0, 0)] <= 5.0 + 1e-9);
        // h never exceeds queue-capped bound.
        assert!(d.processed[(0, 0)] <= 10.0 + 1e-6);
    }

    #[test]
    fn zero_capacity_is_handled() {
        let cfg = two_account_config();
        let st = SystemState::new(0, vec![DataCenterState::new(vec![0.0], Tariff::flat(0.2))]);
        let q = queues_with(&cfg, 4.0, 4.0);
        let inst = SlotInstance::new(&cfg, &st, &q, 2.0);
        let d = inst
            .solve_with_fairness(100.0, &QuadraticDeviation, FwOptions::default())
            .decision;
        assert_eq!(d.processed.sum(), 0.0);
        assert_eq!(d.busy.sum(), 0.0);
    }
}
