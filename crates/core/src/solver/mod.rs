//! The per-slot drift-plus-penalty minimization (14).
//!
//! Step 2 of Algorithm 1: given the observed state `x(t)` and queues
//! `Θ(t)`, choose `r_{i,j}(t)`, `h_{i,j}(t)` (and implicitly `b_{i,k}(t)`)
//! minimizing
//!
//! ```text
//! V·g(t) − Σ_j Q_j(t)·Σ_{i∈𝒟_j} r_{i,j}(t)
//!        + Σ_j Σ_{i∈𝒟_j} q_{i,j}(t)·[r_{i,j}(t) − h_{i,j}(t)]
//! ```
//!
//! The minimization decomposes:
//!
//! * **Routing** — the `r` terms have coefficient `(q_{i,j} − Q_j)`, so the
//!   exact minimizer routes `r^max` jobs to every eligible data center whose
//!   local queue is shorter than the central queue. (We additionally never
//!   route more jobs than exist; see DESIGN.md §4 — the `max[·,0]` dynamics
//!   make this equivalent for the queues and strictly better for cost.)
//! * **Processing, `β = 0`** — per data center an LP solved *exactly* by the
//!   greedy fractional matching in [`greedy`], including convex tariffs.
//! * **Processing, `β > 0`** — the fairness quadratic couples data centers;
//!   [`fw`] runs Frank–Wolfe with the greedy as linear-minimization oracle.

pub mod fallback;
mod fw;
mod greedy;

use crate::fairness::FairnessFunction;
use crate::queue::QueueState;
use grefar_cluster::PowerCurve;
use grefar_convex::FwOptions;
use grefar_types::{Decision, Grid, SystemConfig, SystemState};

pub(crate) use greedy::price_aware_dispatch_dc;

/// One slot's drift-plus-penalty instance: everything (14) depends on,
/// with the per-data-center quantities precomputed.
///
/// # Example
/// ```
/// use grefar_core::{QueueState, SlotInstance};
/// use grefar_types::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let config = SystemConfig::builder()
/// #     .server_class(ServerClass::new(1.0, 1.0))
/// #     .data_center("dc", vec![10.0])
/// #     .account("org", 1.0)
/// #     .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0))
/// #     .build()?;
/// let mut queues = QueueState::new(&config);
/// queues.apply(&config.decision_zeros(), &[4.0]);
/// let state = SystemState::new(0, vec![DataCenterState::new(vec![10.0], Tariff::flat(0.01))]);
/// let inst = SlotInstance::new(&config, &state, &queues, 1.0);
/// let solution = inst.solve_greedy();
/// assert!(solution.decision.is_nonnegative());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SlotInstance<'a> {
    pub(crate) config: &'a SystemConfig,
    pub(crate) state: &'a SystemState,
    pub(crate) queues: &'a QueueState,
    pub(crate) v: f64,
    pub(crate) work: Vec<f64>,
    pub(crate) speeds: Vec<f64>,
    pub(crate) powers: Vec<f64>,
    /// Per-(i, j) processing cap: `min(h^max_j, q_{i,j})` for eligible
    /// pairs, 0 otherwise (never bill energy for phantom work).
    pub(crate) h_cap: Grid,
    /// Total available resource `R(t)`.
    pub(crate) total_capacity: f64,
}

/// Which processing solver produced a [`SlotSolution`] — surfaced so
/// telemetry can distinguish the exact greedy path from Frank–Wolfe and
/// report the latter's convergence effort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverChoice {
    /// The exact greedy fractional matching (`β = 0`).
    Greedy,
    /// Frank–Wolfe with the greedy LMO (`β > 0`).
    FrankWolfe {
        /// Iterations actually performed.
        iterations: usize,
        /// Final duality gap (an upper bound on `f(x) − f*`).
        gap: f64,
    },
}

impl SolverChoice {
    /// A short label for telemetry ("greedy" / "frank_wolfe").
    pub fn label(&self) -> &'static str {
        match self {
            SolverChoice::Greedy => "greedy",
            SolverChoice::FrankWolfe { .. } => "frank_wolfe",
        }
    }
}

/// The minimizer of (14) for one slot, plus its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSolution {
    /// The chosen action `z(t)`.
    pub decision: Decision,
    /// The drift-plus-penalty value (14) achieved by `decision`.
    pub objective: f64,
    /// Which solver produced the decision (and how hard it worked).
    pub solver: SolverChoice,
}

impl<'a> SlotInstance<'a> {
    /// Builds the instance for one slot.
    ///
    /// # Panics
    /// Panics if `v` is negative/non-finite or the state's shape mismatches
    /// the configuration.
    pub fn new(
        config: &'a SystemConfig,
        state: &'a SystemState,
        queues: &'a QueueState,
        v: f64,
    ) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "cost-delay parameter V must be non-negative and finite"
        );
        assert_eq!(
            state.num_data_centers(),
            config.num_data_centers(),
            "state/config data-center count mismatch"
        );
        let n = config.num_data_centers();
        let j_count = config.num_job_classes();
        let mut h_cap = Grid::zeros(n, j_count);
        for (j, job) in config.job_classes().iter().enumerate() {
            for &dc in job.eligible() {
                let i = dc.index();
                h_cap[(i, j)] = job.max_process().min(queues.local(i, j));
            }
        }
        Self {
            config,
            state,
            queues,
            v,
            work: config.work_vector(),
            speeds: config.speed_vector(),
            powers: config
                .server_classes()
                .iter()
                .map(|c| c.active_power())
                // verify: allow(hot-path-alloc): exact-size collect from a slice iterator, once per slot instance
                .collect(),
            h_cap,
            total_capacity: state.total_capacity(config.server_classes()),
        }
    }

    /// The exact routing decision: for each job type, send up to `r^max`
    /// jobs to every eligible data center with `q_{i,j}(t) < Q_j(t)`,
    /// shortest local queues first, never exceeding the central backlog.
    /// Exact queue-length ties are broken by a slot-rotating preference so
    /// that an idle system spreads load across data centers instead of
    /// always favoring the lowest index. Routing counts are integral (jobs
    /// cannot be split, §III-C.2).
    pub fn solve_routing(&self) -> Grid {
        let n = self.config.num_data_centers();
        let j_count = self.config.num_job_classes();
        let rotation = (self.state.slot() as usize) % n.max(1);
        let mut routed = Grid::zeros(n, j_count);
        for (j, job) in self.config.job_classes().iter().enumerate() {
            let central = self.queues.central(j);
            let mut remaining = central.floor();
            if remaining <= 0.0 {
                continue;
            }
            // Eligible DCs with a strictly shorter local queue, shortest first.
            let mut targets: Vec<usize> = Vec::with_capacity(job.eligible().len());
            targets.extend(
                job.eligible()
                    .iter()
                    .map(|dc| dc.index())
                    .filter(|&i| self.queues.local(i, j) < central),
            );
            targets.sort_by(|&a, &b| {
                let qa = self.queues.local(a, j);
                let qb = self.queues.local(b, j);
                qa.total_cmp(&qb).then_with(|| {
                    let ra = (a + n - rotation) % n;
                    let rb = (b + n - rotation) % n;
                    ra.cmp(&rb)
                })
            });
            for i in targets {
                if remaining <= 0.0 {
                    break;
                }
                let give = job.max_route().min(remaining).floor();
                if give > 0.0 {
                    routed[(i, j)] = give;
                    remaining -= give;
                }
            }
        }
        routed
    }

    /// Solves the full slot problem exactly for `β = 0` (routing + per-DC
    /// greedy processing), returning the decision and its (14) value.
    pub fn solve_greedy(&self) -> SlotSolution {
        let mut decision = self.config.decision_zeros();
        decision.routed = self.solve_routing();
        let j_count = self.config.num_job_classes();
        let k_count = self.config.num_server_classes();
        let mut h_row = vec![0.0; j_count];
        let mut b_row = vec![0.0; k_count];
        let mut values = vec![0.0; j_count];
        for i in 0..self.config.num_data_centers() {
            for (j, value) in values.iter_mut().enumerate() {
                *value = self.queues.local(i, j);
            }
            let dc = self.state.data_center(i);
            price_aware_dispatch_dc(
                &values,
                &self.work,
                &self.speeds,
                &self.powers,
                dc.available_slice(),
                self.h_cap.row(i),
                dc.tariff(),
                self.v,
                &mut h_row,
                &mut b_row,
            );
            decision.processed.row_mut(i).copy_from_slice(&h_row);
            decision.busy.row_mut(i).copy_from_slice(&b_row);
        }
        let objective = self.objective_beta_zero(&decision);
        SlotSolution {
            decision,
            objective,
            solver: SolverChoice::Greedy,
        }
    }

    /// Solves the slot problem with fairness (`β > 0`) via Frank–Wolfe with
    /// the greedy linear-minimization oracle, then re-dispatches the final
    /// work at minimum power (a strict improvement that keeps feasibility).
    ///
    /// # Panics
    /// Panics if `beta` is negative or non-finite.
    pub fn solve_with_fairness(
        &self,
        beta: f64,
        fairness: &dyn FairnessFunction,
        options: FwOptions,
    ) -> SlotSolution {
        self.solve_with_fairness_observed(beta, fairness, options, &mut grefar_obs::NullObserver)
    }

    /// [`solve_with_fairness`](Self::solve_with_fairness) with span
    /// attribution: a profiling observer sees one `fw.iter` span per
    /// Frank–Wolfe iteration under the caller's current span.
    ///
    /// # Panics
    /// Panics if `beta` is negative or non-finite.
    pub fn solve_with_fairness_observed(
        &self,
        beta: f64,
        fairness: &dyn FairnessFunction,
        options: FwOptions,
        obs: &mut dyn grefar_obs::Observer,
    ) -> SlotSolution {
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be non-negative and finite"
        );
        let mut decision = self.config.decision_zeros();
        decision.routed = self.solve_routing();
        let (processed, busy, iterations, gap) =
            fw::solve_processing_fw_observed(self, beta, fairness, options, obs);
        decision.processed = processed;
        decision.busy = busy;
        let objective = crate::cost::drift_penalty_objective(
            self.config,
            self.state,
            self.queues,
            &decision,
            self.v,
            beta,
            fairness,
        );
        SlotSolution {
            decision,
            objective,
            solver: SolverChoice::FrankWolfe { iterations, gap },
        }
    }

    /// Re-dispatches `work_by_dc[i]` units of work per data center at
    /// minimum power, returning the busy matrix. Used to trim Frank–Wolfe's
    /// interior `b` iterates back to the supply frontier, and by external
    /// schedulers (e.g. the MPC baseline) that decide work first and
    /// dispatch servers second.
    ///
    /// # Panics
    /// Panics if `work_by_dc.len()` differs from the data-center count.
    pub fn min_power_busy(&self, work_by_dc: &[f64]) -> Grid {
        let n = self.config.num_data_centers();
        let k_count = self.config.num_server_classes();
        let mut busy = Grid::zeros(n, k_count);
        for (i, &dc_work) in work_by_dc.iter().enumerate() {
            let curve = PowerCurve::build(
                self.state.data_center(i).available_slice(),
                self.config.server_classes(),
            );
            let w = dc_work.min(curve.total_capacity());
            let b = curve.dispatch(w, self.config.server_classes());
            busy.row_mut(i).copy_from_slice(&b);
        }
        busy
    }

    /// The (14) objective for `β = 0` (energy only).
    fn objective_beta_zero(&self, decision: &Decision) -> f64 {
        crate::cost::drift_penalty_objective(
            self.config,
            self.state,
            self.queues,
            decision,
            self.v,
            0.0,
            &crate::fairness::QuadraticDeviation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![20.0])
            .data_center("b", vec![20.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                    .with_max_arrivals(10.0)
                    .with_max_route(6.0)
                    .with_max_process(20.0),
            )
            .build()
            .unwrap()
    }

    fn state(p0: f64, p1: f64) -> SystemState {
        SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![20.0], Tariff::flat(p0)),
                DataCenterState::new(vec![20.0], Tariff::flat(p1)),
            ],
        )
    }

    #[test]
    fn routing_prefers_shorter_local_queues() {
        let cfg = config();
        let st = state(0.5, 0.5);
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[10.0]); // Q = 10
                                                 // Put 3 jobs in DC 0's queue so DC 1 (empty) is preferred.
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 3.0;
        q.apply(&z, &[3.0]); // Q = 10 − 3 + 3 = 10, q(0,0) = 3

        let inst = SlotInstance::new(&cfg, &st, &q, 1.0);
        let routed = inst.solve_routing();
        // r^max = 6 to DC 1 first (q = 0), remaining 4 to DC 0 (q = 3 < 10).
        assert_eq!(routed[(1, 0)], 6.0);
        assert_eq!(routed[(0, 0)], 4.0);
    }

    #[test]
    fn routing_skips_longer_local_queues() {
        let cfg = config();
        let st = state(0.5, 0.5);
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 12.0;
        q.apply(&z, &[2.0]); // q(0,0) = 12, Q = 2
        let inst = SlotInstance::new(&cfg, &st, &q, 1.0);
        let routed = inst.solve_routing();
        assert_eq!(routed[(0, 0)], 0.0); // q(0,0)=12 ≥ Q=2: not a target
        assert_eq!(routed[(1, 0)], 2.0);
    }

    #[test]
    fn routing_never_exceeds_backlog() {
        let cfg = config();
        let st = state(0.5, 0.5);
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[3.0]);
        let inst = SlotInstance::new(&cfg, &st, &q, 1.0);
        let routed = inst.solve_routing();
        assert!(routed.sum() <= 3.0);
    }

    #[test]
    fn greedy_processes_when_price_low_enough() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 5.0;
        q.apply(&z, &[0.0]); // q(0,0) = 5

        // V=2: threshold value/work = q > V·φ·(p/s) = 2φ. q=5, d=1.
        let cheap = SlotInstance::new(&cfg, &state(0.1, 0.1), &q, 2.0)
            .solve_greedy()
            .decision;
        assert_eq!(cheap.processed[(0, 0)], 5.0); // 5 > 0.2: serve all

        let pricey = SlotInstance::new(&cfg, &state(9.0, 9.0), &q, 2.0)
            .solve_greedy()
            .decision;
        assert_eq!(pricey.processed[(0, 0)], 0.0); // 5 < 18: wait
    }

    #[test]
    fn greedy_objective_matches_cost_module() {
        let cfg = config();
        let st = state(0.3, 0.6);
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 4.0;
        z.routed[(1, 0)] = 2.0;
        q.apply(&z, &[5.0]);
        let inst = SlotInstance::new(&cfg, &st, &q, 1.5);
        let sol = inst.solve_greedy();
        let recomputed = crate::cost::drift_penalty_objective(
            &cfg,
            &st,
            &q,
            &sol.decision,
            1.5,
            0.0,
            &crate::fairness::QuadraticDeviation,
        );
        assert!((sol.objective - recomputed).abs() < 1e-12);
    }

    #[test]
    fn greedy_never_serves_phantom_work() {
        let cfg = config();
        let st = state(0.0, 0.0); // free energy: maximum serving incentive
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 3.0;
        q.apply(&z, &[0.0]);
        let d = SlotInstance::new(&cfg, &st, &q, 1.0)
            .solve_greedy()
            .decision;
        // Only 3 jobs exist in DC 0 even though h^max = 20.
        assert_eq!(d.processed[(0, 0)], 3.0);
        assert_eq!(d.processed[(1, 0)], 0.0);
        // Busy servers sized to actual work only.
        assert!((d.busy[(0, 0)] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn min_power_busy_respects_capacity() {
        let cfg = config();
        let st = state(0.5, 0.5);
        let q = QueueState::new(&cfg);
        let inst = SlotInstance::new(&cfg, &st, &q, 1.0);
        let busy = inst.min_power_busy(&[15.0, 25.0]);
        assert!((busy[(0, 0)] - 15.0).abs() < 1e-9);
        assert!((busy[(1, 0)] - 20.0).abs() < 1e-9); // clamped to availability
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_v() {
        let cfg = config();
        let st = state(0.5, 0.5);
        let q = QueueState::new(&cfg);
        let _ = SlotInstance::new(&cfg, &st, &q, -1.0);
    }
}
