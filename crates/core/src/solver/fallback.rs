//! Degraded-mode scheduling: per-slot solver budgets, the typed fallback
//! chain and the capacity-projected safe decision.
//!
//! The decision path must never panic mid-run: when the Frank–Wolfe solver
//! cannot converge inside an externally imposed iteration budget the
//! scheduler falls back to the exact greedy solution, and when a produced
//! decision fails the paper's feasibility invariants (outside
//! `strict-invariants`, where violations abort) it is *quarantined* and
//! replaced by its projection onto the feasible set. Every downgrade is
//! reported as a [`Degradation`], which renders as a `degraded.mode`
//! telemetry event:
//!
//! ```json
//! {"event":"degraded.mode","t":141,"reason":"solver_budget_exhausted","fw_iterations":2,"fw_gap":0.4}
//! ```
//!
//! Budgets are *iteration* budgets, never wall-clock deadlines: a
//! wall-clock cutoff would make decisions depend on machine speed, which
//! the determinism lint (`grefar-verify`) forbids in decision crates. A
//! deployment's per-slot time limit maps to an iteration cap through the
//! measured per-iteration cost (see `grefar-report` timing histograms).

use crate::invariant;
use crate::queue::QueueState;
use grefar_cluster::PowerCurve;
use grefar_obs::Event;
use grefar_types::{Decision, SystemConfig, SystemState};

/// A per-slot solver budget imposed from outside the scheduler (load
/// shedding, fault injection). See
/// [`Scheduler::set_solver_budget`](crate::Scheduler::set_solver_budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    max_fw_iters: usize,
}

impl SolverBudget {
    /// A budget of at most `max_fw_iters` Frank–Wolfe iterations per slot
    /// (clamped to at least 1 — a zero budget would leave no solver at
    /// all; the greedy fallback handles the rest).
    pub fn fw_iters(max_fw_iters: usize) -> Self {
        Self {
            max_fw_iters: max_fw_iters.max(1),
        }
    }

    /// The iteration cap.
    pub fn max_fw_iters(&self) -> usize {
        self.max_fw_iters
    }
}

/// Why a slot's decision was produced in degraded mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// Frank–Wolfe hit an imposed [`SolverBudget`] before reaching its gap
    /// tolerance; the exact greedy solution was used instead.
    SolverBudgetExhausted,
    /// The solver's decision violated a feasibility invariant and was
    /// replaced by its capacity projection (only outside
    /// `strict-invariants`, which aborts instead).
    InfeasibleRepaired,
    /// A data center holds backlog but has zero capacity this slot (full
    /// outage) — its queues cannot drain until servers return.
    DcOffline,
    /// The decision was computed on a *stale state estimate* (degraded
    /// feeds) and turned out infeasible against the true state; it was
    /// replaced by its capacity projection onto the truth (see
    /// [`crate::stale::decide_estimated`]).
    StaleStateRepaired,
}

impl DegradedReason {
    /// The `reason` field of `degraded.mode` events.
    pub fn label(&self) -> &'static str {
        match self {
            DegradedReason::SolverBudgetExhausted => "solver_budget_exhausted",
            DegradedReason::InfeasibleRepaired => "infeasible_repaired",
            DegradedReason::DcOffline => "dc_offline",
            DegradedReason::StaleStateRepaired => "stale_state_repaired",
        }
    }
}

/// One downgrade taken while producing a slot's decision, with the context
/// that explains it.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Why the decision degraded.
    pub reason: DegradedReason,
    /// The affected data center, when one is ([`DegradedReason::DcOffline`]).
    pub dc: Option<usize>,
    /// Iterations the abandoned Frank–Wolfe run performed.
    pub fw_iterations: Option<usize>,
    /// Its final duality gap (why it did not count as converged).
    pub fw_gap: Option<f64>,
    /// The violated invariant's kind ([`DegradedReason::InfeasibleRepaired`]).
    pub violation: Option<&'static str>,
}

impl Degradation {
    /// A budget-exhaustion record.
    pub fn budget_exhausted(fw_iterations: usize, fw_gap: f64) -> Self {
        Self {
            reason: DegradedReason::SolverBudgetExhausted,
            dc: None,
            fw_iterations: Some(fw_iterations),
            fw_gap: Some(fw_gap),
            violation: None,
        }
    }

    /// An infeasible-decision-repaired record.
    pub fn infeasible_repaired(violation: &'static str) -> Self {
        Self {
            reason: DegradedReason::InfeasibleRepaired,
            dc: None,
            fw_iterations: None,
            fw_gap: None,
            violation: Some(violation),
        }
    }

    /// A stale-estimate-decision-repaired record.
    pub fn stale_repaired(violation: &'static str) -> Self {
        Self {
            reason: DegradedReason::StaleStateRepaired,
            dc: None,
            fw_iterations: None,
            fw_gap: None,
            violation: Some(violation),
        }
    }

    /// An offline-data-center record.
    pub fn dc_offline(dc: usize) -> Self {
        Self {
            reason: DegradedReason::DcOffline,
            dc: Some(dc),
            fw_iterations: None,
            fw_gap: None,
            violation: None,
        }
    }

    /// Renders the record as a `degraded.mode` telemetry event for slot
    /// `slot`.
    pub fn event(&self, slot: u64) -> Event {
        let mut event = Event::new("degraded.mode")
            .field("t", slot)
            .field("reason", self.reason.label());
        if let Some(dc) = self.dc {
            event = event.field("dc", dc as u64);
        }
        if let Some(iters) = self.fw_iterations {
            event = event.field("fw_iterations", iters as u64);
        }
        if let Some(gap) = self.fw_gap {
            event = event.field("fw_gap", gap);
        }
        if let Some(kind) = self.violation {
            event = event.field("violation", kind);
        }
        event
    }
}

/// Data centers that hold local backlog but have zero processing capacity
/// this slot (a full outage): their queues cannot drain no matter what the
/// solver does. Pure detection — the decision itself needs no adjustment,
/// the solver already processes nothing there.
pub fn offline_dcs_with_backlog(
    config: &SystemConfig,
    state: &SystemState,
    queues: &QueueState,
) -> Vec<usize> {
    let classes = config.server_classes();
    (0..config.num_data_centers())
        .filter(|&i| {
            state.data_center(i).capacity(classes) <= 0.0
                && (0..config.num_job_classes()).any(|j| queues.local(i, j) > 0.0)
        })
        // verify: allow(hot-path-alloc): degraded-mode diagnostics only — this runs when a fallback fires, not on the steady-state slot path
        .collect()
}

/// Projects an arbitrary (possibly infeasible, possibly non-finite)
/// decision onto the feasible set of (4), (5), (11) and the backlog
/// discipline — the safe end of the fallback chain.
///
/// * non-finite or negative entries are zeroed;
/// * routing is clamped to `r^max`, restricted to eligible data centers
///   and capped by the integral central backlog;
/// * processing is clamped to `min(h^max, q_{i,j})` and scaled down
///   uniformly where it exceeds the data center's capacity;
/// * busy servers are re-dispatched at minimum power for the projected
///   work.
///
/// Projecting the zero decision yields the zero decision, which is always
/// feasible: the chain therefore terminates with a valid action for any
/// input.
pub fn project_decision(
    config: &SystemConfig,
    state: &SystemState,
    queues: &QueueState,
    raw: &Decision,
) -> Decision {
    let n = config.num_data_centers();
    let j_count = config.num_job_classes();
    let work = config.work_vector();
    let mut out = config.decision_zeros();

    for (j, job) in config.job_classes().iter().enumerate() {
        // Routing: eligible targets only, per-pair cap r^max, column total
        // capped by the whole jobs actually queued centrally.
        let mut remaining = queues.central(j).floor().max(0.0);
        for &dc in job.eligible() {
            let i = dc.index();
            let want = sanitize(raw.routed[(i, j)]).min(job.max_route()).floor();
            let give = want.min(remaining);
            if give > 0.0 {
                out.routed[(i, j)] = give;
                remaining -= give;
            }
        }
        // Processing: never above h^max or the local backlog.
        for &dc in job.eligible() {
            let i = dc.index();
            let cap = job.max_process().min(queues.local(i, j)).max(0.0);
            out.processed[(i, j)] = sanitize(raw.processed[(i, j)]).min(cap);
        }
    }

    // Capacity (11) and minimum-power dispatch of the busy servers.
    for i in 0..n {
        let dc_work: f64 = (0..j_count).map(|j| out.processed[(i, j)] * work[j]).sum();
        let curve = PowerCurve::build(
            state.data_center(i).available_slice(),
            config.server_classes(),
        );
        let capacity = curve.total_capacity();
        if dc_work > capacity && dc_work > 0.0 {
            let scale = capacity / dc_work;
            for j in 0..j_count {
                out.processed[(i, j)] *= scale;
            }
        }
        let dispatched: f64 = (0..j_count).map(|j| out.processed[(i, j)] * work[j]).sum();
        let busy = curve.dispatch(dispatched.min(capacity), config.server_classes());
        out.busy.row_mut(i).copy_from_slice(&busy);
    }
    out
}

/// Validates a decision against the paper invariants, returning the first
/// violation's kind if any. A thin wrapper over [`crate::invariant`] used
/// by the quarantine path.
///
/// # Errors
/// The first violated invariant's machine-readable kind (see
/// `InvariantViolation::kind`).
pub fn validate_decision(
    config: &SystemConfig,
    state: &SystemState,
    queues: &QueueState,
    decision: &Decision,
) -> Result<(), &'static str> {
    invariant::check_decision(config, state, decision)
        .and_then(|()| invariant::check_backlog_discipline(config, queues, decision))
        .map_err(|violation| violation.kind())
}

fn sanitize(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .data_center("b", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(4.0)
                    .with_max_process(10.0),
            )
            .build()
            .unwrap()
    }

    fn state(avail0: f64, avail1: f64) -> SystemState {
        SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![avail0], Tariff::flat(0.5)),
                DataCenterState::new(vec![avail1], Tariff::flat(0.5)),
            ],
        )
    }

    #[test]
    fn projection_of_garbage_is_feasible() {
        let cfg = config();
        let st = state(10.0, 10.0);
        let mut queues = QueueState::new(&cfg);
        let mut fill = cfg.decision_zeros();
        fill.routed[(0, 0)] = 3.0;
        queues.apply(&fill, &[6.0]); // Q = 6, q(0,0) = 3
        let mut raw = cfg.decision_zeros();
        raw.routed[(0, 0)] = f64::NAN;
        raw.routed[(1, 0)] = 99.0; // ineligible
        raw.processed[(0, 0)] = 99.0; // far above the local backlog
        raw.processed[(1, 0)] = f64::INFINITY; // non-finite: zeroed
        raw.busy[(0, 0)] = -5.0;
        let projected = project_decision(&cfg, &st, &queues, &raw);
        assert!(validate_decision(&cfg, &st, &queues, &projected).is_ok());
        assert_eq!(projected.routed[(0, 0)], 0.0); // NaN: zeroed
        assert_eq!(projected.routed[(1, 0)], 0.0);
        assert_eq!(projected.processed[(0, 0)], 3.0); // clamped to backlog
        assert_eq!(projected.processed[(1, 0)], 0.0);
    }

    #[test]
    fn projection_respects_capacity() {
        let cfg = config();
        let st = state(2.0, 10.0); // DC 0 capacity 2
        let mut queues = QueueState::new(&cfg);
        let mut fill = cfg.decision_zeros();
        fill.routed[(0, 0)] = 8.0;
        queues.apply(&fill, &[0.0]); // q(0,0) = 8
        let mut raw = cfg.decision_zeros();
        raw.processed[(0, 0)] = 8.0; // backlog allows it; capacity does not
        let projected = project_decision(&cfg, &st, &queues, &raw);
        assert!(validate_decision(&cfg, &st, &queues, &projected).is_ok());
        assert!((projected.processed[(0, 0)] - 2.0).abs() < 1e-9);
        assert!((projected.busy[(0, 0)] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn projection_of_zero_is_zero_and_feasible() {
        let cfg = config();
        let st = state(0.0, 0.0); // total outage
        let queues = QueueState::new(&cfg);
        let zero = cfg.decision_zeros();
        let projected = project_decision(&cfg, &st, &queues, &zero);
        assert!(validate_decision(&cfg, &st, &queues, &projected).is_ok());
        assert_eq!(projected.routed.sum(), 0.0);
        assert_eq!(projected.processed.sum(), 0.0);
        assert_eq!(projected.busy.sum(), 0.0);
    }

    #[test]
    fn offline_detection_requires_backlog() {
        let cfg = config();
        let st = state(0.0, 10.0);
        let mut queues = QueueState::new(&cfg);
        assert!(offline_dcs_with_backlog(&cfg, &st, &queues).is_empty());
        let mut fill = cfg.decision_zeros();
        fill.routed[(0, 0)] = 2.0;
        queues.apply(&fill, &[2.0]);
        assert_eq!(offline_dcs_with_backlog(&cfg, &st, &queues), vec![0]);
    }

    #[test]
    fn degradation_events_carry_context() {
        let e = Degradation::budget_exhausted(2, 0.5).event(7);
        let json = e.to_json();
        assert!(
            json.contains("\"reason\":\"solver_budget_exhausted\""),
            "{json}"
        );
        assert!(json.contains("\"fw_iterations\":2"), "{json}");
        let e = Degradation::dc_offline(1).event(3);
        assert!(e.to_json().contains("\"dc\":1"));
        let e = Degradation::infeasible_repaired("route_bound").event(0);
        assert!(e.to_json().contains("\"violation\":\"route_bound\""));
        assert_eq!(
            DegradedReason::InfeasibleRepaired.label(),
            "infeasible_repaired"
        );
    }

    #[test]
    fn budget_clamps_to_one() {
        assert_eq!(SolverBudget::fw_iters(0).max_fw_iters(), 1);
        assert_eq!(SolverBudget::fw_iters(9).max_fw_iters(), 9);
    }

    /// Job class eligible on both DCs so backlog can build at each site.
    fn two_site_config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .data_center("b", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(4.0)
                    .with_max_process(10.0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn every_dc_offline_is_detected_and_projection_serves_nothing() {
        let cfg = two_site_config();
        let st = state(0.0, 0.0); // fleet-wide outage
        let mut queues = QueueState::new(&cfg);
        let mut fill = cfg.decision_zeros();
        fill.routed[(0, 0)] = 2.0;
        fill.routed[(1, 0)] = 3.0;
        queues.apply(&fill, &[5.0]); // backlog stranded at both sites
        assert_eq!(offline_dcs_with_backlog(&cfg, &st, &queues), vec![0, 1]);
        for dc in [0, 1] {
            let json = Degradation::dc_offline(dc).event(0).to_json();
            assert!(json.contains("\"reason\":\"dc_offline\""), "{json}");
            assert!(json.contains(&format!("\"dc\":{dc}")), "{json}");
        }
        // A scheduler that tries to serve everything anyway must be
        // projected down to zero processing: there is no capacity.
        let mut raw = cfg.decision_zeros();
        raw.processed[(0, 0)] = 2.0;
        raw.processed[(1, 0)] = 3.0;
        raw.busy[(0, 0)] = 10.0;
        raw.busy[(1, 0)] = 10.0;
        let projected = project_decision(&cfg, &st, &queues, &raw);
        assert!(validate_decision(&cfg, &st, &queues, &projected).is_ok());
        assert_eq!(projected.processed.sum(), 0.0);
        assert_eq!(projected.busy.sum(), 0.0);
    }

    #[test]
    fn zero_capacity_slot_clamps_processing_not_routing() {
        let cfg = config();
        let st = state(0.0, 10.0); // DC 0 dark, DC 1 healthy
        let mut queues = QueueState::new(&cfg);
        let mut fill = cfg.decision_zeros();
        fill.routed[(0, 0)] = 3.0;
        queues.apply(&fill, &[6.0]); // Q = 6, q(0,0) = 3
        let mut raw = cfg.decision_zeros();
        raw.routed[(0, 0)] = 2.0; // routing into a dark DC is legal (4)
        raw.processed[(0, 0)] = 3.0; // backlog allows it; capacity is 0
        let projected = project_decision(&cfg, &st, &queues, &raw);
        assert!(validate_decision(&cfg, &st, &queues, &projected).is_ok());
        assert_eq!(projected.processed[(0, 0)], 0.0);
        assert_eq!(projected.busy.sum(), 0.0);
        assert_eq!(projected.routed[(0, 0)], 2.0); // queued for recovery
    }

    #[test]
    fn budget_exhausted_at_slot_zero_reports_reason_and_stays_feasible() {
        use crate::{GreFar, GreFarParams, Scheduler};
        use grefar_obs::JsonlSink;
        // Two accounts so the fairness quadratic couples the problem and a
        // one-iteration Frank–Wolfe budget cannot reach the gap tolerance.
        let cfg = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![30.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 1)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .build()
            .unwrap();
        let mut queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 8.0;
        z.routed[(0, 1)] = 2.0;
        queues.apply(&z, &[0.0, 0.0]);
        let st = SystemState::new(0, vec![DataCenterState::new(vec![30.0], Tariff::flat(0.2))]);
        let mut g = GreFar::new(&cfg, GreFarParams::new(1.0, 500.0)).unwrap();
        g.set_solver_budget(Some(SolverBudget::fw_iters(1)));
        let mut sink = JsonlSink::new(Vec::new());
        let decision = g.decide_observed(&st, &queues, &mut sink);
        assert!(validate_decision(&cfg, &st, &queues, &decision).is_ok());
        let stream = String::from_utf8(sink.into_inner()).unwrap();
        let degraded: Vec<&str> = stream
            .lines()
            .filter(|l| l.contains("\"event\":\"degraded.mode\""))
            .collect();
        assert_eq!(degraded.len(), 1, "{stream}");
        assert!(
            degraded[0].contains("\"reason\":\"solver_budget_exhausted\""),
            "{}",
            degraded[0]
        );
        assert!(degraded[0].contains("\"t\":0"), "{}", degraded[0]);
    }
}
