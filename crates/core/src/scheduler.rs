//! The online-scheduler interface.

use crate::queue::QueueState;
use crate::solver::fallback::SolverBudget;
use grefar_obs::Observer;
use grefar_types::{Decision, SystemState};

/// An online scheduler: at the beginning of every slot it observes the data
/// center state `x(t)` and the queues `Θ(t)` — and nothing else, in
/// particular not the current slot's arrivals or any future information —
/// and returns the action `z(t)` (§III-C.2).
///
/// Implementations may keep internal state (hence `&mut self`), e.g. for
/// learning or warm-started solvers; [`GreFar`](crate::GreFar) itself is
/// memoryless beyond the queues it is shown.
pub trait Scheduler: Send {
    /// A short name for reports ("GreFar(V=7.5, beta=100)", "Always", …).
    fn name(&self) -> String;

    /// Chooses the action for the slot `state.slot()`.
    fn decide(&mut self, state: &SystemState, queues: &QueueState) -> Decision;

    /// Like [`decide`](Scheduler::decide), but with a telemetry sink the
    /// implementation may emit solver-internal events to (see the
    /// `grefar-obs` event schema). The default ignores the observer, so
    /// plain schedulers need not change; instrumented ones
    /// ([`GreFar`](crate::GreFar), the simulator's MPC baseline) override
    /// it and must return exactly what `decide` would.
    fn decide_observed(
        &mut self,
        state: &SystemState,
        queues: &QueueState,
        obs: &mut dyn Observer,
    ) -> Decision {
        let _ = obs;
        self.decide(state, queues)
    }

    /// Imposes (or with `None` lifts) a per-slot solver budget for all
    /// subsequent decisions — how a harness models slot deadlines under
    /// load (fault injection, load shedding). Schedulers without an
    /// iterative solver have nothing to budget; the default ignores the
    /// call. [`GreFar`](crate::GreFar) caps its Frank–Wolfe iterations and
    /// falls back to the exact greedy solution when the budget is
    /// exhausted (emitting a `degraded.mode` event).
    fn set_solver_budget(&mut self, budget: Option<SolverBudget>) {
        let _ = budget;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &mut dyn Scheduler) {}
        fn _boxed(_: Box<dyn Scheduler>) {}
    }
}
