//! Stale-state scheduling: the decision entry point for estimated states.
//!
//! When the feed layer (`grefar-ingest`) degrades, the scheduler no longer
//! sees the true `x(t)` but an estimate `x̂(t)` with per-field staleness.
//! Acting on `x̂(t)` is fine for the *economic* part of the decision — a
//! stale price just steers cost — but the *physical* part (capacity,
//! backlog discipline) must hold against the truth: a decision sized for
//! yesterday's availability can overcommit today's servers.
//!
//! [`decide_estimated`] therefore runs the scheduler on the estimate and
//! then validates the resulting decision against the **true** state,
//! repairing it by capacity projection when it is infeasible
//! ([`DegradedReason::StaleStateRepaired`]). With a fresh estimate the path
//! collapses to plain [`Scheduler::decide_observed`] — no extra telemetry,
//! no behavioral difference — which is what keeps perfect-feed runs
//! byte-identical to runs without the feed layer.

use crate::queue::QueueState;
use crate::scheduler::Scheduler;
use crate::solver::fallback::{project_decision, validate_decision, Degradation};
use grefar_ingest::EstimatedState;
use grefar_obs::{Event, Observer};
use grefar_types::{Decision, SystemConfig, SystemState};

/// Mean absolute error of the estimated per-data-center price against the
/// truth — the headline estimation-error metric of `state.stale` telemetry
/// (price is the input GreFar's cost actually reads).
pub fn price_mae(estimate: &SystemState, truth: &SystemState) -> f64 {
    let n = truth.num_data_centers();
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|i| (estimate.data_center(i).price() - truth.data_center(i).price()).abs())
        .sum::<f64>()
        / n as f64
}

/// One slot of stale-aware scheduling: decide on the estimate `x̂(t)`,
/// guarantee feasibility against the truth `x(t)`.
///
/// * Emits a `state.stale` event (slot, stale field count, max age, price
///   MAE) and bumps the `state.stale_slots` counter whenever the estimate
///   is not fully fresh.
/// * Runs [`Scheduler::decide_observed`] on the estimated state.
/// * Validates the decision against the *true* state and queues; on any
///   violated invariant the decision is replaced by its projection onto
///   the true feasible set and a `degraded.mode` event with reason
///   `stale_state_repaired` is emitted.
///
/// `truth` must describe the same slot and fleet shape as the estimate.
/// The returned decision is always feasible for the true state (the
/// projection of any input is — see
/// [`project_decision`](crate::solver::fallback::project_decision)).
pub fn decide_estimated(
    scheduler: &mut dyn Scheduler,
    config: &SystemConfig,
    estimated: &EstimatedState,
    truth: &SystemState,
    queues: &QueueState,
    obs: &mut dyn Observer,
) -> Decision {
    if estimated.is_fresh() {
        // Perfect feeds: exactly the plain path, bit for bit.
        return scheduler.decide_observed(truth, queues, obs);
    }

    if obs.enabled() {
        obs.record_event(
            Event::new("state.stale")
                .field("t", truth.slot())
                .field("stale_fields", estimated.stale_field_count() as u64)
                .field("max_age", estimated.max_age())
                .field("price_mae", price_mae(estimated.state(), truth)),
        );
        obs.add_counter("state.stale_slots", 1);
    }

    let decision = scheduler.decide_observed(estimated.state(), queues, obs);
    match validate_decision(config, truth, queues, &decision) {
        Ok(()) => decision,
        Err(kind) => {
            let repaired = project_decision(config, truth, queues, &decision);
            if obs.enabled() {
                obs.record_event(Degradation::stale_repaired(kind).event(truth.slot()));
                obs.add_counter("state.stale_repairs", 1);
            }
            debug_assert!(
                validate_decision(config, truth, queues, &repaired).is_ok(),
                "projection must be feasible"
            );
            repaired
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreFar, GreFarParams};
    use grefar_obs::{MemoryObserver, NullObserver};
    use grefar_types::{
        DataCenterId, DataCenterState, JobClass, ServerClass, SystemConfig, Tariff,
    };

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![20.0])
            .data_center("b", vec![20.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0)
                    .with_max_arrivals(8.0)
                    .with_max_route(16.0)
                    .with_max_process(20.0),
            )
            .build()
            .unwrap()
    }

    fn state(slot: u64, avail: [f64; 2], price: [f64; 2]) -> SystemState {
        SystemState::new(
            slot,
            vec![
                DataCenterState::new(vec![avail[0]], Tariff::flat(price[0])),
                DataCenterState::new(vec![avail[1]], Tariff::flat(price[1])),
            ],
        )
    }

    #[test]
    fn fresh_estimate_matches_plain_path_exactly() {
        let cfg = config();
        let truth = state(1, [20.0, 20.0], [0.3, 0.9]);
        let mut queues = QueueState::new(&cfg);
        queues.apply(&cfg.decision_zeros(), &[6.0]);
        let est = EstimatedState::fresh(truth.clone(), vec![6.0]);

        let mut a = GreFar::new(&cfg, GreFarParams::new(4.0, 0.0)).unwrap();
        let mut b = GreFar::new(&cfg, GreFarParams::new(4.0, 0.0)).unwrap();
        let mut obs = MemoryObserver::new();
        let via_stale = decide_estimated(&mut a, &cfg, &est, &truth, &queues, &mut obs);
        let plain = b.decide(&truth, &queues);
        assert_eq!(via_stale, plain);
        assert_eq!(obs.event_count("state.stale"), 0);
        assert_eq!(obs.counter("state.stale_slots"), 0);
    }

    #[test]
    fn stale_overcommit_is_repaired_against_truth() {
        let cfg = config();
        // The estimate believes both DCs are fully up; in truth DC 0 lost
        // every server. A backlog sits at DC 0.
        let truth = state(5, [0.0, 20.0], [0.3, 0.9]);
        let estimate = state(5, [20.0, 20.0], [0.1, 0.9]);
        let mut queues = QueueState::new(&cfg);
        let mut fill = cfg.decision_zeros();
        fill.routed[(0, 0)] = 8.0;
        queues.apply(&fill, &[8.0]);

        // Build an EstimatedState by hand marking the fields stale.
        let est = EstimatedState::new(
            estimate,
            vec![
                grefar_ingest::FieldEstimate {
                    age: 3,
                    provenance: grefar_ingest::Provenance::HeldLast,
                },
                grefar_ingest::FieldEstimate::fresh(),
            ],
            vec![
                grefar_ingest::FieldEstimate {
                    age: 3,
                    provenance: grefar_ingest::Provenance::HeldLast,
                },
                grefar_ingest::FieldEstimate::fresh(),
            ],
            vec![0.0],
            grefar_ingest::FieldEstimate::fresh(),
        );

        let mut sched = GreFar::new(&cfg, GreFarParams::new(4.0, 0.0)).unwrap();
        let mut obs = MemoryObserver::new();
        let decision = decide_estimated(&mut sched, &cfg, &est, &truth, &queues, &mut obs);
        // The repaired decision is feasible for the true (outage) state.
        assert!(validate_decision(&cfg, &truth, &queues, &decision).is_ok());
        assert_eq!(decision.processed[(0, 0)], 0.0, "no capacity at DC 0");
        assert_eq!(obs.event_count("state.stale"), 1);
        assert_eq!(obs.event_count("degraded.mode"), 1);
        assert_eq!(obs.counter("state.stale_repairs"), 1);
    }

    #[test]
    fn stale_but_feasible_decision_passes_through() {
        let cfg = config();
        // Only the price is stale; availability is correct, so the decision
        // stays feasible and must NOT be repaired (cost may differ, physics
        // does not).
        let truth = state(3, [20.0, 20.0], [0.9, 0.3]);
        let estimate = state(3, [20.0, 20.0], [0.3, 0.9]);
        let mut queues = QueueState::new(&cfg);
        queues.apply(&cfg.decision_zeros(), &[6.0]);
        let est = EstimatedState::new(
            estimate.clone(),
            vec![
                grefar_ingest::FieldEstimate {
                    age: 2,
                    provenance: grefar_ingest::Provenance::HeldLast,
                },
                grefar_ingest::FieldEstimate::fresh(),
            ],
            vec![grefar_ingest::FieldEstimate::fresh(); 2],
            vec![6.0],
            grefar_ingest::FieldEstimate::fresh(),
        );
        let mut sched = GreFar::new(&cfg, GreFarParams::new(4.0, 0.0)).unwrap();
        let mut on_estimate = GreFar::new(&cfg, GreFarParams::new(4.0, 0.0)).unwrap();
        let mut obs = MemoryObserver::new();
        let decision = decide_estimated(&mut sched, &cfg, &est, &truth, &queues, &mut obs);
        let mut null = NullObserver;
        let wanted = on_estimate.decide_observed(&estimate, &queues, &mut null);
        assert_eq!(decision, wanted, "feasible stale decision is untouched");
        assert_eq!(obs.event_count("state.stale"), 1);
        assert_eq!(obs.event_count("degraded.mode"), 0);
        // price_mae reflects the swap: |0.3-0.9| and |0.9-0.3| average 0.6.
        assert!((price_mae(&estimate, &truth) - 0.6).abs() < 1e-12);
    }
}
