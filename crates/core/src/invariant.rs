//! Runtime checks of the paper's feasibility and stability invariants.
//!
//! Theorem 1 (§V-B) holds only if every per-slot action is feasible —
//! routing/processing within their bounds (4)–(5), the capacity
//! constraint (11) — and the queues follow the dynamics (12)–(13)
//! exactly. This module makes those assumptions *checkable at runtime*:
//!
//! * [`check_decision`] — one action against the static constraints,
//! * [`check_backlog_discipline`] — GreFar's own stronger discipline
//!   (never route more jobs than queued, never serve phantom work),
//! * [`check_queue_update`] — one queue transition against (12)–(13),
//! * [`check_queue_bound`] — the Theorem 1(a) bound `q ≤ V·C3/δ`
//!   (computed by [`TheoryBounds`](crate::theory::TheoryBounds)) on an
//!   admissible trace.
//!
//! The checkers are ordinary functions, always compiled and directly
//! testable. *Automatic enforcement* — running them after every
//! [`GreFar::decide`](crate::GreFar) and every simulator queue update,
//! emitting a structured `invariant.violation` telemetry event and then
//! aborting — is gated behind the `strict-invariants` cargo feature so
//! the default build keeps its exact hot-path cost (see DESIGN.md
//! §"Correctness tooling").

use grefar_obs::Event;
use grefar_types::{Decision, SystemConfig, SystemState};

use crate::queue::QueueState;

/// Numerical slack for feasibility comparisons: decisions come out of
/// floating-point solvers, so constraints hold up to rounding.
pub const TOL: f64 = 1e-6;

/// Whether automatic enforcement is compiled in.
pub const ENFORCED: bool = cfg!(feature = "strict-invariants");

/// A detected violation of a paper invariant.
///
/// `Display` renders a full sentence naming the constraint and the
/// offending indices/values; [`event`](Self::event) renders the same
/// information as a structured `grefar-obs` event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// A decision entry is negative or non-finite.
    NotFiniteNonnegative {
        /// Which matrix (`"routed"`, `"processed"`, `"busy"`).
        field: &'static str,
    },
    /// Routing above `r^max_j` (4) or to an ineligible data center.
    RouteBound {
        /// Data center.
        i: usize,
        /// Job class.
        j: usize,
        /// The routed amount.
        routed: f64,
        /// The bound it broke (0 for ineligible pairs).
        bound: f64,
    },
    /// Processing above `h^max_j` (5).
    ProcessBound {
        /// Data center.
        i: usize,
        /// Job class.
        j: usize,
        /// The processed amount.
        processed: f64,
        /// The bound `h^max_j`.
        bound: f64,
    },
    /// More servers busy than available, `b_{i,k} > n_{i,k}(t)`.
    Availability {
        /// Data center.
        i: usize,
        /// Server class.
        k: usize,
        /// Busy servers.
        busy: f64,
        /// Available servers.
        available: f64,
    },
    /// Work served beyond switched-on supply — constraint (11).
    Capacity {
        /// Data center.
        i: usize,
        /// Work demanded, `Σ_j h_{i,j} d_j`.
        demand: f64,
        /// Supply switched on, `Σ_k b_{i,k} s_k`.
        supply: f64,
    },
    /// Routed more jobs than the central queue holds.
    RouteBacklog {
        /// Job class.
        j: usize,
        /// Total routed, `Σ_i r_{i,j}`.
        routed: f64,
        /// Central backlog `Q_j`.
        backlog: f64,
    },
    /// Served more jobs than the local queue holds (phantom work).
    ProcessBacklog {
        /// Data center.
        i: usize,
        /// Job class.
        j: usize,
        /// Served amount.
        processed: f64,
        /// Local backlog `q_{i,j}`.
        backlog: f64,
    },
    /// A queue transition disagrees with the dynamics (12)–(13).
    QueueDynamics {
        /// `"central"` or `"local"`.
        which: &'static str,
        /// Data center (0 for central queues).
        i: usize,
        /// Job class.
        j: usize,
        /// Queue length found.
        got: f64,
        /// Queue length (12)–(13) demand.
        expected: f64,
    },
    /// A queue exceeded the Theorem 1(a) bound on an admissible trace.
    QueueBound {
        /// Largest queue length observed.
        observed: f64,
        /// The bound `V·C3/δ`.
        bound: f64,
    },
    /// The job-conservation ledger disagrees with the realized queue
    /// total (see [`JobLedger`](crate::JobLedger)).
    Ledger {
        /// The queue total actually observed.
        queued: f64,
        /// The total the ledger's conservation identity predicts.
        expected: f64,
        /// The signed discrepancy `queued − expected`.
        balance: f64,
    },
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotFiniteNonnegative { field } => {
                write!(
                    f,
                    "decision matrix `{field}` has a negative or non-finite entry"
                )
            }
            Self::RouteBound {
                i,
                j,
                routed,
                bound,
            } => write!(
                f,
                "routed r[{i},{j}] = {routed} exceeds the bound {bound} of (4) \
                 (0 means the pair is ineligible)"
            ),
            Self::ProcessBound {
                i,
                j,
                processed,
                bound,
            } => write!(
                f,
                "processed h[{i},{j}] = {processed} exceeds h^max = {bound} of (5)"
            ),
            Self::Availability {
                i,
                k,
                busy,
                available,
            } => write!(
                f,
                "busy b[{i},{k}] = {busy} exceeds availability n = {available}"
            ),
            Self::Capacity { i, demand, supply } => write!(
                f,
                "data center {i} serves {demand} units of work on {supply} units of \
                 supply — capacity constraint (11) violated"
            ),
            Self::RouteBacklog { j, routed, backlog } => write!(
                f,
                "routed {routed} jobs of class {j} with only {backlog} queued centrally"
            ),
            Self::ProcessBacklog {
                i,
                j,
                processed,
                backlog,
            } => write!(
                f,
                "served {processed} jobs of class {j} in data center {i} with only \
                 {backlog} queued locally (phantom work)"
            ),
            Self::QueueDynamics {
                which,
                i,
                j,
                got,
                expected,
            } => write!(
                f,
                "{which} queue ({i},{j}) is {got} after the update, but (12)-(13) \
                 give {expected}"
            ),
            Self::QueueBound { observed, bound } => write!(
                f,
                "queue length {observed} exceeds the Theorem 1(a) bound {bound} on an \
                 admissible trace"
            ),
            Self::Ledger {
                queued,
                expected,
                balance,
            } => write!(
                f,
                "queues hold {queued} jobs but the conservation ledger expects \
                 {expected} (balance {balance})"
            ),
        }
    }
}

impl InvariantViolation {
    /// A short machine-readable kind label for telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NotFiniteNonnegative { .. } => "not_finite_nonnegative",
            Self::RouteBound { .. } => "route_bound",
            Self::ProcessBound { .. } => "process_bound",
            Self::Availability { .. } => "availability",
            Self::Capacity { .. } => "capacity",
            Self::RouteBacklog { .. } => "route_backlog",
            Self::ProcessBacklog { .. } => "process_backlog",
            Self::QueueDynamics { .. } => "queue_dynamics",
            Self::QueueBound { .. } => "queue_bound",
            Self::Ledger { .. } => "ledger",
        }
    }

    /// Renders the violation as a structured `invariant.violation` event.
    pub fn event(&self, slot: u64) -> Event {
        Event::new("invariant.violation")
            .field("t", slot)
            .field("kind", self.kind())
            .field("detail", self.to_string())
    }
}

/// Checks one action against the static per-slot constraints: finite and
/// non-negative entries, routing bounds and eligibility (4), processing
/// bounds (5), server availability, and the capacity constraint (11).
///
/// # Errors
/// The first violated constraint, in the order above.
///
/// # Panics
/// Panics if the decision's shape mismatches the configuration.
pub fn check_decision(
    config: &SystemConfig,
    state: &SystemState,
    decision: &Decision,
) -> Result<(), InvariantViolation> {
    let n = config.num_data_centers();
    let j_count = config.num_job_classes();
    let k_count = config.num_server_classes();
    assert_eq!(decision.num_data_centers(), n, "decision shape mismatch");
    assert_eq!(decision.num_job_types(), j_count, "decision shape mismatch");
    assert_eq!(
        decision.num_server_classes(),
        k_count,
        "decision shape mismatch"
    );

    for (field, grid) in [
        ("routed", &decision.routed),
        ("processed", &decision.processed),
        ("busy", &decision.busy),
    ] {
        if !grid.is_finite() || grid.as_slice().iter().any(|&v| v < 0.0) {
            return Err(InvariantViolation::NotFiniteNonnegative { field });
        }
    }

    for (j, job) in config.job_classes().iter().enumerate() {
        for i in 0..n {
            let eligible = job.is_eligible(grefar_types::DataCenterId::new(i));
            let r = decision.routed[(i, j)];
            let r_bound = if eligible { job.max_route() } else { 0.0 };
            if r > r_bound + TOL {
                return Err(InvariantViolation::RouteBound {
                    i,
                    j,
                    routed: r,
                    bound: r_bound,
                });
            }
            let h = decision.processed[(i, j)];
            let h_bound = if eligible { job.max_process() } else { 0.0 };
            if h > h_bound + TOL {
                return Err(InvariantViolation::ProcessBound {
                    i,
                    j,
                    processed: h,
                    bound: h_bound,
                });
            }
        }
    }

    let work = config.work_vector();
    let speeds = config.speed_vector();
    for i in 0..n {
        let dc = state.data_center(i);
        for k in 0..k_count {
            let b = decision.busy[(i, k)];
            let avail = dc.available(k);
            if b > avail + TOL {
                return Err(InvariantViolation::Availability {
                    i,
                    k,
                    busy: b,
                    available: avail,
                });
            }
        }
        let demand = decision.work_processed(i, &work);
        let supply = decision.supply(i, &speeds);
        if demand > supply + TOL * (1.0 + supply.abs()) {
            return Err(InvariantViolation::Capacity { i, demand, supply });
        }
    }
    Ok(())
}

/// Checks GreFar's backlog discipline, which is *stronger* than the
/// paper's constraints (the `max[·, 0]` dynamics tolerate over-routing):
/// never route more jobs of a class than its central queue holds, never
/// serve more than the local queue holds.
///
/// # Errors
/// The first queue whose backlog is exceeded.
pub fn check_backlog_discipline(
    config: &SystemConfig,
    queues: &QueueState,
    decision: &Decision,
) -> Result<(), InvariantViolation> {
    let n = config.num_data_centers();
    for j in 0..config.num_job_classes() {
        let routed = decision.routed.col_sum(j);
        let backlog = queues.central(j);
        if routed > backlog + TOL {
            return Err(InvariantViolation::RouteBacklog { j, routed, backlog });
        }
        for i in 0..n {
            let processed = decision.processed[(i, j)];
            let local = queues.local(i, j);
            if processed > local + TOL {
                return Err(InvariantViolation::ProcessBacklog {
                    i,
                    j,
                    processed,
                    backlog: local,
                });
            }
        }
    }
    Ok(())
}

/// Checks that `next` is exactly the queue state that the dynamics
/// (12)–(13) produce from `prev` under `decision` and `arrivals`.
///
/// # Errors
/// The first queue entry that disagrees beyond [`TOL`].
///
/// # Panics
/// Panics if shapes mismatch the configuration.
pub fn check_queue_update(
    config: &SystemConfig,
    prev: &QueueState,
    decision: &Decision,
    arrivals: &[f64],
    next: &QueueState,
) -> Result<(), InvariantViolation> {
    let n = config.num_data_centers();
    let j_count = config.num_job_classes();
    assert_eq!(arrivals.len(), j_count, "arrival vector mismatch");
    for (j, &arrived) in arrivals.iter().enumerate() {
        let expected = (prev.central(j) - decision.routed.col_sum(j)).max(0.0) + arrived;
        let got = next.central(j);
        if !grefar_types::approx_eq(got, expected, TOL) {
            return Err(InvariantViolation::QueueDynamics {
                which: "central",
                i: 0,
                j,
                got,
                expected,
            });
        }
        for i in 0..n {
            let expected =
                (prev.local(i, j) - decision.processed[(i, j)]).max(0.0) + decision.routed[(i, j)];
            let got = next.local(i, j);
            if !grefar_types::approx_eq(got, expected, TOL) {
                return Err(InvariantViolation::QueueDynamics {
                    which: "local",
                    i,
                    j,
                    got,
                    expected,
                });
            }
        }
    }
    Ok(())
}

/// Checks the Theorem 1(a) queue bound: every queue length at most
/// `bound = V·C3/δ` (compute it with
/// [`TheoryBounds::queue_bound`](crate::theory::TheoryBounds::queue_bound)
/// from a certified slackness `δ`).
///
/// # Errors
/// [`InvariantViolation::QueueBound`] when the largest queue exceeds the
/// bound (beyond [`TOL`]).
pub fn check_queue_bound(queues: &QueueState, bound: f64) -> Result<(), InvariantViolation> {
    let observed = queues.max_len();
    if observed > bound + TOL {
        return Err(InvariantViolation::QueueBound { observed, bound });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .data_center("b", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(2.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(4.0)
                    .with_max_route(5.0)
                    .with_max_process(6.0),
            )
            .build()
            .unwrap()
    }

    fn state() -> SystemState {
        SystemState::new(
            3,
            vec![
                DataCenterState::new(vec![10.0], Tariff::flat(0.5)),
                DataCenterState::new(vec![10.0], Tariff::flat(0.5)),
            ],
        )
    }

    #[test]
    fn zero_decision_is_feasible() {
        let cfg = config();
        assert_eq!(
            check_decision(&cfg, &state(), &cfg.decision_zeros()),
            Ok(())
        );
    }

    #[test]
    fn detects_negative_entries() {
        let cfg = config();
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = -1.0;
        assert!(matches!(
            check_decision(&cfg, &state(), &z),
            Err(InvariantViolation::NotFiniteNonnegative { field: "processed" })
        ));
    }

    #[test]
    fn detects_route_bound_and_ineligibility() {
        let cfg = config();
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 5.5; // r^max = 5
        assert!(matches!(
            check_decision(&cfg, &state(), &z),
            Err(InvariantViolation::RouteBound { i: 0, j: 0, .. })
        ));
        let mut z = cfg.decision_zeros();
        z.routed[(1, 0)] = 1.0; // DC 1 not eligible
        assert!(matches!(
            check_decision(&cfg, &state(), &z),
            Err(InvariantViolation::RouteBound { i: 1, j: 0, bound, .. }) if bound == 0.0
        ));
    }

    #[test]
    fn detects_capacity_violation() {
        let cfg = config();
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 3.0; // demand 6 units of work
        z.busy[(0, 0)] = 2.0; // supply 2
        assert!(matches!(
            check_decision(&cfg, &state(), &z),
            Err(InvariantViolation::Capacity { i: 0, .. })
        ));
        z.busy[(0, 0)] = 6.0; // supply 6: feasible
        assert_eq!(check_decision(&cfg, &state(), &z), Ok(()));
    }

    #[test]
    fn detects_overcommitted_servers() {
        let cfg = config();
        let mut z = cfg.decision_zeros();
        z.busy[(0, 0)] = 11.0; // only 10 available
        assert!(matches!(
            check_decision(&cfg, &state(), &z),
            Err(InvariantViolation::Availability { i: 0, k: 0, .. })
        ));
    }

    #[test]
    fn backlog_discipline_flags_phantom_work() {
        let cfg = config();
        let queues = QueueState::new(&cfg); // all empty
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 1.0;
        assert!(matches!(
            check_backlog_discipline(&cfg, &queues, &z),
            Err(InvariantViolation::ProcessBacklog { i: 0, j: 0, .. })
        ));
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 1.0;
        assert!(matches!(
            check_backlog_discipline(&cfg, &queues, &z),
            Err(InvariantViolation::RouteBacklog { j: 0, .. })
        ));
    }

    #[test]
    fn queue_update_consistency() {
        let cfg = config();
        let mut prev = QueueState::new(&cfg);
        prev.apply(&cfg.decision_zeros(), &[4.0]);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 2.0;
        let mut next = prev.clone();
        next.apply(&z, &[1.0]);
        assert_eq!(check_queue_update(&cfg, &prev, &z, &[1.0], &next), Ok(()));
        // A tampered state is caught.
        let bad = QueueState::new(&cfg);
        assert!(matches!(
            check_queue_update(&cfg, &prev, &z, &[1.0], &bad),
            Err(InvariantViolation::QueueDynamics { .. })
        ));
    }

    #[test]
    fn queue_bound_check() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[4.0]);
        assert_eq!(check_queue_bound(&q, 10.0), Ok(()));
        let v = check_queue_bound(&q, 3.0).unwrap_err();
        assert!(matches!(v, InvariantViolation::QueueBound { .. }));
        assert_eq!(v.kind(), "queue_bound");
        let e = v.event(3);
        assert_eq!(e.name(), "invariant.violation");
    }

    #[test]
    fn display_is_informative() {
        let v = InvariantViolation::Capacity {
            i: 2,
            demand: 5.0,
            supply: 1.0,
        };
        let s = v.to_string();
        assert!(s.contains("(11)") && s.contains('2'));
    }
}
