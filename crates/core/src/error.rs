//! Scheduler parameter errors.

use core::fmt;

/// Error returned when scheduler parameters are invalid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParamError {
    /// The cost-delay parameter `V` must be non-negative and finite.
    InvalidV(f64),
    /// The energy-fairness parameter `β` must be non-negative and finite.
    InvalidBeta(f64),
    /// The lookahead frame length `T` must be positive.
    InvalidFrame(usize),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidV(v) => write!(
                f,
                "cost-delay parameter V must be non-negative and finite, got {v}"
            ),
            Self::InvalidBeta(b) => write!(
                f,
                "energy-fairness parameter beta must be non-negative and finite, got {b}"
            ),
            Self::InvalidFrame(t) => {
                write!(f, "lookahead frame length T must be positive, got {t}")
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ParamError::InvalidV(-1.0).to_string().contains("-1"));
        assert!(ParamError::InvalidBeta(f64::NAN)
            .to_string()
            .contains("NaN"));
        assert!(ParamError::InvalidFrame(0).to_string().contains('0'));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ParamError>();
    }
}
