//! The GreFar scheduler (Algorithm 1).

use crate::error::ParamError;
use crate::fairness::{FairnessFunction, QuadraticDeviation};
use crate::queue::QueueState;
use crate::scheduler::Scheduler;
use crate::solver::fallback::{self, Degradation, SolverBudget};
use crate::solver::{SlotInstance, SlotSolution, SolverChoice};
use grefar_convex::FwOptions;
use grefar_obs::{Event, Observer, Timer};
use grefar_types::{Decision, SystemConfig, SystemState};

/// Tunable parameters of GreFar: the cost-delay parameter `V ≥ 0` and the
/// energy-fairness parameter `β ≥ 0` of §IV.
///
/// * Larger `V` waits for lower electricity prices — the energy-fairness
///   cost approaches the `T`-step-lookahead optimum as `O(1/V)` while queues
///   (delays) grow as `O(V)` (Theorem 1).
/// * `β = 0` ignores fairness; `β → ∞` ignores energy (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreFarParams {
    v: f64,
    beta: f64,
    fw_options: FwOptions,
}

impl GreFarParams {
    /// Creates the parameter set. Validation happens at
    /// [`GreFar::new`].
    pub fn new(v: f64, beta: f64) -> Self {
        Self {
            v,
            beta,
            fw_options: FwOptions {
                max_iters: 200,
                gap_tolerance: 1e-6,
                ..FwOptions::default()
            },
        }
    }

    /// Overrides the Frank–Wolfe options used when `β > 0`.
    #[must_use]
    pub fn with_fw_options(mut self, options: FwOptions) -> Self {
        self.fw_options = options;
        self
    }

    /// The cost-delay parameter `V`.
    #[inline]
    pub fn v(&self) -> f64 {
        self.v
    }

    /// The energy-fairness parameter `β`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

/// The GreFar online scheduler (Algorithm 1): each slot, observe
/// `x(t)` and `Θ(t)`, then minimize the drift-plus-penalty expression (14)
/// subject to (4), (5), (11).
///
/// The minimization is exact (greedy) for `β = 0` and Frank–Wolfe with an
/// exact oracle for `β > 0`; see [`SlotInstance`] for the decomposition.
///
/// # Example
/// See the [crate-level documentation](crate).
pub struct GreFar {
    config: SystemConfig,
    params: GreFarParams,
    fairness: Box<dyn FairnessFunction>,
    budget: Option<SolverBudget>,
}

impl core::fmt::Debug for GreFar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GreFar")
            .field("params", &self.params)
            .field("fairness", &self.fairness.name())
            .finish_non_exhaustive()
    }
}

impl GreFar {
    /// Creates GreFar with the paper's quadratic-deviation fairness
    /// function (3).
    ///
    /// # Errors
    /// [`ParamError`] if `V` or `β` is negative or non-finite.
    pub fn new(config: &SystemConfig, params: GreFarParams) -> Result<Self, ParamError> {
        Self::with_fairness(config, params, Box::new(QuadraticDeviation))
    }

    /// Creates GreFar with a custom fairness function (footnote 5 allows
    /// any concave choice, e.g. [`AlphaFair`](crate::AlphaFair)).
    ///
    /// # Errors
    /// [`ParamError`] if `V` or `β` is negative or non-finite.
    pub fn with_fairness(
        config: &SystemConfig,
        params: GreFarParams,
        fairness: Box<dyn FairnessFunction>,
    ) -> Result<Self, ParamError> {
        if !params.v.is_finite() || params.v < 0.0 {
            return Err(ParamError::InvalidV(params.v));
        }
        if !params.beta.is_finite() || params.beta < 0.0 {
            return Err(ParamError::InvalidBeta(params.beta));
        }
        Ok(Self {
            config: config.clone(),
            params,
            fairness,
            budget: None,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> GreFarParams {
        self.params
    }

    /// The fairness function in use.
    pub fn fairness(&self) -> &dyn FairnessFunction {
        self.fairness.as_ref()
    }

    /// Solves the slot problem (14) with the typed fallback chain
    /// *Frank–Wolfe → greedy → capacity projection* wrapped around it.
    /// Every downgrade taken is returned as a [`Degradation`] (rendered as
    /// `degraded.mode` events by
    /// [`decide_observed`](Scheduler::decide_observed)).
    ///
    /// With no [`SolverBudget`] imposed and a feasible solver output — the
    /// healthy case — this is exactly `solve` and the degradation list is
    /// empty, so default runs are unchanged.
    fn solve_hardened(
        &self,
        state: &SystemState,
        queues: &QueueState,
        obs: &mut dyn Observer,
    ) -> (SlotSolution, Vec<Degradation>) {
        let mut degradations: Vec<Degradation> =
            fallback::offline_dcs_with_backlog(&self.config, state, queues)
                .into_iter()
                .map(Degradation::dc_offline)
                .collect();

        let inst = SlotInstance::new(&self.config, state, queues, self.params.v);
        let beta_zero = grefar_types::approx_zero(self.params.beta, grefar_types::TOL_SENTINEL);
        #[allow(unused_mut)] // reassigned only by the non-strict repair path
        let mut solution = if beta_zero {
            inst.solve_greedy()
        } else {
            match self.budget {
                None => inst.solve_with_fairness_observed(
                    self.params.beta,
                    self.fairness.as_ref(),
                    self.params.fw_options,
                    obs,
                ),
                Some(budget) => {
                    let squeezed = grefar_convex::FwOptions {
                        max_iters: self.params.fw_options.max_iters.min(budget.max_fw_iters()),
                        ..self.params.fw_options
                    };
                    let attempt = inst.solve_with_fairness_observed(
                        self.params.beta,
                        self.fairness.as_ref(),
                        squeezed,
                        obs,
                    );
                    match attempt.solver {
                        SolverChoice::FrankWolfe { iterations, gap }
                            if gap > squeezed.gap_tolerance =>
                        {
                            // Budget exhausted without convergence: fall
                            // back to the exact (fairness-blind) greedy.
                            degradations.push(Degradation::budget_exhausted(iterations, gap));
                            inst.solve_greedy()
                        }
                        _ => attempt,
                    }
                }
            }
        };

        // Outside `strict-invariants` an infeasible decision is quarantined
        // and repaired by capacity projection rather than aborting the run;
        // the strict build keeps the fatal check in `enforce`.
        #[cfg(not(feature = "strict-invariants"))]
        if let Err(kind) =
            fallback::validate_decision(&self.config, state, queues, &solution.decision)
        {
            let repaired =
                fallback::project_decision(&self.config, state, queues, &solution.decision);
            degradations.push(Degradation::infeasible_repaired(kind));
            let objective = crate::cost::drift_penalty_objective(
                &self.config,
                state,
                queues,
                &repaired,
                self.params.v,
                self.params.beta,
                self.fairness.as_ref(),
            );
            solution = SlotSolution {
                decision: repaired,
                objective,
                solver: solution.solver,
            };
        }
        (solution, degradations)
    }

    /// `strict-invariants` enforcement: every decision must satisfy
    /// (4), (5), (11) and GreFar's backlog discipline. Aborts on violation,
    /// emitting an `invariant.violation` event first when an observer is
    /// attached.
    #[cfg(feature = "strict-invariants")]
    fn enforce(
        &self,
        state: &SystemState,
        queues: &QueueState,
        decision: &Decision,
        obs: Option<&mut dyn Observer>,
    ) {
        let result =
            crate::invariant::check_decision(&self.config, state, decision).and_then(|()| {
                crate::invariant::check_backlog_discipline(&self.config, queues, decision)
            });
        if let Err(violation) = result {
            if let Some(obs) = obs {
                if obs.enabled() {
                    obs.record_event(violation.event(state.slot()));
                }
            }
            panic!("strict-invariants: GreFar produced an infeasible decision: {violation}");
        }
    }
}

impl Scheduler for GreFar {
    fn name(&self) -> String {
        format!("GreFar(V={}, beta={})", self.params.v, self.params.beta)
    }

    fn decide(&mut self, state: &SystemState, queues: &QueueState) -> Decision {
        let decision = self
            .solve_hardened(state, queues, &mut grefar_obs::NullObserver)
            .0
            .decision;
        #[cfg(feature = "strict-invariants")]
        self.enforce(state, queues, &decision, None);
        decision
    }

    fn decide_observed(
        &mut self,
        state: &SystemState,
        queues: &QueueState,
        obs: &mut dyn Observer,
    ) -> Decision {
        if !obs.enabled() && !obs.profiling() {
            return self.decide(state, queues);
        }
        let timer = Timer::start();
        let (solution, degradations) = self.solve_hardened(state, queues, obs);
        let elapsed = timer.elapsed();
        if !obs.enabled() {
            // Profiling-only sink: spans are attributed, events skipped.
            #[cfg(feature = "strict-invariants")]
            self.enforce(state, queues, &solution.decision, Some(obs));
            return solution.decision;
        }

        // Decompose (14): penalty = V·g(t), drift = the queue terms.
        let breakdown = crate::cost::cost_breakdown(
            &self.config,
            state,
            &solution.decision,
            self.params.beta,
            self.fairness.as_ref(),
        );
        let penalty = self.params.v * breakdown.combined;
        let drift = solution.objective - penalty;

        let (fw_iterations, fw_gap) = match solution.solver {
            SolverChoice::Greedy => (0usize, 0.0),
            SolverChoice::FrankWolfe { iterations, gap } => (iterations, gap),
        };
        obs.record_event(
            Event::new("grefar.decide")
                .field("t", state.slot())
                .field("v", self.params.v)
                .field("beta", self.params.beta)
                .field("objective", solution.objective)
                .field("drift", drift)
                .field("penalty", penalty)
                .field("routed", solution.decision.routed.sum())
                .field("processed", solution.decision.processed.sum())
                .field("solver", solution.solver.label())
                .field("fw_iterations", fw_iterations)
                .field("fw_gap", fw_gap)
                .field(
                    "wall_us",
                    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                ),
        );
        // Decision provenance: one `decision.explain` per DC, attributing
        // the drift/energy split of (14) and the constraint-(11) operating
        // point. The global fairness score and per-account deficit counters
        // Θ(t) ride on the DC-0 event (they are slot-wide, not per-DC); a
        // `reason` field carries the machine label of whichever fallback
        // overrode the solver for that DC (or the whole slot).
        for explain in
            crate::cost::explain_decision(&self.config, state, queues, &solution.decision)
        {
            let mut event = Event::new("decision.explain")
                .field("t", state.slot())
                .field("dc", explain.dc as u64)
                .field("drift", explain.drift)
                .field("energy", explain.energy)
                .field("routed", explain.routed)
                .field("processed", explain.processed)
                .field("backlog", explain.backlog)
                .field("busy", explain.busy)
                .field("capacity", explain.capacity);
            if explain.dc == 0 {
                let deficits: Vec<String> = self
                    .config
                    .gammas()
                    .iter()
                    .zip(&breakdown.shares)
                    .map(|(gamma, share)| (gamma - share).to_string())
                    .collect();
                event = event
                    .field("fairness", breakdown.fairness)
                    .field("deficits", deficits.join(","));
            }
            let reason = degradations
                .iter()
                .find(|d| d.dc == Some(explain.dc))
                .or_else(|| degradations.iter().find(|d| d.dc.is_none()));
            if let Some(degradation) = reason {
                event = event.field("reason", degradation.reason.label());
            }
            obs.record_event(event);
        }
        obs.record_duration("grefar.decide.wall_us", elapsed);
        if let SolverChoice::FrankWolfe { iterations, .. } = solution.solver {
            obs.record_value("grefar.fw_iterations", iterations as f64);
        }
        for degradation in &degradations {
            obs.record_event(degradation.event(state.slot()));
            obs.add_counter("degraded.events", 1);
        }
        #[cfg(feature = "strict-invariants")]
        self.enforce(state, queues, &solution.decision, Some(obs));
        solution.decision
    }

    fn set_solver_budget(&mut self, budget: Option<SolverBudget>) {
        self.budget = budget;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, DataCenterState, JobClass, ServerClass, Tariff};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![30.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        let cfg = config();
        assert!(matches!(
            GreFar::new(&cfg, GreFarParams::new(-1.0, 0.0)),
            Err(ParamError::InvalidV(_))
        ));
        assert!(matches!(
            GreFar::new(&cfg, GreFarParams::new(1.0, f64::NAN)),
            Err(ParamError::InvalidBeta(_))
        ));
    }

    #[test]
    fn name_mentions_parameters() {
        let g = GreFar::new(&config(), GreFarParams::new(7.5, 100.0)).unwrap();
        assert_eq!(g.name(), "GreFar(V=7.5, beta=100)");
        assert_eq!(g.params().v(), 7.5);
        assert_eq!(g.fairness().name(), "quadratic-deviation");
    }

    #[test]
    fn higher_v_defers_more_work() {
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 6.0;
        queues.apply(&z, &[0.0]); // q = 6 at the data center
        let state = SystemState::new(0, vec![DataCenterState::new(vec![30.0], Tariff::flat(0.5))]);
        // Threshold: serve while q/d > V·φ·p/s = 0.5 V.
        let mut eager = GreFar::new(&cfg, GreFarParams::new(1.0, 0.0)).unwrap();
        let mut patient = GreFar::new(&cfg, GreFarParams::new(100.0, 0.0)).unwrap();
        assert_eq!(eager.decide(&state, &queues).processed[(0, 0)], 6.0);
        assert_eq!(patient.decide(&state, &queues).processed[(0, 0)], 0.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = GreFar::new(&config(), GreFarParams::new(1.0, 1.0)).unwrap();
        assert!(!format!("{g:?}").is_empty());
    }

    #[test]
    fn squeezed_budget_falls_back_to_greedy_and_reports_it() {
        use grefar_obs::MemoryObserver;
        // Two accounts so the fairness quadratic actually couples the
        // problem and Frank–Wolfe needs iterations to converge.
        let cfg = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![30.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 1)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .build()
            .unwrap();
        let mut queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 8.0;
        z.routed[(0, 1)] = 2.0;
        queues.apply(&z, &[0.0, 0.0]);
        let state = SystemState::new(0, vec![DataCenterState::new(vec![30.0], Tariff::flat(0.2))]);

        let mut g = GreFar::new(&cfg, GreFarParams::new(1.0, 500.0)).unwrap();
        let unbudgeted = g.decide(&state, &queues);

        // A one-iteration budget cannot reach the 1e-6 gap tolerance here:
        // the chain must fall back to greedy and say so.
        g.set_solver_budget(Some(SolverBudget::fw_iters(1)));
        let mut obs = MemoryObserver::new();
        let degraded = g.decide_observed(&state, &queues, &mut obs);
        assert_eq!(obs.event_count("degraded.mode"), 1);
        assert!(degraded.is_finite() && degraded.is_nonnegative());
        let greedy_only = {
            let inst = SlotInstance::new(&cfg, &state, &queues, 1.0);
            inst.solve_greedy().decision
        };
        assert_eq!(
            degraded, greedy_only,
            "fallback must be the greedy decision"
        );

        // Lifting the budget restores the original behavior.
        g.set_solver_budget(None);
        let mut obs = MemoryObserver::new();
        let restored = g.decide_observed(&state, &queues, &mut obs);
        assert_eq!(obs.event_count("degraded.mode"), 0);
        assert_eq!(restored, unbudgeted);
    }

    #[test]
    fn offline_dc_with_backlog_is_reported_not_fatal() {
        use grefar_obs::MemoryObserver;
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 4.0;
        queues.apply(&z, &[0.0]);
        // Full outage: zero servers available.
        let state = SystemState::new(5, vec![DataCenterState::new(vec![0.0], Tariff::flat(0.5))]);
        let mut g = GreFar::new(&cfg, GreFarParams::new(1.0, 0.0)).unwrap();
        let mut obs = MemoryObserver::new();
        let decision = g.decide_observed(&state, &queues, &mut obs);
        assert_eq!(obs.event_count("degraded.mode"), 1);
        assert_eq!(obs.event_count("decision.explain"), 1);
        assert_eq!(decision.processed.sum(), 0.0);
    }

    #[test]
    fn decision_explain_reconciles_with_decide_event() {
        use grefar_obs::JsonlSink;
        let cfg = config();
        let mut queues = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 6.0;
        queues.apply(&z, &[0.0]);
        let state = SystemState::new(0, vec![DataCenterState::new(vec![30.0], Tariff::flat(0.5))]);
        let mut g = GreFar::new(&cfg, GreFarParams::new(1.0, 0.0)).unwrap();
        let mut sink = JsonlSink::new(Vec::new());
        g.decide_observed(&state, &queues, &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = grefar_obs::json::parse_lines(&text).unwrap();
        let decide = events
            .iter()
            .find(|e| e["event"].as_str() == Some("grefar.decide"))
            .unwrap();
        let explains: Vec<_> = events
            .iter()
            .filter(|e| e["event"].as_str() == Some("decision.explain"))
            .collect();
        assert_eq!(explains.len(), 1); // one per DC
        let drift_sum: f64 = explains.iter().map(|e| e["drift"].as_f64().unwrap()).sum();
        assert!((drift_sum - decide["drift"].as_f64().unwrap()).abs() < 1e-9);
        // Slot-wide fairness/deficit counters ride on the DC-0 event.
        assert!(explains[0]["fairness"].as_f64().is_some());
        assert!(explains[0]["deficits"].as_str().is_some());
        // Healthy slot: no override reason.
        assert!(explains[0].get("reason").is_none());
    }
}
