//! The queue vector `Θ(t)` and its dynamics (12)–(13).

use grefar_types::{Decision, Grid, SystemConfig};

/// The scheduler's queue state
/// `Θ(t) = {Q_j(t), q_{i,j}(t) : i ∈ 𝒟_j, j = 1..J}` (eq. (25)):
/// `Q_j` counts type-`j` jobs waiting at the central scheduler, `q_{i,j}`
/// counts type-`j` jobs waiting in data center `i`.
///
/// Updates follow the paper exactly:
///
/// ```text
/// Q_j(t+1)   = max[Q_j(t) − Σ_i r_{i,j}(t), 0] + a_j(t)        (12)
/// q_{i,j}(t+1) = max[q_{i,j}(t) − h_{i,j}(t), 0] + r_{i,j}(t)  (13)
/// ```
///
/// # Example
/// ```
/// use grefar_core::QueueState;
/// use grefar_types::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let config = SystemConfig::builder()
/// #     .server_class(ServerClass::new(1.0, 1.0))
/// #     .data_center("dc", vec![10.0])
/// #     .account("org", 1.0)
/// #     .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0))
/// #     .build()?;
/// let mut q = QueueState::new(&config);
/// let mut z = config.decision_zeros();
/// q.apply(&z, &[5.0]);            // 5 arrivals
/// assert_eq!(q.central(0), 5.0);
/// z.routed[(0, 0)] = 3.0;
/// q.apply(&z, &[0.0]);            // route 3 to the data center
/// assert_eq!(q.central(0), 2.0);
/// assert_eq!(q.local(0, 0), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueueState {
    /// Q_j(t), length J.
    central: Vec<f64>,
    /// q_{i,j}(t), shape N × J. Entries outside the eligibility set stay 0.
    local: Grid,
}

impl QueueState {
    /// All-empty queues (the initial condition of Theorem 1).
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            central: vec![0.0; config.num_job_classes()],
            local: Grid::zeros(config.num_data_centers(), config.num_job_classes()),
        }
    }

    /// Rebuilds a queue state from explicit values (checkpoint restore).
    ///
    /// # Errors
    /// Returns a message if the shape is inconsistent or any entry is
    /// negative or non-finite.
    pub fn from_parts(central: Vec<f64>, local: Grid) -> Result<Self, String> {
        if local.cols() != central.len() {
            return Err(format!(
                "local grid has {} columns but {} central queues",
                local.cols(),
                central.len()
            ));
        }
        let bad = |v: &f64| !v.is_finite() || *v < 0.0;
        if central.iter().any(bad) || local.as_slice().iter().any(bad) {
            return Err("queue lengths must be finite and non-negative".to_string());
        }
        Ok(Self { central, local })
    }

    /// The central queue length `Q_j(t)`.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    #[inline]
    pub fn central(&self, j: usize) -> f64 {
        self.central[j]
    }

    /// The data-center queue length `q_{i,j}(t)`.
    ///
    /// # Panics
    /// Panics if indices are out of range.
    #[inline]
    pub fn local(&self, i: usize, j: usize) -> f64 {
        self.local[(i, j)]
    }

    /// All central queue lengths.
    #[inline]
    pub fn central_slice(&self) -> &[f64] {
        &self.central
    }

    /// All data-center queue lengths as an `N × J` grid.
    #[inline]
    pub fn local_grid(&self) -> &Grid {
        &self.local
    }

    /// Test-only mutation hook: adds `delta` to central queue `j`,
    /// deliberately desynchronizing the state from the dynamics. Exists so
    /// the `grefar-soak` mutation self-check can prove the conservation
    /// ledger actually detects a corrupted queue update; never call it
    /// from production paths.
    ///
    /// # Panics
    /// Panics if `j` is out of range or the result would be negative or
    /// non-finite.
    #[doc(hidden)]
    pub fn corrupt_central_for_test(&mut self, j: usize, delta: f64) {
        let corrupted = self.central[j] + delta;
        assert!(
            corrupted.is_finite() && corrupted >= 0.0,
            "corruption must leave a valid queue length"
        );
        self.central[j] = corrupted;
    }

    /// Applies one slot of dynamics: first the departures/routings of the
    /// decision `z(t)`, then the arrivals `a(t)` — exactly (12)–(13).
    ///
    /// # Panics
    /// Panics if dimensions mismatch, the decision has negative entries, or
    /// arrivals are negative.
    pub fn apply(&mut self, decision: &Decision, arrivals: &[f64]) {
        let n = self.local.rows();
        let j_count = self.central.len();
        assert_eq!(arrivals.len(), j_count, "arrival vector mismatch");
        assert_eq!(decision.routed.rows(), n, "decision shape mismatch");
        assert_eq!(decision.routed.cols(), j_count, "decision shape mismatch");
        assert!(decision.is_nonnegative(), "decision has negative entries");

        for (j, &arrived) in arrivals.iter().enumerate() {
            assert!(arrived >= 0.0, "negative arrivals for job type {j}");
            let routed_total = decision.routed.col_sum(j);
            self.central[j] = (self.central[j] - routed_total).max(0.0) + arrived;
            for i in 0..n {
                let served = decision.processed[(i, j)];
                let routed = decision.routed[(i, j)];
                self.local[(i, j)] = (self.local[(i, j)] - served).max(0.0) + routed;
            }
        }
    }

    /// Sum of all queue lengths
    /// `Σ_j Q_j + Σ_j Σ_i q_{i,j}` — the quantity bounded by `P/δ` in the
    /// proof of Theorem 1(a).
    pub fn total(&self) -> f64 {
        self.central.iter().sum::<f64>() + self.local.sum()
    }

    /// The largest single queue length — compared against the bound (23).
    pub fn max_len(&self) -> f64 {
        let c = self.central.iter().fold(0.0f64, |m, &v| m.max(v));
        c.max(self.local.max_abs())
    }

    /// The quadratic Lyapunov function
    /// `L(Θ) = ½ Σ_j Q_j² + ½ Σ_j Σ_i q_{i,j}²` (eq. (26)).
    pub fn lyapunov(&self) -> f64 {
        let c: f64 = self.central.iter().map(|v| v * v).sum();
        let l: f64 = self.local.as_slice().iter().map(|v| v * v).sum();
        0.5 * (c + l)
    }

    /// Total backlog *work* waiting in data center `i`:
    /// `Σ_j q_{i,j} · d_j` where `work[j] = d_j`.
    ///
    /// # Panics
    /// Panics if dimensions mismatch.
    pub fn local_work(&self, i: usize, work: &[f64]) -> f64 {
        assert_eq!(work.len(), self.central.len(), "work vector mismatch");
        self.local.row(i).iter().zip(work).map(|(q, d)| q * d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .data_center("b", vec![10.0])
            .account("x", 1.0)
            .job_class(JobClass::new(
                1.0,
                vec![DataCenterId::new(0), DataCenterId::new(1)],
                0,
            ))
            .job_class(JobClass::new(2.0, vec![DataCenterId::new(1)], 0))
            .build()
            .unwrap()
    }

    #[test]
    fn starts_empty() {
        let q = QueueState::new(&config());
        assert_eq!(q.total(), 0.0);
        assert_eq!(q.lyapunov(), 0.0);
        assert_eq!(q.max_len(), 0.0);
    }

    #[test]
    fn dynamics_follow_eq_12_13() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();

        // Slot 0: 4 arrivals of type 0, 2 of type 1.
        q.apply(&z, &[4.0, 2.0]);
        assert_eq!(q.central(0), 4.0);
        assert_eq!(q.central(1), 2.0);

        // Slot 1: route 3 type-0 to DC 0 and 5 (over-routing) type-1 to DC 1.
        z.routed[(0, 0)] = 3.0;
        z.routed[(1, 1)] = 5.0;
        q.apply(&z, &[0.0, 0.0]);
        assert_eq!(q.central(0), 1.0);
        assert_eq!(q.central(1), 0.0); // max[2−5, 0] = 0
        assert_eq!(q.local(0, 0), 3.0);
        assert_eq!(q.local(1, 1), 5.0); // r enters q even when over-routed

        // Slot 2: serve 1.5 of type-0 in DC 0, over-serve type-1 in DC 1.
        z.routed.clear();
        z.processed[(0, 0)] = 1.5;
        z.processed[(1, 1)] = 99.0;
        q.apply(&z, &[0.0, 0.0]);
        assert_eq!(q.local(0, 0), 1.5);
        assert_eq!(q.local(1, 1), 0.0); // max[5−99, 0]
    }

    #[test]
    fn simultaneous_route_and_serve() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        q.apply(&z, &[10.0, 0.0]);
        z.routed[(0, 0)] = 4.0;
        q.apply(&z, &[0.0, 0.0]);
        // Now serve 4 while routing 2 more in the same slot.
        z.routed[(0, 0)] = 2.0;
        z.processed[(0, 0)] = 4.0;
        q.apply(&z, &[0.0, 0.0]);
        // q = max[4 − 4, 0] + 2 = 2.
        assert_eq!(q.local(0, 0), 2.0);
        assert_eq!(q.central(0), 4.0);
    }

    #[test]
    fn lyapunov_and_totals() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[3.0, 4.0]);
        assert_eq!(q.total(), 7.0);
        assert_eq!(q.lyapunov(), 0.5 * (9.0 + 16.0));
        assert_eq!(q.max_len(), 4.0);
    }

    #[test]
    fn local_work_weights_by_demand() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        q.apply(&z, &[2.0, 3.0]);
        z.routed[(1, 0)] = 2.0;
        z.routed[(1, 1)] = 3.0;
        q.apply(&z, &[0.0, 0.0]);
        assert_eq!(q.local_work(1, &[1.0, 2.0]), 2.0 + 6.0);
        assert_eq!(q.local_work(0, &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative arrivals")]
    fn rejects_negative_arrivals() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        q.apply(&cfg.decision_zeros(), &[-1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative entries")]
    fn rejects_negative_decision() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = -1.0;
        q.apply(&z, &[0.0, 0.0]);
    }

    #[test]
    fn queues_never_go_negative() {
        let cfg = config();
        let mut q = QueueState::new(&cfg);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 100.0;
        z.processed[(0, 0)] = 100.0;
        for _ in 0..10 {
            q.apply(&z, &[1.0, 0.0]);
            assert!(q.central(0) >= 0.0);
            assert!(q.local(0, 0) >= 0.0);
        }
    }
}
