//! End-to-end tests for the metrics plane over real simulator runs: the
//! exposition must self-lint, the offline rebuild must reproduce the live
//! fold, and a killed + resumed run must rebuild identical aggregates.

use grefar_core::{GreFar, GreFarParams, Scheduler};
use grefar_metrics::{lint, MetricsConfig, MetricsFold, MetricsLayer};
use grefar_obs::JsonlSink;
use grefar_sim::{Checkpoint, PaperScenario, RunPolicy, SimError, Simulation};

/// Builds the standard paper simulation at `seed` over `hours` slots.
fn build_sim(seed: u64, hours: usize) -> Simulation {
    let scenario = PaperScenario::default().with_seed(seed);
    let config = scenario.config().clone();
    let inputs = scenario.into_inputs(hours);
    let scheduler: Box<dyn Scheduler> =
        Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).expect("valid params"));
    Simulation::new(config, inputs, scheduler)
}

/// A metrics layer capturing the forwarded event stream in memory.
fn capture_layer(include_timings: bool) -> MetricsLayer<JsonlSink<Vec<u8>>> {
    let config = MetricsConfig {
        include_timings,
        ..MetricsConfig::default()
    };
    MetricsLayer::new(JsonlSink::new(Vec::new()), config)
}

/// Exposition text minus the checkpoint-cadence metrics, which legitimately
/// differ between an uninterrupted run and a killed + resumed one.
fn without_checkpoint_lines(exposition: &str) -> String {
    exposition
        .lines()
        .filter(|l| !l.contains("grefar_checkpoint"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn exposition_from_real_run_self_lints() {
    let mut layer = capture_layer(true);
    let report = build_sim(2012, 60).run_with_observer(&mut layer);

    let exposition = layer.fold().render();
    let findings = lint(&exposition);
    assert!(findings.is_empty(), "lint findings: {findings:?}");

    // Golden spot-checks: one slot sample per simulated hour, a declared
    // horizon, and (with timings on) the slot-duration histogram.
    let label = report.scheduler.as_str();
    assert!(
        exposition.contains(&format!("grefar_slots_total{{scheduler=\"{label}\"}} 60")),
        "missing slot counter in:\n{exposition}"
    );
    assert!(exposition.contains("grefar_run_horizon_slots"));
    assert!(exposition.contains("grefar_slot_duration_us_bucket"));
    assert!(exposition.contains("grefar_slot_duration_us_count"));

    let health = layer.health();
    assert_eq!(health.slot, 59, "last folded slot");
    assert_eq!(health.invariant_violations, 0);
}

#[test]
fn offline_rebuild_reproduces_live_fold() {
    // Timings off on both sides: wall-clock values are the one
    // nondeterministic input, everything else must round-trip exactly.
    let mut layer = capture_layer(false);
    build_sim(7, 90).run_with_observer(&mut layer);

    let live = layer.fold().render();
    let (sink, health) = layer.into_parts();
    health.expect("clean run");
    let stream = String::from_utf8(sink.into_inner()).expect("utf8 jsonl");

    let mut rebuild = MetricsFold::new(false);
    let folded = rebuild.fold_jsonl(&stream).expect("well-formed stream");
    assert!(folded > 90, "expected one event per slot plus framing");
    assert_eq!(rebuild.render(), live, "offline rebuild diverged");
}

#[test]
fn kill_and_resume_rebuilds_identical_aggregates() {
    let ck_path = std::env::temp_dir().join("grefar_metrics_itest_resume.ckpt.jsonl");
    let _ = std::fs::remove_file(&ck_path);

    // Reference: the same run, uninterrupted.
    let mut reference = capture_layer(false);
    build_sim(42, 80).run_with_observer(&mut reference);
    let want = without_checkpoint_lines(&reference.fold().render());

    // Crash just before slot 40 (checkpoint written first, stream is a
    // clean prefix).
    let policy = RunPolicy::new(ck_path.clone(), 20).with_kill_at(40);
    let mut cut = capture_layer(false);
    let err = build_sim(42, 80)
        .run_resumable(&mut cut, &policy)
        .expect_err("kill slot must fire");
    match err {
        SimError::Killed { slot, .. } => assert_eq!(slot, 40),
        other => panic!("expected Killed, got {other:?}"),
    }
    let (cut_sink, _) = cut.into_parts();
    let prefix = String::from_utf8(cut_sink.into_inner()).expect("utf8 jsonl");

    // Resume with a fresh layer pre-seeded from the truncated stream, as
    // `grefar_cli --resume` does.
    let mut resumed = capture_layer(false);
    let prefolded = resumed.prefold_jsonl(&prefix).expect("prefix folds");
    assert!(prefolded > 0, "prefix stream was empty");
    let checkpoint = Checkpoint::load(&ck_path).expect("checkpoint readable");
    build_sim(42, 80)
        .resume(checkpoint, &mut resumed, None)
        .expect("resume completes");

    let got = without_checkpoint_lines(&resumed.fold().render());
    assert_eq!(got, want, "resumed aggregates diverged from uninterrupted");
    let _ = std::fs::remove_file(&ck_path);
}
