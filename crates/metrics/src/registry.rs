//! The metric registry and its Prometheus text-format renderer.
//!
//! Naming conventions (enforced by [`crate::lint`], documented in
//! DESIGN.md): every metric is prefixed `grefar_`, counters end in
//! `_total`, and metrics carrying a unit spell it as a suffix
//! (`_us`, `_slots`, `_jobs`, `_percent`). Labels follow the workspace's
//! cardinality rules: `scheduler`, `dc`, `account`, `feed` and small
//! enums only — never per-slot values.
//!
//! Everything is `BTreeMap`-ordered, so [`Registry::render`] is
//! deterministic: the same fold over the same event stream produces
//! byte-identical exposition text (the kill/resume rebuild test depends
//! on this).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The kind of a metric family, mapped onto Prometheus `# TYPE` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing; name must end in `_total`.
    Counter,
    /// A value that goes up and down.
    Gauge,
    /// Cumulative buckets plus `_sum` / `_count`.
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Sorted, owned label pairs — the per-series key within a family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug, Clone)]
struct HistogramCells {
    /// Cumulative counts per upper bound (same length as the family's
    /// `buckets`), excluding `+Inf`.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

#[derive(Debug, Clone)]
enum SeriesValue {
    Scalar(f64),
    Histogram(HistogramCells),
}

#[derive(Debug, Clone)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Histogram upper bounds (empty for scalar families).
    buckets: Vec<f64>,
    series: BTreeMap<LabelSet, SeriesValue>,
}

/// A registry of counter / gauge / histogram families with labels.
///
/// # Example
/// ```
/// use grefar_metrics::Registry;
///
/// let mut r = Registry::new();
/// r.counter_add(
///     "grefar_slots_total",
///     "Slots executed.",
///     &[("scheduler", "GreFar")],
///     1.0,
/// );
/// let text = r.render();
/// assert!(text.contains("# TYPE grefar_slots_total counter"));
/// assert!(text.contains("grefar_slots_total{scheduler=\"GreFar\"} 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: BTreeMap<&'static str, Family>,
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn family(
        &mut self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        buckets: &[f64],
    ) -> &mut Family {
        debug_assert!(
            name.starts_with("grefar_"),
            "metric names carry the grefar_ prefix: {name}"
        );
        debug_assert!(
            kind != MetricKind::Counter || name.ends_with("_total"),
            "counter names end in _total: {name}"
        );
        let family = self.families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            buckets: buckets.to_vec(),
            series: BTreeMap::new(),
        });
        debug_assert!(
            family.kind == kind,
            "metric {name} re-registered as {kind:?}"
        );
        family
    }

    /// Adds `delta` to the counter series; registers the family on first
    /// touch.
    pub fn counter_add(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        delta: f64,
    ) {
        let key = label_set(labels);
        let family = self.family(name, help, MetricKind::Counter, &[]);
        match family.series.entry(key).or_insert(SeriesValue::Scalar(0.0)) {
            SeriesValue::Scalar(v) => *v += delta,
            SeriesValue::Histogram(_) => unreachable!("scalar family"),
        }
    }

    /// Sets the gauge series to `value`; registers the family on first
    /// touch.
    pub fn gauge_set(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let key = label_set(labels);
        let family = self.family(name, help, MetricKind::Gauge, &[]);
        family.series.insert(key, SeriesValue::Scalar(value));
    }

    /// Reads a scalar series back (counters and gauges).
    pub fn scalar(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = label_set(labels);
        match self.families.get(name)?.series.get(&key)? {
            SeriesValue::Scalar(v) => Some(*v),
            SeriesValue::Histogram(_) => None,
        }
    }

    /// Observes one sample into the histogram series; registers the
    /// family (with the given upper bounds, ascending, `+Inf` implicit) on
    /// first touch. Non-finite samples are dropped.
    pub fn histogram_observe(
        &mut self,
        name: &'static str,
        help: &'static str,
        buckets: &'static [f64],
        labels: &[(&str, &str)],
        value: f64,
    ) {
        if !value.is_finite() {
            return;
        }
        let key = label_set(labels);
        let family = self.family(name, help, MetricKind::Histogram, buckets);
        let n = family.buckets.len();
        let cells = match family.series.entry(key).or_insert_with(|| {
            SeriesValue::Histogram(HistogramCells {
                counts: vec![0; n],
                total: 0,
                sum: 0.0,
            })
        }) {
            SeriesValue::Histogram(cells) => cells,
            SeriesValue::Scalar(_) => unreachable!("histogram family"),
        };
        for (idx, bound) in family.buckets.iter().enumerate() {
            if value <= *bound {
                cells.counts[idx] += 1;
            }
        }
        cells.total += 1;
        cells.sum += value;
    }

    /// True when no family has been registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders Prometheus text exposition format 0.0.4: families in name
    /// order, each with `# HELP` / `# TYPE` headers, series in label
    /// order. Deterministic for a given registry state.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.label());
            for (labels, value) in &family.series {
                match value {
                    SeriesValue::Scalar(v) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", fmt_value(*v));
                    }
                    SeriesValue::Histogram(cells) => {
                        for (idx, bound) in family.buckets.iter().enumerate() {
                            let _ = write!(out, "{name}_bucket");
                            render_labels(&mut out, labels, Some(&fmt_value(*bound)));
                            let _ = writeln!(out, " {}", cells.counts[idx]);
                        }
                        let _ = write!(out, "{name}_bucket");
                        render_labels(&mut out, labels, Some("+Inf"));
                        let _ = writeln!(out, " {}", cells.total);
                        out.push_str(name);
                        out.push_str("_sum");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", fmt_value(cells.sum));
                        out.push_str(name);
                        out.push_str("_count");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", cells.total);
                    }
                }
            }
        }
        out
    }
}

/// Formats a sample value: shortest-roundtrip `Display`, with NaN spelled
/// the Prometheus way.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &LabelSet, le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let mut r = Registry::new();
        for _ in 0..3 {
            r.counter_add("grefar_slots_total", "Slots.", &[("scheduler", "g")], 1.0);
        }
        r.counter_add("grefar_slots_total", "Slots.", &[("scheduler", "a")], 2.0);
        assert_eq!(
            r.scalar("grefar_slots_total", &[("scheduler", "g")]),
            Some(3.0)
        );
        let text = r.render();
        // Series render in label order: "a" before "g".
        let a = text.find("scheduler=\"a\"} 2").unwrap();
        let g = text.find("scheduler=\"g\"} 3").unwrap();
        assert!(a < g, "{text}");
    }

    #[test]
    fn gauges_keep_the_latest_value() {
        let mut r = Registry::new();
        r.gauge_set("grefar_queue_jobs", "Queue.", &[], 4.0);
        r.gauge_set("grefar_queue_jobs", "Queue.", &[], 2.5);
        assert_eq!(r.scalar("grefar_queue_jobs", &[]), Some(2.5));
        assert!(r.render().contains("grefar_queue_jobs 2.5\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut r = Registry::new();
        const BUCKETS: &[f64] = &[1.0, 10.0];
        for v in [0.5, 5.0, 50.0] {
            r.histogram_observe("grefar_wait_us", "Wait.", BUCKETS, &[], v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE grefar_wait_us histogram"));
        assert!(text.contains("grefar_wait_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("grefar_wait_us_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("grefar_wait_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("grefar_wait_us_sum 55.5\n"));
        assert!(text.contains("grefar_wait_us_count 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.gauge_set(
            "grefar_queue_jobs",
            "Queue.",
            &[("scheduler", "a\"b\\c\nd")],
            1.0,
        );
        assert!(r.render().contains("scheduler=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let mut r = Registry::new();
            r.gauge_set("grefar_b", "B.", &[("dc", "1")], 2.0);
            r.counter_add("grefar_a_total", "A.", &[], 1.0);
            r.gauge_set("grefar_b", "B.", &[("dc", "0")], 1.0);
            r.render()
        };
        assert_eq!(build(), build());
    }
}
