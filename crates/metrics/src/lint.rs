//! A hand-rolled lint for Prometheus text exposition format 0.0.4.
//!
//! Used three ways: as the golden self-check in this crate's tests, by
//! `grefar-report promlint` in `scripts/check.sh`'s observability stage,
//! and as documentation-by-executable-spec of the workspace's metric
//! naming conventions (DESIGN.md): `grefar_` prefix everywhere, counters
//! end `_total`, histograms carry a `+Inf` bucket plus `_sum`/`_count`.

use std::collections::{BTreeMap, BTreeSet};

/// Lints `text` as Prometheus exposition format; returns one message per
/// finding (empty means clean).
pub fn lint(text: &str) -> Vec<String> {
    let mut findings = Vec::new();
    // name -> declared type ("counter" | "gauge" | "histogram" | ...).
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut samples_seen: BTreeSet<String> = BTreeSet::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, _help)) = rest.split_once(' ') else {
                findings.push(format!("line {lineno}: HELP without text"));
                continue;
            };
            if !helped.insert(name.to_string()) {
                findings.push(format!("line {lineno}: duplicate HELP for {name}"));
            }
            if samples_seen.contains(name) {
                findings.push(format!("line {lineno}: HELP for {name} after its samples"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                findings.push(format!("line {lineno}: TYPE without kind"));
                continue;
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                findings.push(format!("line {lineno}: unknown TYPE {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                findings.push(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            if !helped.contains(name) {
                findings.push(format!("line {lineno}: TYPE for {name} without HELP"));
            }
            if samples_seen.contains(name) {
                findings.push(format!("line {lineno}: TYPE for {name} after its samples"));
            }
            check_name(name, lineno, &mut findings);
            if kind == "counter" && !name.ends_with("_total") {
                findings.push(format!(
                    "line {lineno}: counter {name} does not end in _total"
                ));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        lint_sample(
            line,
            lineno,
            &types,
            &mut seen_series,
            &mut samples_seen,
            &mut findings,
        );
    }

    // Histogram completeness: every histogram family needs +Inf, _sum and
    // _count samples.
    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        if !samples_seen.contains(name) {
            continue; // declared but no series — acceptable
        }
        for suffix in ["_sum", "_count"] {
            if !seen_series
                .iter()
                .any(|s| series_name(s) == format!("{name}{suffix}"))
            {
                findings.push(format!("histogram {name} is missing {name}{suffix}"));
            }
        }
        if !seen_series
            .iter()
            .any(|s| series_name(s) == format!("{name}_bucket") && s.contains("le=\"+Inf\""))
        {
            findings.push(format!("histogram {name} is missing the +Inf bucket"));
        }
    }
    findings
}

fn series_name(series: &str) -> &str {
    series.split('{').next().unwrap_or(series)
}

fn check_name(name: &str, lineno: usize, findings: &mut Vec<String>) {
    let valid = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            .unwrap_or(false)
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    if !valid {
        findings.push(format!("line {lineno}: invalid metric name {name:?}"));
    }
    if !name.starts_with("grefar_") {
        findings.push(format!(
            "line {lineno}: metric {name} lacks the grefar_ prefix"
        ));
    }
}

/// The base family a sample line belongs to, resolving histogram suffixes.
fn base_family<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

fn lint_sample(
    line: &str,
    lineno: usize,
    types: &BTreeMap<String, String>,
    seen_series: &mut BTreeSet<String>,
    samples_seen: &mut BTreeSet<String>,
    findings: &mut Vec<String>,
) {
    // Split "name{labels} value" / "name value".
    let (series, value) = match line.rfind(' ') {
        Some(pos) => (&line[..pos], &line[pos + 1..]),
        None => {
            findings.push(format!("line {lineno}: sample without value"));
            return;
        }
    };
    let name = series_name(series);
    if let Some(labels) = series.strip_prefix(name) {
        if !labels.is_empty() {
            lint_labels(labels, lineno, findings);
        }
    }
    let parses = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !parses {
        findings.push(format!("line {lineno}: unparsable value {value:?}"));
    }
    match base_family(name, types) {
        Some(base) => {
            samples_seen.insert(base.to_string());
        }
        None => findings.push(format!(
            "line {lineno}: sample {name} has no preceding # TYPE"
        )),
    }
    if !seen_series.insert(series.to_string()) {
        findings.push(format!("line {lineno}: duplicate series {series}"));
    }
}

fn lint_labels(labels: &str, lineno: usize, findings: &mut Vec<String>) {
    let Some(inner) = labels
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
    else {
        findings.push(format!("line {lineno}: malformed label block {labels:?}"));
        return;
    };
    // Walk key="value" pairs, honoring escapes inside values.
    let mut chars = inner.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            findings.push(format!("line {lineno}: label {key:?} missing =\"...\""));
            return;
        }
        let key_ok = !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !key_ok {
            findings.push(format!("line {lineno}: invalid label name {key:?}"));
        }
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    closed = true;
                    break;
                }
                _ => {}
            }
        }
        if !closed {
            findings.push(format!("line {lineno}: unterminated label value"));
            return;
        }
        match chars.next() {
            Some(',') => continue,
            None => return,
            Some(other) => {
                findings.push(format!(
                    "line {lineno}: unexpected {other:?} after label value"
                ));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_exposition_passes() {
        let text = "# HELP grefar_slots_total Slots.\n\
                    # TYPE grefar_slots_total counter\n\
                    grefar_slots_total{scheduler=\"g\"} 5\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }

    #[test]
    fn missing_type_is_flagged() {
        let findings = lint("grefar_x 1\n");
        assert!(findings.iter().any(|f| f.contains("no preceding # TYPE")));
    }

    #[test]
    fn counter_without_total_suffix_is_flagged() {
        let text = "# HELP grefar_slots Slots.\n# TYPE grefar_slots counter\ngrefar_slots 1\n";
        assert!(lint(text).iter().any(|f| f.contains("_total")));
    }

    #[test]
    fn missing_prefix_is_flagged() {
        let text = "# HELP slots_total S.\n# TYPE slots_total counter\nslots_total 1\n";
        assert!(lint(text).iter().any(|f| f.contains("grefar_ prefix")));
    }

    #[test]
    fn duplicate_series_is_flagged() {
        let text = "# HELP grefar_q Q.\n# TYPE grefar_q gauge\ngrefar_q 1\ngrefar_q 2\n";
        assert!(lint(text).iter().any(|f| f.contains("duplicate series")));
    }

    #[test]
    fn incomplete_histogram_is_flagged() {
        let text = "# HELP grefar_wait_us W.\n# TYPE grefar_wait_us histogram\n\
                    grefar_wait_us_bucket{le=\"1\"} 1\n";
        let findings = lint(text);
        assert!(findings.iter().any(|f| f.contains("+Inf")));
        assert!(findings.iter().any(|f| f.contains("_sum")));
        assert!(findings.iter().any(|f| f.contains("_count")));
    }

    #[test]
    fn bad_value_and_bad_labels_are_flagged() {
        let text = "# HELP grefar_q Q.\n# TYPE grefar_q gauge\ngrefar_q{dc=0} oops\n";
        let findings = lint(text);
        assert!(findings.iter().any(|f| f.contains("missing =")));
        assert!(findings.iter().any(|f| f.contains("unparsable value")));
    }
}
