//! A declarative alerting/SLO engine over the metrics fold.
//!
//! Rules are written in a tiny text DSL, evaluated once per `slot` event
//! against the fold's [`Health`] summary — identically by the live
//! [`MetricsLayer`](crate::MetricsLayer) and the offline
//! `grefar-report alerts` replay, so a rule can never fire live without
//! also firing on the recorded stream (and vice versa).
//!
//! # Rule grammar
//!
//! ```text
//! RULES  := RULE (';' RULE)*
//! RULE   := NAME ':' EXPR CMP NUMBER (',for=' INT)?
//! EXPR   := SIGNAL
//!         | 'ratio(' SIGNAL '/' SIGNAL ')'
//!         | 'burn(' SIGNAL ',window=' INT ',budget=' NUMBER ')'
//! CMP    := '>' | '<'
//! SIGNAL := occupancy_pct | queue_peak | queue_bound
//!         | invariant_violations | degraded_events | stale_events
//!         | open_breakers | checkpoint_age_slots | slots
//! ```
//!
//! * A **threshold** rule compares one signal against a constant:
//!   `hot:occupancy_pct>80`.
//! * A **ratio** rule compares the quotient of two signals:
//!   `degrade_rate:ratio(degraded_events/slots)>0.05`.
//! * A **burn-rate** rule compares the windowed consumption rate of a
//!   cumulative signal against an error budget:
//!   `stale_burn:burn(stale_events,window=50,budget=0.1)>1` reads "over
//!   the last 50 slots, stale slots accrued faster than 1× the budget of
//!   0.1 per slot".
//! * `,for=N` requires the condition to hold for `N` consecutive slots
//!   before the rule fires (default 1).
//!
//! Firing emits a schema-registered `alert.fire` event; the first slot
//! the condition no longer holds emits `alert.resolve`. Both are keyed on
//! slot indices and fold state only, so identical-seed runs produce
//! byte-identical alert streams.

use std::collections::VecDeque;

use grefar_obs::Event;

use crate::health::Health;

/// One observable of the fold's [`Health`] summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Worst `100·peak/bound` across labeled runs (absent without a
    /// declared Theorem 1(a) bound).
    OccupancyPct,
    /// Peak of the longest single queue.
    QueuePeak,
    /// The declared Theorem 1(a) queue bound (absent until declared).
    QueueBound,
    /// Runtime paper-invariant violations.
    InvariantViolations,
    /// Slots served through a degradation fallback.
    DegradedEvents,
    /// Slots decided on stale feed state.
    StaleEvents,
    /// Circuit breakers currently open.
    OpenBreakers,
    /// Slots since the last checkpoint write (absent until one lands).
    CheckpointAgeSlots,
    /// Slots observed so far (1-based; the natural ratio denominator).
    Slots,
}

impl Signal {
    /// Parses the DSL spelling.
    pub fn parse(text: &str) -> Result<Signal, String> {
        match text.trim() {
            "occupancy_pct" => Ok(Signal::OccupancyPct),
            "queue_peak" => Ok(Signal::QueuePeak),
            "queue_bound" => Ok(Signal::QueueBound),
            "invariant_violations" => Ok(Signal::InvariantViolations),
            "degraded_events" => Ok(Signal::DegradedEvents),
            "stale_events" => Ok(Signal::StaleEvents),
            "open_breakers" => Ok(Signal::OpenBreakers),
            "checkpoint_age_slots" => Ok(Signal::CheckpointAgeSlots),
            "slots" => Ok(Signal::Slots),
            other => Err(format!("unknown signal {other:?}")),
        }
    }

    /// The DSL spelling.
    pub fn label(self) -> &'static str {
        match self {
            Signal::OccupancyPct => "occupancy_pct",
            Signal::QueuePeak => "queue_peak",
            Signal::QueueBound => "queue_bound",
            Signal::InvariantViolations => "invariant_violations",
            Signal::DegradedEvents => "degraded_events",
            Signal::StaleEvents => "stale_events",
            Signal::OpenBreakers => "open_breakers",
            Signal::CheckpointAgeSlots => "checkpoint_age_slots",
            Signal::Slots => "slots",
        }
    }

    /// Reads the signal off a health summary; `None` when undefined (no
    /// bound declared yet, no checkpoint yet) — an undefined signal never
    /// satisfies a condition.
    pub fn value(self, health: &Health) -> Option<f64> {
        match self {
            Signal::OccupancyPct => health.occupancy_pct,
            Signal::QueuePeak => Some(health.queue_peak),
            Signal::QueueBound => health.queue_bound,
            Signal::InvariantViolations => Some(health.invariant_violations as f64),
            Signal::DegradedEvents => Some(health.degraded_events as f64),
            Signal::StaleEvents => Some(health.stale_events as f64),
            Signal::OpenBreakers => Some(health.open_breakers as f64),
            Signal::CheckpointAgeSlots => health.checkpoint_age_slots.map(|age| age as f64),
            Signal::Slots => Some(health.slot as f64 + 1.0),
        }
    }
}

/// The measured expression of one rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The signal itself.
    Signal(Signal),
    /// Quotient of two signals (undefined when the denominator is 0).
    Ratio(Signal, Signal),
    /// Windowed burn rate of a cumulative signal: the increase over the
    /// last `window` slots, divided by `window·budget` (1.0 = consuming
    /// exactly the budget). Undefined until a second sample exists.
    Burn {
        /// The cumulative signal whose consumption is rated.
        signal: Signal,
        /// Window length in slots.
        window: u64,
        /// Allowed increase per slot.
        budget: f64,
    },
}

impl Expr {
    /// The DSL spelling, used as the `signal` field of `alert.fire`.
    pub fn label(&self) -> String {
        match self {
            Expr::Signal(signal) => signal.label().to_string(),
            Expr::Ratio(a, b) => format!("ratio({}/{})", a.label(), b.label()),
            Expr::Burn {
                signal,
                window,
                budget,
            } => format!("burn({},window={window},budget={budget})", signal.label()),
        }
    }
}

/// Comparison direction of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Fire while the expression exceeds the threshold.
    Above,
    /// Fire while the expression is below the threshold.
    Below,
}

/// One parsed alert rule. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (`[A-Za-z0-9_.-]+`), the `rule` label of every emitted
    /// event and metric.
    pub name: String,
    /// What is measured.
    pub expr: Expr,
    /// Comparison direction.
    pub cmp: Cmp,
    /// The constant compared against.
    pub threshold: f64,
    /// Consecutive slots the condition must hold before firing.
    pub for_slots: u64,
}

/// Parses a `;`-separated rule list. Empty input yields no rules.
///
/// # Errors
/// The first malformed rule, with the reason.
pub fn parse_rules(spec: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        rules.push(parse_rule(part).map_err(|e| format!("rule {part:?}: {e}"))?);
    }
    let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != rules.len() {
        return Err("duplicate rule names".to_string());
    }
    Ok(rules)
}

fn parse_rule(text: &str) -> Result<AlertRule, String> {
    let (name, rest) = text.split_once(':').ok_or("missing ':' after rule name")?;
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
    {
        return Err(format!(
            "rule name must be non-empty [A-Za-z0-9_.-]+, got {name:?}"
        ));
    }
    // `,for=N` is the only top-level comma clause; commas inside burn(...)
    // parentheses belong to the expression.
    let (body, for_slots) = match split_top_level_for(rest) {
        Some((body, for_text)) => {
            let n: u64 = for_text
                .trim()
                .parse()
                .map_err(|_| format!("bad for= count {for_text:?}"))?;
            if n == 0 {
                return Err("for= count must be >= 1".to_string());
            }
            (body, n)
        }
        None => (rest, 1),
    };
    let (expr_text, cmp, threshold_text) = split_comparison(body)?;
    let threshold: f64 = threshold_text
        .trim()
        .parse()
        .map_err(|_| format!("bad threshold {threshold_text:?}"))?;
    if !threshold.is_finite() {
        return Err(format!("threshold must be finite, got {threshold}"));
    }
    let expr = parse_expr(expr_text.trim())?;
    Ok(AlertRule {
        name: name.to_string(),
        expr,
        cmp,
        threshold,
        for_slots,
    })
}

/// Splits `body,for=N` at the top level (outside parentheses).
fn split_top_level_for(text: &str) -> Option<(&str, &str)> {
    let mut depth = 0usize;
    for (idx, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                let clause = text[idx + 1..].trim();
                let for_text = clause.strip_prefix("for=")?;
                return Some((&text[..idx], for_text));
            }
            _ => {}
        }
    }
    None
}

/// Splits `EXPR CMP NUMBER` at the top-level comparison operator.
fn split_comparison(text: &str) -> Result<(&str, Cmp, &str), String> {
    let mut depth = 0usize;
    for (idx, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '>' if depth == 0 => return Ok((&text[..idx], Cmp::Above, &text[idx + 1..])),
            '<' if depth == 0 => return Ok((&text[..idx], Cmp::Below, &text[idx + 1..])),
            _ => {}
        }
    }
    Err("missing comparison ('>' or '<')".to_string())
}

fn parse_expr(text: &str) -> Result<Expr, String> {
    if let Some(inner) = text
        .strip_prefix("ratio(")
        .and_then(|t| t.strip_suffix(')'))
    {
        let (a, b) = inner
            .split_once('/')
            .ok_or("ratio needs 'ratio(a/b)' form")?;
        return Ok(Expr::Ratio(Signal::parse(a)?, Signal::parse(b)?));
    }
    if let Some(inner) = text.strip_prefix("burn(").and_then(|t| t.strip_suffix(')')) {
        let mut signal = None;
        let mut window = None;
        let mut budget = None;
        for (idx, clause) in inner.split(',').enumerate() {
            let clause = clause.trim();
            if idx == 0 {
                signal = Some(Signal::parse(clause)?);
            } else if let Some(value) = clause.strip_prefix("window=") {
                window = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad window {value:?}"))?,
                );
            } else if let Some(value) = clause.strip_prefix("budget=") {
                budget = Some(
                    value
                        .parse::<f64>()
                        .map_err(|_| format!("bad budget {value:?}"))?,
                );
            } else {
                return Err(format!("unknown burn clause {clause:?}"));
            }
        }
        let signal = signal.ok_or("burn needs a signal")?;
        let window = window.ok_or("burn needs window=N")?;
        let budget = budget.ok_or("burn needs budget=X")?;
        if window == 0 {
            return Err("burn window must be >= 1".to_string());
        }
        if !(budget.is_finite() && budget > 0.0) {
            return Err(format!("burn budget must be positive, got {budget}"));
        }
        return Ok(Expr::Burn {
            signal,
            window,
            budget,
        });
    }
    Ok(Expr::Signal(Signal::parse(text)?))
}

/// Per-rule evaluation state.
#[derive(Debug, Clone)]
struct RuleState {
    /// Consecutive slots the condition has held.
    held: u64,
    /// Currently firing?
    firing: bool,
    /// Slot of the last `alert.fire`.
    fired_at: u64,
    /// Last defined expression value (reported by `alert.resolve` when
    /// the signal disappears rather than drops).
    last_value: f64,
    /// Burn rules: trailing signal samples, newest last (`window + 1`
    /// entries at most).
    history: VecDeque<f64>,
}

/// Evaluates a rule set once per slot; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
}

impl AlertEngine {
    /// An engine over the given rules.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleState {
                held: 0,
                firing: false,
                fired_at: 0,
                last_value: 0.0,
                history: VecDeque::new(),
            })
            .collect();
        AlertEngine { rules, states }
    }

    /// The rule set.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Rules currently firing.
    pub fn active_count(&self) -> u64 {
        self.states.iter().filter(|s| s.firing).count() as u64
    }

    /// Evaluates every rule against the end-of-slot health summary,
    /// returning the `alert.fire` / `alert.resolve` events this slot
    /// produced (usually none). Call exactly once per `slot` event, after
    /// folding it.
    pub fn evaluate(&mut self, health: &Health) -> Vec<Event> {
        let slot = health.slot;
        let mut out = Vec::new();
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            let value = match &rule.expr {
                Expr::Signal(signal) => signal.value(health),
                Expr::Ratio(a, b) => match (a.value(health), b.value(health)) {
                    // verify: allow(float-eq): exact-zero skip — a zero denominator makes the ratio undefined
                    (Some(a), Some(b)) if b != 0.0 => Some(a / b),
                    _ => None,
                },
                Expr::Burn {
                    signal,
                    window,
                    budget,
                } => {
                    let sample = signal.value(health).unwrap_or(0.0);
                    state.history.push_back(sample);
                    while state.history.len() > (*window as usize + 1) {
                        state.history.pop_front();
                    }
                    let span = state.history.len() - 1;
                    if span == 0 {
                        None
                    } else {
                        let oldest = state.history.front().copied().unwrap_or(sample);
                        Some((sample - oldest) / (span as f64 * budget))
                    }
                }
            };
            if let Some(value) = value {
                state.last_value = value;
            }
            let holds = value.is_some_and(|v| match rule.cmp {
                Cmp::Above => v > rule.threshold,
                Cmp::Below => v < rule.threshold,
            });
            if holds {
                state.held += 1;
                if !state.firing && state.held >= rule.for_slots {
                    state.firing = true;
                    state.fired_at = slot;
                    out.push(
                        Event::new("alert.fire")
                            .field("t", slot)
                            .field("rule", rule.name.clone())
                            .field("signal", rule.expr.label())
                            .field("value", state.last_value)
                            .field("threshold", rule.threshold)
                            .field("for_slots", rule.for_slots),
                    );
                }
            } else {
                state.held = 0;
                if state.firing {
                    state.firing = false;
                    out.push(
                        Event::new("alert.resolve")
                            .field("t", slot)
                            .field("rule", rule.name.clone())
                            .field("value", value.unwrap_or(state.last_value))
                            .field("fired_at", state.fired_at),
                    );
                }
            }
        }
        out
    }

    /// Renders the per-rule engine state as one flat JSON object per
    /// line (parseable by `grefar_obs::json::parse_lines`), the body of
    /// `GET /alerts`. Rule names are `[A-Za-z0-9_.-]+` by construction,
    /// so no escaping is needed.
    pub fn states_json(&self) -> String {
        let mut out = String::new();
        for (rule, state) in self.rules.iter().zip(&self.states) {
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"signal\":\"{}\",\"threshold\":{},\"firing\":{},\"held\":{},\"value\":{}}}\n",
                rule.name,
                rule.expr.label(),
                fmt_f64(rule.threshold),
                state.firing,
                state.held,
                fmt_f64(state.last_value),
            ));
        }
        out
    }
}

/// JSON-safe float rendering (shortest round-trip; non-finite → null).
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Replays a recorded telemetry JSONL document through a fold plus an
/// alert engine, exactly like the live [`MetricsLayer`](crate::MetricsLayer)
/// does: every line is folded, and each `slot` event triggers one engine
/// evaluation. Returns the fold, the engine (with final state), and the
/// generated `alert.fire` / `alert.resolve` events in order.
///
/// Recorded `alert.*` lines in the document are folded like any other
/// event but do not feed the engine, so replaying a stream that already
/// carries alerts regenerates the identical alert sequence.
///
/// # Errors
/// The first unparsable line, with its line number.
pub fn replay_jsonl(
    rules: Vec<AlertRule>,
    text: &str,
) -> Result<(crate::MetricsFold, AlertEngine, Vec<Event>), String> {
    let mut fold = crate::MetricsFold::new(false);
    let mut engine = AlertEngine::new(rules);
    let mut generated = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let object =
            grefar_obs::json::parse_object(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let name = object
            .get("event")
            .and_then(grefar_obs::json::JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        fold.fold_json(&object);
        if name == "slot" {
            generated.extend(engine.evaluate(&fold.health()));
        }
    }
    Ok((fold, engine, generated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::Verdict;

    fn health(slot: u64) -> Health {
        Health {
            verdict: Verdict::Ok,
            slot,
            queue_peak: 0.0,
            queue_bound: None,
            occupancy_pct: None,
            invariant_violations: 0,
            degraded_events: 0,
            stale_events: 0,
            open_breakers: 0,
            checkpoint_age_slots: None,
            active_alerts: None,
        }
    }

    #[test]
    fn parses_the_three_rule_forms() {
        let rules = parse_rules(
            "hot:occupancy_pct>80,for=3; \
             rate:ratio(degraded_events/slots)>0.05; \
             burny:burn(stale_events,window=50,budget=0.1)>1",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].name, "hot");
        assert_eq!(rules[0].for_slots, 3);
        assert_eq!(rules[0].cmp, Cmp::Above);
        assert_eq!(rules[1].expr.label(), "ratio(degraded_events/slots)");
        assert!(matches!(
            rules[2].expr,
            Expr::Burn {
                signal: Signal::StaleEvents,
                window: 50,
                ..
            }
        ));
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "noexpr",
            "x:unknown_signal>1",
            "x:occupancy_pct>nan_text",
            "x:occupancy_pct>80,for=0",
            "x:burn(stale_events,window=0,budget=0.1)>1",
            "x:burn(stale_events,window=5,budget=0)>1",
            "a b:slots>1",
            "dup:slots>1;dup:slots>2",
        ] {
            assert!(parse_rules(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_rules("").unwrap().is_empty());
    }

    #[test]
    fn threshold_rule_fires_after_hold_and_resolves() {
        let rules = parse_rules("deg:degraded_events>0,for=2").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut h = health(0);
        assert!(engine.evaluate(&h).is_empty());
        h.slot = 1;
        h.degraded_events = 1;
        assert!(engine.evaluate(&h).is_empty()); // held 1 of 2
        h.slot = 2;
        let fired = engine.evaluate(&h);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].name(), "alert.fire");
        assert_eq!(engine.active_count(), 1);
        h.slot = 3;
        assert!(engine.evaluate(&h).is_empty()); // still firing, no re-fire
        h.slot = 4;
        h.degraded_events = 0;
        let resolved = engine.evaluate(&h);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].name(), "alert.resolve");
        assert_eq!(engine.active_count(), 0);
    }

    #[test]
    fn undefined_signals_never_fire() {
        let rules = parse_rules("occ:occupancy_pct>0;age:checkpoint_age_slots>0").unwrap();
        let mut engine = AlertEngine::new(rules);
        for slot in 0..10 {
            assert!(engine.evaluate(&health(slot)).is_empty());
        }
    }

    #[test]
    fn ratio_rule_divides_signals() {
        let rules = parse_rules("rate:ratio(degraded_events/slots)>0.5").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut h = health(0);
        h.degraded_events = 1; // 1 / 1 slot = 1.0 > 0.5
        let fired = engine.evaluate(&h);
        assert_eq!(fired.len(), 1);
        h.slot = 9; // 1 / 10 slots = 0.1
        let resolved = engine.evaluate(&h);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].name(), "alert.resolve");
    }

    #[test]
    fn burn_rule_rates_windowed_consumption() {
        let rules = parse_rules("b:burn(stale_events,window=2,budget=1)>1").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut h = health(0);
        assert!(engine.evaluate(&h).is_empty()); // no window yet
        h.slot = 1;
        h.stale_events = 5; // (5-0)/(1·1) = 5 > 1
        let fired = engine.evaluate(&h);
        assert_eq!(fired.len(), 1);
        h.slot = 2;
        h.stale_events = 5;
        h.slot = 3;
        let _ = engine.evaluate(&h); // (5-0)/(2·1) = 2.5, still firing
        assert_eq!(engine.active_count(), 1);
        h.slot = 4;
        let resolved = engine.evaluate(&h); // window now flat: (5-5)/(2·1) = 0
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].name(), "alert.resolve");
    }

    #[test]
    fn states_json_is_flat_and_parseable() {
        let rules = parse_rules("deg:degraded_events>0").unwrap();
        let mut engine = AlertEngine::new(rules);
        let mut h = health(0);
        h.degraded_events = 2;
        engine.evaluate(&h);
        let parsed = grefar_obs::json::parse_lines(&engine.states_json()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0]["rule"].as_str(), Some("deg"));
        assert_eq!(parsed[0]["firing"].as_bool(), Some(true));
        assert_eq!(parsed[0]["value"].as_f64(), Some(2.0));
    }

    #[test]
    fn replay_regenerates_an_identical_alert_stream() {
        let mut text = String::new();
        for t in 0..4u64 {
            if t == 1 {
                text.push_str(
                    &Event::new("degraded.mode")
                        .field("t", t)
                        .field("reason", "dc_offline")
                        .to_json_with_schema(1),
                );
                text.push('\n');
            }
            text.push_str(
                &Event::new("slot")
                    .field("t", t)
                    .field("queue_central", 0.0)
                    .field("queue_local", 0.0)
                    .field("queue_max", 0.0)
                    .field("energy", 0.0)
                    .field("arrivals", 0.0)
                    .field("dropped", 0_u64)
                    .to_json_with_schema(1),
            );
            text.push('\n');
        }
        let rules = parse_rules("deg:degraded_events>0").unwrap();
        let (_, engine, first) = replay_jsonl(rules.clone(), &text).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(engine.active_count(), 1);
        // Appending the generated alerts to the stream and replaying again
        // yields the same alerts: recorded alert.* lines don't feed back.
        let mut with_alerts = text.clone();
        for event in &first {
            with_alerts.push_str(&event.to_json_with_schema(1));
            with_alerts.push('\n');
        }
        let (_, _, second) = replay_jsonl(rules, &with_alerts).unwrap();
        let render = |events: &[Event]| -> Vec<String> {
            events.iter().map(|e| e.to_json_with_schema(1)).collect()
        };
        assert_eq!(render(&first), render(&second));
    }
}
