//! Folding the workspace event stream into metric aggregates.
//!
//! [`MetricsFold`] is the single source of truth for how telemetry events
//! become Prometheus series: the live [`MetricsLayer`](crate::MetricsLayer)
//! and the offline `grefar-report metrics` rebuild both drive this type,
//! so a snapshot taken live and a fold of the same JSONL stream agree
//! (the kill/resume rebuild test pins this).
//!
//! Wall-clock (`_us`) fields are only folded when `include_timings` is on:
//! live snapshots want them, offline rebuilds exclude them so the output
//! is deterministic per seed (mirroring the determinism diff's `_us`
//! convention).

use std::collections::{BTreeMap, BTreeSet};

use grefar_obs::json::JsonValue;
use grefar_obs::{Event, Value};

use crate::health::{Health, Verdict};
use crate::registry::Registry;

/// Histogram bounds for microsecond timings (slot / decide / LP solve).
pub const DURATION_US_BUCKETS: &[f64] = &[
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
];

/// A uniform read-only view over a live [`Event`] and a parsed JSONL
/// object, so the fold logic exists once.
enum Fields<'a> {
    Live(&'a Event),
    Json(&'a BTreeMap<String, JsonValue>),
}

impl Fields<'_> {
    fn name(&self) -> &str {
        match self {
            Fields::Live(event) => event.name(),
            Fields::Json(obj) => obj.get("event").and_then(JsonValue::as_str).unwrap_or(""),
        }
    }

    fn f64(&self, key: &str) -> Option<f64> {
        match self {
            Fields::Live(event) => match event.get(key)? {
                Value::U64(v) => Some(*v as f64),
                Value::I64(v) => Some(*v as f64),
                Value::F64(v) => Some(*v),
                _ => None,
            },
            Fields::Json(obj) => obj.get(key).and_then(JsonValue::as_f64),
        }
    }

    fn str(&self, key: &str) -> Option<&str> {
        match self {
            Fields::Live(event) => match event.get(key)? {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            },
            Fields::Json(obj) => obj.get(key).and_then(JsonValue::as_str),
        }
    }
}

/// Per-run-label health accumulators (the queue-bound check is stated per
/// labeled run, exactly like `grefar-report analyze`).
#[derive(Debug, Clone, Default)]
struct LabelHealth {
    queue_peak: f64,
    queue_bound: Option<f64>,
    invariant_violations: u64,
    degraded_events: u64,
    stale_events: u64,
}

/// Folds the telemetry event stream into a metric [`Registry`] plus
/// [`Health`] state. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct MetricsFold {
    include_timings: bool,
    registry: Registry,
    label: String,
    per_label: BTreeMap<String, LabelHealth>,
    /// Labels that have actually seen a `run.start` (as opposed to being
    /// pre-registered by a `theory.bounds` certificate).
    runs_started: BTreeSet<String>,
    /// Latest breaker state per `(feed, dc)` key: true while open.
    breakers_open: BTreeMap<String, bool>,
    /// Latest firing state per alert rule; empty until any `alert.*`
    /// event is folded (keeps alert-free health snapshots unchanged).
    alerts_firing: BTreeMap<String, bool>,
    last_slot: u64,
    last_checkpoint: Option<u64>,
    events: u64,
}

impl MetricsFold {
    /// A fresh fold. `include_timings` controls whether `_us` fields feed
    /// duration histograms (live snapshots: yes; deterministic offline
    /// rebuilds: no).
    pub fn new(include_timings: bool) -> Self {
        MetricsFold {
            include_timings,
            registry: Registry::new(),
            label: String::new(),
            per_label: BTreeMap::new(),
            runs_started: BTreeSet::new(),
            breakers_open: BTreeMap::new(),
            alerts_firing: BTreeMap::new(),
            last_slot: 0,
            last_checkpoint: None,
            events: 0,
        }
    }

    /// Folds one live event.
    pub fn fold_event(&mut self, event: &Event) {
        self.fold(&Fields::Live(event));
    }

    /// Folds one parsed JSONL object (as produced by
    /// `grefar_obs::json::parse_object`; the `schema` key is ignored).
    pub fn fold_json(&mut self, object: &BTreeMap<String, JsonValue>) {
        self.fold(&Fields::Json(object));
    }

    /// Folds a whole JSONL document, skipping blank lines.
    ///
    /// # Errors
    /// The first unparsable line, with its line number.
    pub fn fold_jsonl(&mut self, text: &str) -> Result<usize, String> {
        let mut folded = 0usize;
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let object = grefar_obs::json::parse_object(line)
                .map_err(|e| format!("line {}: {e}", idx + 1))?;
            self.fold_json(&object);
            folded += 1;
        }
        Ok(folded)
    }

    /// Events folded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The metric registry built so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders the registry as Prometheus text exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// The current health summary (worst verdict across labeled runs).
    pub fn health(&self) -> Health {
        let mut health = Health {
            verdict: Verdict::Ok,
            slot: self.last_slot,
            queue_peak: 0.0,
            queue_bound: None,
            occupancy_pct: None,
            invariant_violations: 0,
            degraded_events: 0,
            stale_events: 0,
            open_breakers: self.breakers_open.values().filter(|open| **open).count() as u64,
            checkpoint_age_slots: self
                .last_checkpoint
                .map(|at| self.last_slot.saturating_sub(at)),
            active_alerts: if self.alerts_firing.is_empty() {
                None
            } else {
                Some(
                    self.alerts_firing
                        .values()
                        .filter(|firing| **firing)
                        .count() as u64,
                )
            },
        };
        for accum in self.per_label.values() {
            health.invariant_violations += accum.invariant_violations;
            health.degraded_events += accum.degraded_events;
            health.stale_events += accum.stale_events;
            if accum.queue_peak > health.queue_peak {
                health.queue_peak = accum.queue_peak;
            }
            if let Some(bound) = accum.queue_bound {
                let occupancy = if bound > 0.0 {
                    100.0 * accum.queue_peak / bound
                } else {
                    100.0
                };
                if health.occupancy_pct.is_none_or(|worst| occupancy > worst) {
                    health.occupancy_pct = Some(occupancy);
                    health.queue_bound = Some(bound);
                }
            }
        }
        // Mirrors `grefar-report analyze --assert-bound`: a run violates
        // when an invariant fired or the peak queue reached the (possibly
        // stale-widened) Theorem 1(a) bound.
        let violating =
            health.invariant_violations > 0 || health.occupancy_pct.is_some_and(|pct| pct >= 100.0);
        let degraded =
            health.degraded_events > 0 || health.stale_events > 0 || health.open_breakers > 0;
        health.verdict = if violating {
            Verdict::Violating
        } else if degraded {
            Verdict::Degraded
        } else {
            Verdict::Ok
        };
        health
    }

    fn accum(&mut self) -> &mut LabelHealth {
        self.per_label.entry(self.label.clone()).or_default()
    }

    fn fold(&mut self, fields: &Fields<'_>) {
        self.events += 1;
        let name = fields.name();
        // verify: match-events(telemetry)
        match name {
            "sweep.run" => {
                if let Some(label) = fields.str("label") {
                    self.label = label.to_string();
                }
            }
            "run.start" => {
                // A sweep marker names the run; a bare run adopts the
                // scheduler's self-description. `runs_started` (not
                // `per_label`) decides whether the current label is free:
                // a `theory.bounds` certificate pre-registers its label's
                // health accumulator before the run begins.
                if self.label.is_empty() || self.runs_started.contains(&self.label) {
                    if let Some(scheduler) = fields.str("scheduler") {
                        if !self.runs_started.contains(scheduler) {
                            self.label = scheduler.to_string();
                        }
                    }
                }
                self.runs_started.insert(self.label.clone());
                self.accum();
                let label = self.label.clone();
                if let Some(horizon) = fields.f64("horizon") {
                    self.registry.gauge_set(
                        "grefar_run_horizon_slots",
                        "Planned horizon of the labeled run, in slots.",
                        &[("scheduler", &label)],
                        horizon,
                    );
                }
            }
            "slot" => self.fold_slot(fields),
            "grefar.decide" => self.fold_decide(fields),
            "lp.solve" => self.fold_lp(fields),
            "run.end" => {
                let label = self.label.clone();
                if let Some(completed) = fields.f64("completed") {
                    self.registry.gauge_set(
                        "grefar_jobs_completed",
                        "Jobs completed over the labeled run.",
                        &[("scheduler", &label)],
                        completed,
                    );
                }
            }
            "theory.bounds" => self.fold_bounds(fields),
            "fault.inject" => {
                let label = self.label.clone();
                let kind = fields.str("kind").unwrap_or("unknown").to_string();
                self.registry.counter_add(
                    "grefar_faults_injected_total",
                    "Fault windows opened by the injection plan.",
                    &[("scheduler", &label), ("kind", &kind)],
                    1.0,
                );
            }
            "degraded.mode" => {
                let reason = fields.str("reason").unwrap_or("unknown").to_string();
                self.accum().degraded_events += 1;
                let label = self.label.clone();
                self.registry.counter_add(
                    "grefar_degraded_events_total",
                    "Slots the solver served through a degradation fallback.",
                    &[("scheduler", &label), ("reason", &reason)],
                    1.0,
                );
            }
            "state.stale" => {
                self.accum().stale_events += 1;
                let label = self.label.clone();
                self.registry.counter_add(
                    "grefar_stale_slots_total",
                    "Slots decided on stale (estimated) feed state.",
                    &[("scheduler", &label)],
                    1.0,
                );
            }
            "invariant.violation" => {
                let kind = fields.str("kind").unwrap_or("unknown").to_string();
                self.accum().invariant_violations += 1;
                let label = self.label.clone();
                self.registry.counter_add(
                    "grefar_invariant_violations_total",
                    "Paper-invariant violations observed at runtime.",
                    &[("scheduler", &label), ("kind", &kind)],
                    1.0,
                );
            }
            "soak.ledger" => {
                let label = self.label.clone();
                if let Some(balance) = fields.f64("balance") {
                    self.registry.gauge_set(
                        "grefar_ledger_balance_jobs",
                        "Signed job-conservation balance (queues minus ledger prediction).",
                        &[("scheduler", &label)],
                        balance,
                    );
                }
                if let Some(excess) = fields.f64("route_excess") {
                    self.registry.gauge_set(
                        "grefar_ledger_route_excess_jobs",
                        "Cumulative phantom work minted by over-routing.",
                        &[("scheduler", &label)],
                        excess,
                    );
                }
            }
            "feed.fetch" => {
                let feed = fields.str("feed").unwrap_or("unknown").to_string();
                let outcome = fields.str("outcome").unwrap_or("unknown").to_string();
                self.registry.counter_add(
                    "grefar_feed_fetch_events_total",
                    "Noteworthy feed fetches (failures, or successes that needed retries).",
                    &[("feed", &feed), ("outcome", &outcome)],
                    1.0,
                );
            }
            "feed.quarantine" => {
                let feed = fields.str("feed").unwrap_or("unknown").to_string();
                self.registry.counter_add(
                    "grefar_feed_quarantined_total",
                    "Feed payloads rejected by validation.",
                    &[("feed", &feed)],
                    1.0,
                );
            }
            "feed.breaker" => self.fold_breaker(fields),
            "checkpoint.write" => {
                if let Some(t) = fields.f64("t") {
                    self.last_checkpoint = Some(t as u64);
                }
                let label = self.label.clone();
                self.registry.counter_add(
                    "grefar_checkpoint_writes_total",
                    "Checkpoints written by the run policy.",
                    &[("scheduler", &label)],
                    1.0,
                );
            }
            "admission.accept" => {
                self.registry.counter_add(
                    "grefar_admission_accepted_total",
                    "Job submissions the daemon admitted into future slots.",
                    &[],
                    1.0,
                );
            }
            "admission.reject" => {
                let reason = fields.str("reason").unwrap_or("unknown").to_string();
                self.registry.counter_add(
                    "grefar_admission_rejected_total",
                    "Job submissions the daemon rejected (shedding, draining, malformed).",
                    &[("reason", &reason)],
                    1.0,
                );
            }
            "served.restart" => {
                let actor = fields.str("actor").unwrap_or("unknown").to_string();
                self.registry.counter_add(
                    "grefar_actor_restarts_total",
                    "Actors the daemon's supervisor restarted after a crash or stall.",
                    &[("actor", &actor)],
                    1.0,
                );
            }
            "checkpoint.truncated" => {
                self.registry.counter_add(
                    "grefar_checkpoint_truncations_total",
                    "Checkpoint loads that recovered past a corrupt trailing record.",
                    &[],
                    1.0,
                );
            }
            "alert.fire" => {
                let rule = fields.str("rule").unwrap_or("unknown").to_string();
                self.alerts_firing.insert(rule.clone(), true);
                self.registry.counter_add(
                    "grefar_alerts_fired_total",
                    "Alert rules that entered the firing state.",
                    &[("rule", &rule)],
                    1.0,
                );
                self.registry.gauge_set(
                    "grefar_alert_firing",
                    "1 while the alert rule is firing, 0 otherwise.",
                    &[("rule", &rule)],
                    1.0,
                );
            }
            "alert.resolve" => {
                let rule = fields.str("rule").unwrap_or("unknown").to_string();
                self.alerts_firing.insert(rule.clone(), false);
                self.registry.counter_add(
                    "grefar_alerts_resolved_total",
                    "Alert rules that cleared after firing.",
                    &[("rule", &rule)],
                    1.0,
                );
                self.registry.gauge_set(
                    "grefar_alert_firing",
                    "1 while the alert rule is firing, 0 otherwise.",
                    &[("rule", &rule)],
                    0.0,
                );
            }
            // Introspection events carry no per-run metrics: spans are
            // profiler output, decision.explain is provenance detail the
            // decide fold already aggregates, and health snapshots are
            // *derived from* this fold — folding them back in would
            // double-count. The daemon's lifecycle brackets are likewise
            // markers only; everything countable about them (admissions,
            // restarts) arrives as its own event above.
            "decision.explain" | "profile.span" | "health.snapshot" | "served.start"
            | "served.stop" => {}
            _ => {}
        }
    }

    fn fold_slot(&mut self, fields: &Fields<'_>) {
        let label = self.label.clone();
        let labels = [("scheduler", label.as_str())];
        if let Some(t) = fields.f64("t") {
            self.last_slot = t as u64;
        }
        self.registry
            .counter_add("grefar_slots_total", "Slots executed.", &labels, 1.0);
        if let Some(energy) = fields.f64("energy") {
            self.registry.counter_add(
                "grefar_energy_cost_total",
                "Accumulated energy cost g(t).",
                &labels,
                energy,
            );
        }
        if let Some(arrivals) = fields.f64("arrivals") {
            self.registry.counter_add(
                "grefar_jobs_arrived_total",
                "Jobs arrived.",
                &labels,
                arrivals,
            );
        }
        if let Some(dropped) = fields.f64("dropped") {
            if dropped > 0.0 {
                self.registry.counter_add(
                    "grefar_jobs_dropped_total",
                    "Jobs dropped by admission control.",
                    &labels,
                    dropped,
                );
            }
        }
        let central = fields.f64("queue_central");
        let local = fields.f64("queue_local");
        if let Some(central) = central {
            self.registry.gauge_set(
                "grefar_queue_jobs",
                "Current queue backlog, central vs local.",
                &[("scheduler", &label), ("queue", "central")],
                central,
            );
        }
        if let Some(local) = local {
            self.registry.gauge_set(
                "grefar_queue_jobs",
                "Current queue backlog, central vs local.",
                &[("scheduler", &label), ("queue", "local")],
                local,
            );
        }
        if let Some(queue_max) = fields.f64("queue_max") {
            self.registry.gauge_set(
                "grefar_queue_max_jobs",
                "Longest single queue this slot.",
                &labels,
                queue_max,
            );
            let accum = self.accum();
            if queue_max > accum.queue_peak {
                accum.queue_peak = queue_max;
            }
            let (peak, bound) = {
                let accum = self.accum();
                (accum.queue_peak, accum.queue_bound)
            };
            self.registry.gauge_set(
                "grefar_queue_peak_jobs",
                "Peak of the longest single queue over the run.",
                &labels,
                peak,
            );
            if let Some(bound) = bound {
                self.set_occupancy(&label, peak, bound);
            }
        }
        if self.include_timings {
            if let Some(wall) = fields.f64("wall_us") {
                self.registry.histogram_observe(
                    "grefar_slot_duration_us",
                    "Wall time per slot, microseconds.",
                    DURATION_US_BUCKETS,
                    &labels,
                    wall,
                );
            }
        }
        if let Some(age) = self
            .last_checkpoint
            .map(|at| self.last_slot.saturating_sub(at))
        {
            self.registry.gauge_set(
                "grefar_checkpoint_age_slots",
                "Slots since the last checkpoint write.",
                &labels,
                age as f64,
            );
        }
    }

    fn fold_decide(&mut self, fields: &Fields<'_>) {
        let label = self.label.clone();
        let labels = [("scheduler", label.as_str())];
        let solver = fields.str("solver").unwrap_or("unknown").to_string();
        self.registry.counter_add(
            "grefar_decisions_total",
            "Per-slot decisions, by solver path.",
            &[("scheduler", &label), ("solver", &solver)],
            1.0,
        );
        if let Some(iters) = fields.f64("fw_iterations") {
            if iters > 0.0 {
                self.registry.counter_add(
                    "grefar_fw_iterations_total",
                    "Frank-Wolfe iterations spent.",
                    &labels,
                    iters,
                );
            }
        }
        if self.include_timings {
            if let Some(wall) = fields.f64("wall_us") {
                self.registry.histogram_observe(
                    "grefar_decide_duration_us",
                    "Wall time per drift-plus-penalty solve, microseconds.",
                    DURATION_US_BUCKETS,
                    &labels,
                    wall,
                );
            }
        }
    }

    fn fold_lp(&mut self, fields: &Fields<'_>) {
        let label = self.label.clone();
        let labels = [("scheduler", label.as_str())];
        let pivots =
            fields.f64("pivots_phase1").unwrap_or(0.0) + fields.f64("pivots_phase2").unwrap_or(0.0);
        self.registry.counter_add(
            "grefar_lp_pivots_total",
            "Simplex pivots spent by the MPC baseline.",
            &labels,
            pivots,
        );
        if self.include_timings {
            if let Some(wall) = fields.f64("wall_us") {
                self.registry.histogram_observe(
                    "grefar_lp_solve_duration_us",
                    "Wall time per LP solve, microseconds.",
                    DURATION_US_BUCKETS,
                    &labels,
                    wall,
                );
            }
        }
    }

    fn fold_bounds(&mut self, fields: &Fields<'_>) {
        // theory.bounds names its run explicitly; fall back to the current
        // label for streams that predate the `label` field.
        let label = fields
            .str("label")
            .map(str::to_string)
            .unwrap_or_else(|| self.label.clone());
        let bound = fields
            .f64("stale_queue_bound")
            .or_else(|| fields.f64("queue_bound"));
        let Some(bound) = bound else { return };
        self.per_label.entry(label.clone()).or_default().queue_bound = Some(bound);
        self.registry.gauge_set(
            "grefar_queue_bound_jobs",
            "Theorem 1(a) queue bound (stale-widened when the run declares staleness).",
            &[("scheduler", &label)],
            bound,
        );
        let peak = self.per_label[&label].queue_peak;
        self.set_occupancy(&label, peak, bound);
    }

    fn set_occupancy(&mut self, label: &str, peak: f64, bound: f64) {
        let occupancy = if bound > 0.0 {
            100.0 * peak / bound
        } else {
            100.0
        };
        self.registry.gauge_set(
            "grefar_queue_occupancy_percent",
            "Peak queue length as a percentage of the Theorem 1(a) bound.",
            &[("scheduler", label)],
            occupancy,
        );
    }

    fn fold_breaker(&mut self, fields: &Fields<'_>) {
        let feed = fields.str("feed").unwrap_or("unknown").to_string();
        let dc = fields
            .f64("dc")
            .map(|dc| format!("{}", dc as u64))
            .unwrap_or_default();
        let to = fields.str("to").unwrap_or("unknown").to_string();
        let state = match to.as_str() {
            "closed" => 0.0,
            "half_open" | "half-open" => 1.0,
            "open" => 2.0,
            _ => -1.0,
        };
        self.breakers_open
            .insert(format!("{feed}/{dc}"), to == "open");
        self.registry.counter_add(
            "grefar_feed_breaker_transitions_total",
            "Circuit-breaker transitions, by target state.",
            &[("feed", &feed), ("dc", &dc), ("to", &to)],
            1.0,
        );
        self.registry.gauge_set(
            "grefar_feed_breaker_state",
            "Circuit-breaker state: 0 closed, 1 half-open, 2 open.",
            &[("feed", &feed), ("dc", &dc)],
            state,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_obs::Event;

    fn slot_event(t: u64, queue_max: f64) -> Event {
        Event::new("slot")
            .field("t", t)
            .field("queue_central", 4.0)
            .field("queue_local", 2.0)
            .field("queue_max", queue_max)
            .field("energy", 0.5)
            .field("arrivals", 3.0)
            .field("dropped", 0_u64)
            .field("wall_us", 120_u64)
    }

    /// Registry-sync fixture: every telemetry event the registry can
    /// declare — required-only and with optionals — folds without error,
    /// and the live fold agrees with the offline (JSONL) fold on the
    /// synthesized stream. Run together with the verifier's
    /// `event-schema` match-coverage check, this proves the fold and the
    /// registry cannot drift apart in either direction.
    #[test]
    fn registry_synthesized_events_fold_cleanly() {
        use grefar_obs::schema::{self, Channel};
        let mut live = MetricsFold::new(true);
        let mut text = String::new();
        for sch in schema::EVENTS
            .iter()
            .filter(|s| s.channel == Channel::Telemetry)
        {
            for include_optional in [false, true] {
                let event = schema::synthesize(sch, include_optional);
                live.fold_event(&event);
                text.push_str(&event.to_json_with_schema(1));
                text.push('\n');
            }
        }
        assert!(live.events() > 0);
        let mut offline = MetricsFold::new(true);
        offline.fold_jsonl(&text).unwrap();
        assert_eq!(live.render(), offline.render());
    }

    #[test]
    fn live_and_json_folds_agree() {
        let events = vec![
            Event::new("run.start")
                .field("scheduler", "GreFar")
                .field("horizon", 2_u64),
            slot_event(0, 5.0),
            slot_event(1, 7.0),
            Event::new("run.end")
                .field("slots", 2_u64)
                .field("completed", 4_u64)
                .field("dropped", 0_u64)
                .field("wall_us", 99_u64),
        ];
        let mut live = MetricsFold::new(true);
        let mut text = String::new();
        for event in &events {
            live.fold_event(event);
            text.push_str(&event.to_json_with_schema(1));
            text.push('\n');
        }
        let mut offline = MetricsFold::new(true);
        offline.fold_jsonl(&text).unwrap();
        assert_eq!(live.render(), offline.render());
        assert_eq!(
            live.registry()
                .scalar("grefar_slots_total", &[("scheduler", "GreFar")]),
            Some(2.0)
        );
    }

    #[test]
    fn occupancy_tracks_peak_over_bound() {
        let mut fold = MetricsFold::new(false);
        fold.fold_event(
            &Event::new("run.start")
                .field("scheduler", "g")
                .field("horizon", 9_u64),
        );
        fold.fold_event(
            &Event::new("theory.bounds")
                .field("label", "g")
                .field("queue_bound", 20.0),
        );
        fold.fold_event(&slot_event(0, 5.0));
        fold.fold_event(&slot_event(1, 4.0));
        let occ = fold
            .registry()
            .scalar("grefar_queue_occupancy_percent", &[("scheduler", "g")])
            .unwrap();
        assert!((occ - 25.0).abs() < 1e-9, "{occ}");
        let health = fold.health();
        assert_eq!(health.verdict, Verdict::Ok);
        assert!((health.queue_peak - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stale_widened_bound_is_preferred() {
        let mut fold = MetricsFold::new(false);
        fold.fold_event(
            &Event::new("theory.bounds")
                .field("label", "g")
                .field("queue_bound", 10.0)
                .field("stale_slots", 2_u64)
                .field("stale_queue_bound", 30.0),
        );
        assert_eq!(
            fold.registry()
                .scalar("grefar_queue_bound_jobs", &[("scheduler", "g")]),
            Some(30.0)
        );
    }

    #[test]
    fn verdict_degrades_and_violates() {
        let mut fold = MetricsFold::new(false);
        fold.fold_event(
            &Event::new("run.start")
                .field("scheduler", "g")
                .field("horizon", 9_u64),
        );
        assert_eq!(fold.health().verdict, Verdict::Ok);
        fold.fold_event(
            &Event::new("degraded.mode")
                .field("t", 3_u64)
                .field("reason", "offline_dc"),
        );
        assert_eq!(fold.health().verdict, Verdict::Degraded);
        fold.fold_event(
            &Event::new("invariant.violation")
                .field("t", 4_u64)
                .field("kind", "capacity")
                .field("detail", "x"),
        );
        assert_eq!(fold.health().verdict, Verdict::Violating);
    }

    #[test]
    fn breaker_state_round_trips() {
        let mut fold = MetricsFold::new(false);
        fold.fold_event(
            &Event::new("feed.breaker")
                .field("t", 5_u64)
                .field("feed", "price")
                .field("dc", 1_u64)
                .field("from", "closed")
                .field("to", "open"),
        );
        assert_eq!(fold.health().open_breakers, 1);
        assert_eq!(
            fold.registry().scalar(
                "grefar_feed_breaker_state",
                &[("feed", "price"), ("dc", "1")]
            ),
            Some(2.0)
        );
        fold.fold_event(
            &Event::new("feed.breaker")
                .field("t", 9_u64)
                .field("feed", "price")
                .field("dc", 1_u64)
                .field("from", "open")
                .field("to", "half_open"),
        );
        assert_eq!(fold.health().open_breakers, 0);
    }

    #[test]
    fn timings_are_excluded_unless_requested() {
        let mut with = MetricsFold::new(true);
        let mut without = MetricsFold::new(false);
        with.fold_event(&slot_event(0, 1.0));
        without.fold_event(&slot_event(0, 1.0));
        assert!(with.render().contains("grefar_slot_duration_us"));
        assert!(!without.render().contains("grefar_slot_duration_us"));
    }

    #[test]
    fn alert_events_track_firing_state() {
        let mut fold = MetricsFold::new(false);
        assert_eq!(fold.health().active_alerts, None);
        fold.fold_event(
            &Event::new("alert.fire")
                .field("t", 3_u64)
                .field("rule", "deg")
                .field("signal", "degraded_events")
                .field("value", 2.0)
                .field("threshold", 0.0)
                .field("for_slots", 1_u64),
        );
        assert_eq!(fold.health().active_alerts, Some(1));
        assert_eq!(
            fold.registry()
                .scalar("grefar_alert_firing", &[("rule", "deg")]),
            Some(1.0)
        );
        fold.fold_event(
            &Event::new("alert.resolve")
                .field("t", 7_u64)
                .field("rule", "deg")
                .field("value", 0.0)
                .field("fired_at", 3_u64),
        );
        assert_eq!(fold.health().active_alerts, Some(0));
        assert_eq!(
            fold.registry()
                .scalar("grefar_alerts_resolved_total", &[("rule", "deg")]),
            Some(1.0)
        );
    }

    #[test]
    fn checkpoint_age_tracks_slots_since_write() {
        let mut fold = MetricsFold::new(false);
        fold.fold_event(&slot_event(0, 1.0));
        assert_eq!(fold.health().checkpoint_age_slots, None);
        fold.fold_event(&Event::new("checkpoint.write").field("t", 1_u64));
        fold.fold_event(&slot_event(1, 1.0));
        fold.fold_event(&slot_event(2, 1.0));
        assert_eq!(fold.health().checkpoint_age_slots, Some(1));
        let age = fold
            .registry()
            .scalar("grefar_checkpoint_age_slots", &[("scheduler", "")])
            .unwrap();
        assert!((age - 1.0).abs() < 1e-12);
    }
}
