//! The live metrics layer: an [`Observer`] middleware that folds every
//! event into a [`MetricsFold`] while forwarding it to the wrapped sink.
//!
//! The layer periodically (every `snapshot_every_slots` slots) refreshes
//! the snapshot surface: a `health.snapshot` event into the inner sink,
//! an atomic (`tmp` + rename) dump of the Prometheus exposition to the
//! configured path, and the shared in-memory snapshot the
//! [`MetricsServer`](crate::MetricsServer) serves from. [`finish`]
//! (`MetricsLayer::finish`) flushes one final snapshot; runs that resume
//! from a checkpoint pre-seed the fold from the truncated telemetry file
//! via [`MetricsLayer::prefold_jsonl`] so aggregates rebuild identically.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use grefar_obs::{Event, Observer};

use crate::alerts::{AlertEngine, AlertRule};
use crate::fold::MetricsFold;
use crate::health::Health;

/// Where periodic exposition snapshots go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotSink {
    /// No file dumps (the shared handle / listener may still be live).
    None,
    /// Atomic `tmp` + rename dumps to this path.
    File(PathBuf),
    /// One dump to stdout at [`MetricsLayer::finish`] (stdout cannot be
    /// rewritten in place).
    Stdout,
}

/// Configuration for [`MetricsLayer`].
#[derive(Debug, Clone)]
pub struct MetricsConfig {
    /// Where to dump exposition text.
    pub sink: SnapshotSink,
    /// Refresh the snapshot surface every this many `slot` events.
    pub snapshot_every_slots: u64,
    /// Fold `_us` timing fields into duration histograms (live default:
    /// on; deterministic offline rebuilds turn it off).
    pub include_timings: bool,
    /// Emit `health.snapshot` events into the wrapped sink on refresh.
    pub emit_health_events: bool,
    /// Alert rules evaluated once per `slot` event (see
    /// [`alerts`](crate::alerts)); empty disables the engine entirely.
    pub rules: Vec<AlertRule>,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            sink: SnapshotSink::None,
            snapshot_every_slots: 64,
            include_timings: true,
            emit_health_events: true,
            rules: Vec::new(),
        }
    }
}

/// The shared snapshot read by the HTTP listener.
#[derive(Debug, Clone, Default)]
pub struct SharedSnapshot {
    /// Prometheus text exposition of the current registry.
    pub exposition: String,
    /// Flat JSON body for `GET /healthz`.
    pub health_json: String,
    /// The current verdict label (`ok` / `degraded` / `violating`).
    pub verdict: String,
    /// Per-rule engine state for `GET /alerts` (one flat JSON object per
    /// line; empty when no rules are configured).
    pub alerts_json: String,
}

/// Handle to the snapshot shared between the run thread and the listener.
pub type SharedHandle = Arc<Mutex<SharedSnapshot>>;

/// Allocates a fresh, empty [`SharedHandle`].
pub fn shared_handle() -> SharedHandle {
    Arc::new(Mutex::new(SharedSnapshot::default()))
}

/// Observer middleware folding events into metrics. See the
/// [module docs](self).
///
/// Generic over the wrapped sink so callers can either own the inner
/// observer (`MetricsLayer<Telemetry>`) or borrow it
/// (`MetricsLayer<&mut MemoryObserver>`, via the blanket `&mut T`
/// forwarding impl in `grefar_obs`).
pub struct MetricsLayer<I: Observer> {
    inner: I,
    fold: MetricsFold,
    engine: Option<AlertEngine>,
    config: MetricsConfig,
    shared: Option<SharedHandle>,
    slots_since_snapshot: u64,
    last_error: Option<String>,
}

impl<I: Observer> MetricsLayer<I> {
    /// Wraps `inner` with fresh fold state.
    pub fn new(inner: I, config: MetricsConfig) -> Self {
        let include_timings = config.include_timings;
        let engine = if config.rules.is_empty() {
            None
        } else {
            Some(AlertEngine::new(config.rules.clone()))
        };
        MetricsLayer {
            inner,
            fold: MetricsFold::new(include_timings),
            engine,
            config,
            shared: None,
            slots_since_snapshot: 0,
            last_error: None,
        }
    }

    /// Attaches the shared snapshot the HTTP listener serves from.
    pub fn with_shared(mut self, shared: SharedHandle) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Pre-seeds the fold from an existing telemetry JSONL document, so a
    /// resumed run's aggregates continue from the truncated prefix instead
    /// of restarting at zero.
    ///
    /// # Errors
    /// The first unparsable line, with its line number.
    pub fn prefold_jsonl(&mut self, text: &str) -> Result<usize, String> {
        match &mut self.engine {
            None => self.fold.fold_jsonl(text),
            Some(engine) => {
                // Advance the alert engine through the prefix too, so a
                // resumed run's rule state (hold counters, firing flags)
                // continues where the interrupted run left off. The
                // regenerated events are discarded: they are already in
                // the recorded prefix.
                let mut folded = 0usize;
                for (idx, line) in text.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let object = grefar_obs::json::parse_object(line)
                        .map_err(|e| format!("line {}: {e}", idx + 1))?;
                    let is_slot = object
                        .get("event")
                        .and_then(grefar_obs::json::JsonValue::as_str)
                        == Some("slot");
                    self.fold.fold_json(&object);
                    if is_slot {
                        let _ = engine.evaluate(&self.fold.health());
                    }
                    folded += 1;
                }
                Ok(folded)
            }
        }
    }

    /// The current health summary.
    pub fn health(&self) -> Health {
        self.fold.health()
    }

    /// The fold accumulated so far.
    pub fn fold(&self) -> &MetricsFold {
        &self.fold
    }

    /// Refreshes the snapshot surface now, regardless of the slot cadence.
    pub fn snapshot_now(&mut self) {
        self.slots_since_snapshot = 0;
        let health = self.fold.health();
        if self.config.emit_health_events && self.inner.enabled() {
            self.inner.record_event(health.event());
        }
        let exposition = self.fold.render();
        if let Some(shared) = &self.shared {
            if let Ok(mut snap) = shared.lock() {
                snap.exposition = exposition.clone();
                snap.health_json = health.to_json();
                snap.verdict = health.verdict.label().to_string();
                snap.alerts_json = self
                    .engine
                    .as_ref()
                    .map(AlertEngine::states_json)
                    .unwrap_or_default();
            }
        }
        if let SnapshotSink::File(path) = &self.config.sink {
            if let Err(error) = write_atomic(path, &exposition) {
                self.last_error = Some(format!("metrics snapshot {}: {error}", path.display()));
            }
        }
    }

    /// Emits the final snapshot and tears the layer down.
    ///
    /// # Errors
    /// The last snapshot-write failure, if any (snapshots are otherwise
    /// best-effort and never fail the run mid-flight).
    pub fn finish(self) -> Result<Health, String> {
        self.into_parts().1
    }

    /// Like [`finish`](MetricsLayer::finish), but also hands back the
    /// wrapped sink — for owned stacks that still need to flush it (e.g.
    /// the experiment binaries' telemetry summary, or a span profiler
    /// emitting its `profile.span` trailer after the final
    /// `health.snapshot`).
    pub fn into_parts(mut self) -> (I, Result<Health, String>) {
        self.snapshot_now();
        if self.config.sink == SnapshotSink::Stdout {
            let mut stdout = std::io::stdout().lock();
            if let Err(error) = stdout.write_all(self.fold.render().as_bytes()) {
                self.last_error = Some(format!("metrics snapshot to stdout: {error}"));
            }
        }
        let outcome = match self.last_error {
            Some(error) => Err(error),
            None => Ok(self.fold.health()),
        };
        (self.inner, outcome)
    }
}

impl<I: Observer> Observer for MetricsLayer<I> {
    // Always enabled: the fold needs every event even when the wrapped
    // sink is a NullObserver (e.g. `--metrics-listen` without
    // `--telemetry`).
    fn enabled(&self) -> bool {
        true
    }

    fn record_event(&mut self, event: Event) {
        self.fold.fold_event(&event);
        let is_slot = event.name() == "slot";
        if self.inner.enabled() {
            self.inner.record_event(event);
        }
        if is_slot {
            // Alert rules see the end-of-slot health summary. Generated
            // events are folded back into this layer's own fold before
            // forwarding, so the live exposition and an offline rebuild of
            // the recorded stream render identically.
            if let Some(engine) = &mut self.engine {
                for alert in engine.evaluate(&self.fold.health()) {
                    self.fold.fold_event(&alert);
                    if self.inner.enabled() {
                        self.inner.record_event(alert);
                    }
                }
            }
            self.slots_since_snapshot += 1;
            if self.slots_since_snapshot >= self.config.snapshot_every_slots {
                self.snapshot_now();
            }
        }
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.inner.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.inner.set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.inner.record_value(name, value);
    }

    fn profiling(&self) -> bool {
        self.inner.profiling()
    }

    fn span_enter(&mut self, name: &'static str) {
        self.inner.span_enter(name);
    }

    fn span_exit(&mut self, name: &'static str) {
        self.inner.span_exit(name);
    }

    fn span_leaf(&mut self, name: &'static str, count: u64) {
        self.inner.span_leaf(name, count);
    }
}

/// Writes `text` to `path` atomically: full write to a sibling `.tmp`
/// file, then rename over the target (same pattern as the checkpoint
/// store, minus the fsyncs — snapshots are advisory).
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_obs::{MemoryObserver, NullObserver};

    fn slot(t: u64) -> Event {
        Event::new("slot")
            .field("t", t)
            .field("queue_central", 1.0)
            .field("queue_local", 1.0)
            .field("queue_max", 1.0)
            .field("energy", 0.1)
            .field("arrivals", 1.0)
            .field("dropped", 0_u64)
    }

    #[test]
    fn forwards_events_and_folds_them() {
        let mut mem = MemoryObserver::new();
        let mut layer = MetricsLayer::new(&mut mem, MetricsConfig::default());
        layer.record_event(slot(0));
        layer.record_event(slot(1));
        assert_eq!(
            layer
                .fold()
                .registry()
                .scalar("grefar_slots_total", &[("scheduler", "")]),
            Some(2.0)
        );
        drop(layer);
        assert_eq!(mem.event_count("slot"), 2);
    }

    #[test]
    fn snapshots_on_the_slot_cadence() {
        let mut mem = MemoryObserver::new();
        let config = MetricsConfig {
            snapshot_every_slots: 2,
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut mem, config);
        for t in 0..5 {
            layer.record_event(slot(t));
        }
        drop(layer);
        // Slots 2 and 4 cross the cadence.
        assert_eq!(mem.event_count("health.snapshot"), 2);
    }

    #[test]
    fn finish_writes_the_snapshot_file_atomically() {
        let dir = std::env::temp_dir().join("grefar-metrics-layer-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let mut null = NullObserver;
        let config = MetricsConfig {
            sink: SnapshotSink::File(path.clone()),
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut null, config);
        layer.record_event(slot(0));
        layer.finish().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("grefar_slots_total"));
        assert!(crate::lint(&text).is_empty(), "{:?}", crate::lint(&text));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_handle_sees_refreshes() {
        let shared = shared_handle();
        let mut null = NullObserver;
        let config = MetricsConfig {
            snapshot_every_slots: 1,
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut null, config).with_shared(shared.clone());
        layer.record_event(slot(0));
        let snap = shared.lock().unwrap();
        assert!(snap.exposition.contains("grefar_slots_total"));
        assert_eq!(snap.verdict, "ok");
        assert!(snap.health_json.contains("\"verdict\":\"ok\""));
    }

    #[test]
    fn alert_rules_fire_live_and_match_the_offline_replay() {
        let rules = crate::alerts::parse_rules("deg:degraded_events>0").unwrap();
        let mut sink = grefar_obs::JsonlSink::new(Vec::new());
        let config = MetricsConfig {
            include_timings: false,
            emit_health_events: false,
            rules: rules.clone(),
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut sink, config);
        layer.record_event(slot(0));
        layer.record_event(
            Event::new("degraded.mode")
                .field("t", 1_u64)
                .field("reason", "dc_offline"),
        );
        layer.record_event(slot(1));
        assert_eq!(layer.health().active_alerts, Some(1));
        let exposition = layer.fold().render();
        assert!(exposition.contains("grefar_alerts_fired_total"));
        drop(layer);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"event\":\"alert.fire\""));

        // Offline replay of the recorded stream (which now carries the
        // alert.fire line) regenerates the identical alert and renders the
        // identical exposition — the live/offline identity check.
        let (fold, engine, generated) = crate::alerts::replay_jsonl(rules, &text).unwrap();
        assert_eq!(generated.len(), 1);
        assert_eq!(generated[0].name(), "alert.fire");
        assert_eq!(engine.active_count(), 1);
        assert_eq!(fold.render(), exposition);
    }

    #[test]
    fn prefold_advances_the_alert_engine_without_reemitting() {
        let rules = crate::alerts::parse_rules("deg:degraded_events>0").unwrap();
        let prefix = format!(
            "{}\n{}\n",
            Event::new("degraded.mode")
                .field("t", 0_u64)
                .field("reason", "dc_offline")
                .to_json_with_schema(1),
            slot(0).to_json_with_schema(1),
        );
        let mut mem = MemoryObserver::new();
        let config = MetricsConfig {
            include_timings: false,
            emit_health_events: false,
            rules,
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut mem, config);
        layer.prefold_jsonl(&prefix).unwrap();
        // The rule fired inside the prefix: state carries over, and the
        // live continuation neither re-fires nor forwards prefix alerts.
        layer.record_event(slot(1));
        drop(layer);
        assert_eq!(mem.event_count("alert.fire"), 0);
    }

    #[test]
    fn shared_snapshot_carries_alert_state() {
        let shared = shared_handle();
        let mut null = NullObserver;
        let config = MetricsConfig {
            snapshot_every_slots: 1,
            rules: crate::alerts::parse_rules("s:slots>0").unwrap(),
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut null, config).with_shared(shared.clone());
        layer.record_event(slot(0));
        let snap = shared.lock().unwrap();
        assert!(snap.alerts_json.contains("\"rule\":\"s\""));
        assert!(snap.alerts_json.contains("\"firing\":true"));
        assert!(snap.health_json.contains("\"active_alerts\":1"));
    }

    #[test]
    fn prefold_then_live_matches_a_single_fold() {
        let events: Vec<Event> = (0..4).map(slot).collect();
        let text: String = events
            .iter()
            .take(2)
            .map(|e| format!("{}\n", e.to_json_with_schema(1)))
            .collect();
        let mut null = NullObserver;
        let mut resumed = MetricsLayer::new(&mut null, MetricsConfig::default());
        resumed.prefold_jsonl(&text).unwrap();
        for event in &events[2..] {
            resumed.record_event(event.clone());
        }
        let mut whole = MetricsFold::new(true);
        for event in &events {
            whole.fold_event(event);
        }
        assert_eq!(resumed.fold().render(), whole.render());
    }
}
