//! The live metrics layer: an [`Observer`] middleware that folds every
//! event into a [`MetricsFold`] while forwarding it to the wrapped sink.
//!
//! The layer periodically (every `snapshot_every_slots` slots) refreshes
//! the snapshot surface: a `health.snapshot` event into the inner sink,
//! an atomic (`tmp` + rename) dump of the Prometheus exposition to the
//! configured path, and the shared in-memory snapshot the
//! [`MetricsServer`](crate::MetricsServer) serves from. [`finish`]
//! (`MetricsLayer::finish`) flushes one final snapshot; runs that resume
//! from a checkpoint pre-seed the fold from the truncated telemetry file
//! via [`MetricsLayer::prefold_jsonl`] so aggregates rebuild identically.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use grefar_obs::{Event, Observer};

use crate::fold::MetricsFold;
use crate::health::Health;

/// Where periodic exposition snapshots go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotSink {
    /// No file dumps (the shared handle / listener may still be live).
    None,
    /// Atomic `tmp` + rename dumps to this path.
    File(PathBuf),
    /// One dump to stdout at [`MetricsLayer::finish`] (stdout cannot be
    /// rewritten in place).
    Stdout,
}

/// Configuration for [`MetricsLayer`].
#[derive(Debug, Clone)]
pub struct MetricsConfig {
    /// Where to dump exposition text.
    pub sink: SnapshotSink,
    /// Refresh the snapshot surface every this many `slot` events.
    pub snapshot_every_slots: u64,
    /// Fold `_us` timing fields into duration histograms (live default:
    /// on; deterministic offline rebuilds turn it off).
    pub include_timings: bool,
    /// Emit `health.snapshot` events into the wrapped sink on refresh.
    pub emit_health_events: bool,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            sink: SnapshotSink::None,
            snapshot_every_slots: 64,
            include_timings: true,
            emit_health_events: true,
        }
    }
}

/// The shared snapshot read by the HTTP listener.
#[derive(Debug, Clone, Default)]
pub struct SharedSnapshot {
    /// Prometheus text exposition of the current registry.
    pub exposition: String,
    /// Flat JSON body for `GET /healthz`.
    pub health_json: String,
    /// The current verdict label (`ok` / `degraded` / `violating`).
    pub verdict: String,
}

/// Handle to the snapshot shared between the run thread and the listener.
pub type SharedHandle = Arc<Mutex<SharedSnapshot>>;

/// Allocates a fresh, empty [`SharedHandle`].
pub fn shared_handle() -> SharedHandle {
    Arc::new(Mutex::new(SharedSnapshot::default()))
}

/// Observer middleware folding events into metrics. See the
/// [module docs](self).
///
/// Generic over the wrapped sink so callers can either own the inner
/// observer (`MetricsLayer<Telemetry>`) or borrow it
/// (`MetricsLayer<&mut MemoryObserver>`, via the blanket `&mut T`
/// forwarding impl in `grefar_obs`).
pub struct MetricsLayer<I: Observer> {
    inner: I,
    fold: MetricsFold,
    config: MetricsConfig,
    shared: Option<SharedHandle>,
    slots_since_snapshot: u64,
    last_error: Option<String>,
}

impl<I: Observer> MetricsLayer<I> {
    /// Wraps `inner` with fresh fold state.
    pub fn new(inner: I, config: MetricsConfig) -> Self {
        let include_timings = config.include_timings;
        MetricsLayer {
            inner,
            fold: MetricsFold::new(include_timings),
            config,
            shared: None,
            slots_since_snapshot: 0,
            last_error: None,
        }
    }

    /// Attaches the shared snapshot the HTTP listener serves from.
    pub fn with_shared(mut self, shared: SharedHandle) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Pre-seeds the fold from an existing telemetry JSONL document, so a
    /// resumed run's aggregates continue from the truncated prefix instead
    /// of restarting at zero.
    ///
    /// # Errors
    /// The first unparsable line, with its line number.
    pub fn prefold_jsonl(&mut self, text: &str) -> Result<usize, String> {
        self.fold.fold_jsonl(text)
    }

    /// The current health summary.
    pub fn health(&self) -> Health {
        self.fold.health()
    }

    /// The fold accumulated so far.
    pub fn fold(&self) -> &MetricsFold {
        &self.fold
    }

    /// Refreshes the snapshot surface now, regardless of the slot cadence.
    pub fn snapshot_now(&mut self) {
        self.slots_since_snapshot = 0;
        let health = self.fold.health();
        if self.config.emit_health_events && self.inner.enabled() {
            self.inner.record_event(health.event());
        }
        let exposition = self.fold.render();
        if let Some(shared) = &self.shared {
            if let Ok(mut snap) = shared.lock() {
                snap.exposition = exposition.clone();
                snap.health_json = health.to_json();
                snap.verdict = health.verdict.label().to_string();
            }
        }
        if let SnapshotSink::File(path) = &self.config.sink {
            if let Err(error) = write_atomic(path, &exposition) {
                self.last_error = Some(format!("metrics snapshot {}: {error}", path.display()));
            }
        }
    }

    /// Emits the final snapshot and tears the layer down.
    ///
    /// # Errors
    /// The last snapshot-write failure, if any (snapshots are otherwise
    /// best-effort and never fail the run mid-flight).
    pub fn finish(self) -> Result<Health, String> {
        self.into_parts().1
    }

    /// Like [`finish`](MetricsLayer::finish), but also hands back the
    /// wrapped sink — for owned stacks that still need to flush it (e.g.
    /// the experiment binaries' telemetry summary, or a span profiler
    /// emitting its `profile.span` trailer after the final
    /// `health.snapshot`).
    pub fn into_parts(mut self) -> (I, Result<Health, String>) {
        self.snapshot_now();
        if self.config.sink == SnapshotSink::Stdout {
            let mut stdout = std::io::stdout().lock();
            if let Err(error) = stdout.write_all(self.fold.render().as_bytes()) {
                self.last_error = Some(format!("metrics snapshot to stdout: {error}"));
            }
        }
        let outcome = match self.last_error {
            Some(error) => Err(error),
            None => Ok(self.fold.health()),
        };
        (self.inner, outcome)
    }
}

impl<I: Observer> Observer for MetricsLayer<I> {
    // Always enabled: the fold needs every event even when the wrapped
    // sink is a NullObserver (e.g. `--metrics-listen` without
    // `--telemetry`).
    fn enabled(&self) -> bool {
        true
    }

    fn record_event(&mut self, event: Event) {
        self.fold.fold_event(&event);
        let is_slot = event.name() == "slot";
        if self.inner.enabled() {
            self.inner.record_event(event);
        }
        if is_slot {
            self.slots_since_snapshot += 1;
            if self.slots_since_snapshot >= self.config.snapshot_every_slots {
                self.snapshot_now();
            }
        }
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.inner.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.inner.set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.inner.record_value(name, value);
    }

    fn profiling(&self) -> bool {
        self.inner.profiling()
    }

    fn span_enter(&mut self, name: &'static str) {
        self.inner.span_enter(name);
    }

    fn span_exit(&mut self, name: &'static str) {
        self.inner.span_exit(name);
    }

    fn span_leaf(&mut self, name: &'static str, count: u64) {
        self.inner.span_leaf(name, count);
    }
}

/// Writes `text` to `path` atomically: full write to a sibling `.tmp`
/// file, then rename over the target (same pattern as the checkpoint
/// store, minus the fsyncs — snapshots are advisory).
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_obs::{MemoryObserver, NullObserver};

    fn slot(t: u64) -> Event {
        Event::new("slot")
            .field("t", t)
            .field("queue_central", 1.0)
            .field("queue_local", 1.0)
            .field("queue_max", 1.0)
            .field("energy", 0.1)
            .field("arrivals", 1.0)
            .field("dropped", 0_u64)
    }

    #[test]
    fn forwards_events_and_folds_them() {
        let mut mem = MemoryObserver::new();
        let mut layer = MetricsLayer::new(&mut mem, MetricsConfig::default());
        layer.record_event(slot(0));
        layer.record_event(slot(1));
        assert_eq!(
            layer
                .fold()
                .registry()
                .scalar("grefar_slots_total", &[("scheduler", "")]),
            Some(2.0)
        );
        drop(layer);
        assert_eq!(mem.event_count("slot"), 2);
    }

    #[test]
    fn snapshots_on_the_slot_cadence() {
        let mut mem = MemoryObserver::new();
        let config = MetricsConfig {
            snapshot_every_slots: 2,
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut mem, config);
        for t in 0..5 {
            layer.record_event(slot(t));
        }
        drop(layer);
        // Slots 2 and 4 cross the cadence.
        assert_eq!(mem.event_count("health.snapshot"), 2);
    }

    #[test]
    fn finish_writes_the_snapshot_file_atomically() {
        let dir = std::env::temp_dir().join("grefar-metrics-layer-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let mut null = NullObserver;
        let config = MetricsConfig {
            sink: SnapshotSink::File(path.clone()),
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut null, config);
        layer.record_event(slot(0));
        layer.finish().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("grefar_slots_total"));
        assert!(crate::lint(&text).is_empty(), "{:?}", crate::lint(&text));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_handle_sees_refreshes() {
        let shared = shared_handle();
        let mut null = NullObserver;
        let config = MetricsConfig {
            snapshot_every_slots: 1,
            ..MetricsConfig::default()
        };
        let mut layer = MetricsLayer::new(&mut null, config).with_shared(shared.clone());
        layer.record_event(slot(0));
        let snap = shared.lock().unwrap();
        assert!(snap.exposition.contains("grefar_slots_total"));
        assert_eq!(snap.verdict, "ok");
        assert!(snap.health_json.contains("\"verdict\":\"ok\""));
    }

    #[test]
    fn prefold_then_live_matches_a_single_fold() {
        let events: Vec<Event> = (0..4).map(slot).collect();
        let text: String = events
            .iter()
            .take(2)
            .map(|e| format!("{}\n", e.to_json_with_schema(1)))
            .collect();
        let mut null = NullObserver;
        let mut resumed = MetricsLayer::new(&mut null, MetricsConfig::default());
        resumed.prefold_jsonl(&text).unwrap();
        for event in &events[2..] {
            resumed.record_event(event.clone());
        }
        let mut whole = MetricsFold::new(true);
        for event in &events {
            whole.fold_event(event);
        }
        assert_eq!(resumed.fold().render(), whole.render());
    }
}
