//! Live observability plane for the GreFar workspace: a Prometheus-text
//! metrics registry, an event-stream fold that populates it, health
//! snapshots, and a minimal `GET /metrics` / `GET /healthz` listener.
//!
//! Everything here is derived from the one telemetry event stream the
//! rest of the workspace already emits (see `grefar-obs`): no
//! instrumented crate talks to this crate directly. That keeps the
//! metric surface rebuildable offline — `grefar-report metrics run.jsonl`
//! folds the same events through the same [`MetricsFold`] and produces
//! the same series the live run exposed.
//!
//! Layout:
//! - [`Registry`] — counter / gauge / histogram families with labels,
//!   rendered as Prometheus text exposition format 0.0.4.
//! - [`MetricsFold`] — the event-name → metric mapping (one place, shared
//!   by the live layer and the offline rebuild).
//! - [`Health`] / [`Verdict`] — the `ok` / `degraded` / `violating`
//!   summary behind `/healthz` and the `health.snapshot` event, aligned
//!   with `grefar-report analyze --assert-bound`.
//! - [`MetricsLayer`] — the live `Observer` middleware: folds, forwards,
//!   and snapshots on a slot cadence.
//! - [`alerts`] — the declarative alerting/SLO engine (threshold, ratio
//!   and burn-rate rules over the fold), evaluated identically live and
//!   in the offline `grefar-report alerts` replay.
//! - [`MetricsServer`] — the blocking std-`TcpListener` endpoint
//!   (`/metrics`, `/healthz`, `/alerts`).
//! - [`lint`] — a hand-rolled exposition-format lint doubling as the
//!   executable spec of the workspace metric naming conventions.
//!
//! Zero dependencies beyond `grefar-obs`, `#![forbid(unsafe_code)]`, and
//! deterministic rendering throughout (`BTreeMap` ordering everywhere).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
mod fold;
mod health;
mod http;
mod layer;
mod lint;
mod registry;

pub use alerts::{parse_rules, AlertEngine, AlertRule};
pub use fold::{MetricsFold, DURATION_US_BUCKETS};
pub use health::{Health, Verdict};
pub use http::MetricsServer;
pub use layer::{
    shared_handle, MetricsConfig, MetricsLayer, SharedHandle, SharedSnapshot, SnapshotSink,
};
pub use lint::lint;
pub use registry::{MetricKind, Registry};
