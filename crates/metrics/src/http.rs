//! A minimal blocking HTTP listener for `GET /metrics` and
//! `GET /healthz`.
//!
//! Deliberately tiny: std `TcpListener` only, one service thread, a
//! non-blocking accept loop polling an atomic shutdown flag. It serves
//! whatever the [`MetricsLayer`](crate::MetricsLayer) last published into
//! the [`SharedHandle`](crate::SharedHandle) — the listener itself never
//! touches fold state, so it cannot race the run thread.
//!
//! `/healthz` returns 200 while the run is `ok` or `degraded` and 503
//! once it is `violating`, so a plain HTTP check agrees with
//! `grefar-report analyze --assert-bound`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::layer::SharedHandle;

/// How long the accept loop sleeps between polls of the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// A running metrics listener; shut down with
/// [`shutdown`](MetricsServer::shutdown) (dropping without it leaves the
/// thread parked until process exit).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and spawns the service thread.
    ///
    /// # Errors
    /// Bind failures (address in use, bad address, permissions).
    pub fn spawn(addr: &str, shared: SharedHandle) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("grefar-metrics".to_string())
            .spawn(move || serve(listener, shared, thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the service thread and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(listener: TcpListener, shared: SharedHandle, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: the endpoints are tiny and the snapshot is
                // pre-rendered, so one connection at a time is plenty.
                let _ = handle_connection(stream, &shared);
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &SharedHandle) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let target = read_request_target(&mut stream)?;
    let (status, content_type, body) = route(&target, shared);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads up to the end of the request head and returns the request
/// target (`GET /metrics HTTP/1.1` → `/metrics`); non-GET methods return
/// an empty target, which routes to 404.
fn read_request_target(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(error) => return Err(error),
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method == "GET" {
        Ok(target.to_string())
    } else {
        Ok(String::new())
    }
}

fn route(target: &str, shared: &SharedHandle) -> (&'static str, &'static str, String) {
    let snapshot = match shared.lock() {
        Ok(snap) => snap.clone(),
        Err(_) => {
            return (
                "500 Internal Server Error",
                "text/plain; charset=utf-8",
                "snapshot lock poisoned\n".to_string(),
            )
        }
    };
    match target {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            snapshot.exposition,
        ),
        "/healthz" => {
            let status = if snapshot.verdict == "violating" {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            let mut body = snapshot.health_json;
            if body.is_empty() {
                body = "{\"event\":\"health.snapshot\",\"verdict\":\"ok\"}".to_string();
            }
            body.push('\n');
            (status, "application/json; charset=utf-8", body)
        }
        "/alerts" => {
            let mut body = snapshot.alerts_json;
            if body.is_empty() {
                body = "{\"alerts\":\"none configured\"}\n".to_string();
            }
            ("200 OK", "application/json; charset=utf-8", body)
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /healthz or /alerts\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{shared_handle, SharedSnapshot};

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let shared = shared_handle();
        *shared.lock().unwrap() = SharedSnapshot {
            exposition: "# HELP grefar_slots_total Slots.\n# TYPE grefar_slots_total counter\ngrefar_slots_total 3\n".to_string(),
            health_json: "{\"event\":\"health.snapshot\",\"t\":3,\"verdict\":\"ok\"}".to_string(),
            verdict: "ok".to_string(),
            alerts_json: "{\"rule\":\"deg\",\"firing\":false}\n".to_string(),
        };
        let server = MetricsServer::spawn("127.0.0.1:0", shared.clone()).unwrap();
        let addr = server.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("version=0.0.4"));
        assert!(metrics.contains("grefar_slots_total 3\n"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.contains("\"verdict\":\"ok\""));

        let alerts = get(addr, "/alerts");
        assert!(alerts.starts_with("HTTP/1.1 200 OK\r\n"), "{alerts}");
        assert!(alerts.contains("\"rule\":\"deg\""));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("/alerts"));

        shared.lock().unwrap().verdict = "violating".to_string();
        let unhealthy = get(addr, "/healthz");
        assert!(unhealthy.starts_with("HTTP/1.1 503"), "{unhealthy}");

        server.shutdown();
    }

    #[test]
    fn non_get_requests_are_rejected() {
        let server = MetricsServer::spawn("127.0.0.1:0", shared_handle()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        server.shutdown();
    }

    #[test]
    fn slow_request_line_written_in_pieces_is_served() {
        let shared = shared_handle();
        shared.lock().unwrap().exposition = "# EOF\n".to_string();
        let server = MetricsServer::spawn("127.0.0.1:0", shared).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Dribble the request head across several writes with pauses well
        // under the 500ms IO timeout; the reader must keep accumulating
        // until the blank line arrives.
        for piece in [
            &b"GET /met"[..],
            b"rics HTTP/1.1\r\n",
            b"Host: x\r\n",
            b"\r\n",
        ] {
            stream.write_all(piece).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("# EOF"));
        server.shutdown();
    }

    #[test]
    fn partial_request_that_stalls_gets_dropped_not_wedged() {
        let server = MetricsServer::spawn("127.0.0.1:0", shared_handle()).unwrap();
        let addr = server.addr();
        let mut stalled = TcpStream::connect(addr).unwrap();
        // Never finish the head: the per-connection IO timeout must free
        // the service thread so later connections still get answers.
        stalled.write_all(b"GET /metrics HT").unwrap();
        let mut response = String::new();
        let _ = stalled.read_to_string(&mut response);
        let after = get(addr, "/healthz");
        assert!(after.starts_with("HTTP/1.1 200 OK\r\n"), "{after}");
        server.shutdown();
    }

    #[test]
    fn sequential_connections_are_each_served() {
        let shared = shared_handle();
        shared.lock().unwrap().exposition = "# seq\n".to_string();
        let server = MetricsServer::spawn("127.0.0.1:0", shared).unwrap();
        for _ in 0..5 {
            let response = get(server.addr(), "/metrics");
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
            assert!(response.contains("# seq"));
        }
        server.shutdown();
    }

    #[test]
    fn ephemeral_port_zero_reports_the_bound_port() {
        let server = MetricsServer::spawn("127.0.0.1:0", shared_handle()).unwrap();
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
    }
}
