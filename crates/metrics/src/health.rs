//! Health snapshots: a compact run-state summary for `/healthz` and the
//! `health.snapshot` event.
//!
//! The verdict mirrors `grefar-report analyze --assert-bound` so the live
//! plane and the offline analyzer can never disagree about whether a run
//! is healthy: `violating` when an invariant fired or the peak queue
//! reached the (possibly stale-widened) Theorem 1(a) bound; `degraded`
//! when the run leaned on fallbacks (degraded-mode slots, stale state,
//! open circuit breakers); `ok` otherwise.

use grefar_obs::Event;

/// Three-state health verdict, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No bound pressure, no fallbacks.
    Ok,
    /// Serving, but through fallbacks (degraded mode, stale state, or an
    /// open breaker).
    Degraded,
    /// An invariant fired, or the peak queue reached the Theorem 1(a)
    /// bound.
    Violating,
}

impl Verdict {
    /// The wire spelling (`ok` / `degraded` / `violating`).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Violating => "violating",
        }
    }
}

/// A point-in-time run-health summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Health {
    /// Overall verdict (see [`Verdict`]).
    pub verdict: Verdict,
    /// Latest slot folded.
    pub slot: u64,
    /// Peak of the longest single queue across labeled runs.
    pub queue_peak: f64,
    /// The Theorem 1(a) bound of the worst-occupancy run, when declared.
    pub queue_bound: Option<f64>,
    /// Worst `100 * peak / bound` across labeled runs, when a bound is
    /// declared.
    pub occupancy_pct: Option<f64>,
    /// Runtime paper-invariant violations observed.
    pub invariant_violations: u64,
    /// Slots served through a degradation fallback.
    pub degraded_events: u64,
    /// Slots decided on stale feed state.
    pub stale_events: u64,
    /// Circuit breakers currently open.
    pub open_breakers: u64,
    /// Slots since the last checkpoint write (absent until one lands).
    pub checkpoint_age_slots: Option<u64>,
    /// Alert rules currently firing (absent until any `alert.*` event has
    /// been folded, so alert-free runs are byte-identical to before).
    pub active_alerts: Option<u64>,
}

impl Health {
    /// Renders the flat JSON object served by `GET /healthz`.
    ///
    /// Kept flat (no nesting, no arrays) so `grefar_obs::json` can parse
    /// it back in tests and tooling.
    pub fn to_json(&self) -> String {
        // Route through the event encoder for consistent escaping and
        // float formatting.
        self.event().to_json()
    }

    /// The `health.snapshot` telemetry event carrying the same fields as
    /// [`Health::to_json`].
    pub fn event(&self) -> Event {
        let mut event = Event::new("health.snapshot")
            .field("t", self.slot)
            .field("verdict", self.verdict.label())
            .field("queue_peak", self.queue_peak)
            .field("invariant_violations", self.invariant_violations)
            .field("degraded_events", self.degraded_events)
            .field("stale_events", self.stale_events)
            .field("open_breakers", self.open_breakers);
        if let Some(bound) = self.queue_bound {
            event = event.field("queue_bound", bound);
        }
        if let Some(pct) = self.occupancy_pct {
            event = event.field("occupancy_pct", pct);
        }
        if let Some(age) = self.checkpoint_age_slots {
            event = event.field("checkpoint_age_slots", age);
        }
        if let Some(active) = self.active_alerts {
            event = event.field("active_alerts", active);
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_order_from_best_to_worst() {
        assert!(Verdict::Ok < Verdict::Degraded);
        assert!(Verdict::Degraded < Verdict::Violating);
        assert_eq!(Verdict::Violating.label(), "violating");
    }

    #[test]
    fn json_is_flat_and_parseable() {
        let health = Health {
            verdict: Verdict::Degraded,
            slot: 42,
            queue_peak: 7.5,
            queue_bound: Some(30.0),
            occupancy_pct: Some(25.0),
            invariant_violations: 0,
            degraded_events: 3,
            stale_events: 1,
            open_breakers: 0,
            checkpoint_age_slots: Some(6),
            active_alerts: Some(1),
        };
        let parsed = grefar_obs::json::parse_object(&health.to_json()).unwrap();
        assert_eq!(
            parsed.get("verdict").and_then(|v| v.as_str()),
            Some("degraded")
        );
        assert_eq!(
            parsed.get("occupancy_pct").and_then(|v| v.as_f64()),
            Some(25.0)
        );
        assert_eq!(parsed.get("t").and_then(|v| v.as_f64()), Some(42.0));
    }

    #[test]
    fn optional_fields_are_omitted_when_absent() {
        let health = Health {
            verdict: Verdict::Ok,
            slot: 0,
            queue_peak: 0.0,
            queue_bound: None,
            occupancy_pct: None,
            invariant_violations: 0,
            degraded_events: 0,
            stale_events: 0,
            open_breakers: 0,
            checkpoint_age_slots: None,
            active_alerts: None,
        };
        let json = health.to_json();
        assert!(!json.contains("queue_bound"));
        assert!(!json.contains("checkpoint_age_slots"));
        assert!(!json.contains("active_alerts"));
    }
}
