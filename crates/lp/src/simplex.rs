//! Two-phase *upper-bounded* primal simplex on a dense tableau.
//!
//! Variable bounds `0 ≤ x_j ≤ u_j` are handled natively (nonbasic
//! variables rest at either bound and may "flip" without a pivot), so the
//! bound-heavy programs this workspace produces — per-slot dispatch,
//! lookahead frames, MPC horizons, where almost every variable is boxed —
//! stay at their natural row count instead of doubling.
//!
//! Structure:
//!
//! 1. Normalize every row to non-negative right-hand side, then append a
//!    slack (`≤`), surplus + artificial (`≥`) or artificial (`=`) column.
//! 2. **Phase 1** minimizes the sum of artificials; a positive optimum
//!    means infeasible. Artificials still basic at level ~0 are pivoted
//!    out (or their redundant rows dropped).
//! 3. **Phase 2** minimizes the true objective over non-artificial columns.
//!
//! Pivoting uses Dantzig's rule with a fallback to Bland's rule, which
//! guarantees termination on degenerate instances. Correctness is enforced
//! by the brute-force vertex-enumeration property tests in
//! `tests/proptest_simplex.rs`.

use crate::problem::{Relation, Row};
use crate::solution::{Solution, SolveError, SolveStats};

/// Tunable solver options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Hard cap on total pivots (and bound flips) across both phases.
    pub max_pivots: usize,
    /// Numerical tolerance for reduced costs, ratios and feasibility.
    pub tolerance: f64,
    /// Number of Dantzig pivots before switching to Bland's rule.
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_pivots: 50_000,
            tolerance: 1e-9,
            bland_after: 2_000,
        }
    }
}

/// Dense bounded-simplex working state.
struct Tableau {
    /// m × width, row-major: the current `B⁻¹A`.
    data: Vec<f64>,
    /// Values of the basic variables (the current basic solution).
    xb: Vec<f64>,
    m: usize,
    width: usize,
    basis: Vec<usize>,
    /// For nonbasic columns: resting at the upper bound? (Basic entries
    /// are ignored.)
    at_upper: Vec<bool>,
    /// Upper bound per column (`f64::INFINITY` if unbounded).
    upper: Vec<f64>,
    /// Reusable copy of the pivot row, so elimination does not allocate
    /// on every pivot. Always `width` long.
    scratch: Vec<f64>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.width + c]
    }

    /// Pivot on (`row`, `col`): scale the pivot row, eliminate `col`
    /// elsewhere. `xb` is NOT touched here — callers update it first.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.width;
        let pivot = self.data[row * w + col];
        debug_assert!(pivot.abs() > 0.0);
        let inv = 1.0 / pivot;
        for c in 0..w {
            self.data[row * w + c] *= inv;
        }
        self.scratch
            .copy_from_slice(&self.data[row * w..(row + 1) * w]);
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.data[r * w + col];
            // verify: allow(float-eq): exact-zero skip — elimination with a zero factor is a no-op
            if factor == 0.0 {
                continue;
            }
            for (c, &pv) in self.scratch.iter().enumerate() {
                self.data[r * w + c] -= factor * pv;
            }
        }
        self.basis[row] = col;
    }

    /// Remove constraint row `row` (redundant after phase 1).
    fn drop_row(&mut self, row: usize) {
        let w = self.width;
        self.data.drain(row * w..(row + 1) * w);
        self.xb.remove(row);
        self.basis.remove(row);
        self.m -= 1;
    }

    fn is_basic(&self, col: usize) -> bool {
        self.basis.contains(&col)
    }

    /// `strict-invariants` sanity sweep over the basis and bound-flip
    /// bookkeeping: every basis column distinct and in range, every basic
    /// value within `[0, upper]` (up to `tol`), and no nonbasic column
    /// resting at a non-finite upper bound.
    #[cfg(feature = "strict-invariants")]
    fn check_invariants(&self, tol: f64) -> Result<(), SolveError> {
        let mut seen = vec![false; self.width];
        for (i, &b) in self.basis.iter().enumerate() {
            if b >= self.width {
                return Err(SolveError::InvariantViolation(format!(
                    "basis[{i}] = {b} out of range (width {})",
                    self.width
                )));
            }
            if seen[b] {
                return Err(SolveError::InvariantViolation(format!(
                    "column {b} appears twice in the basis"
                )));
            }
            seen[b] = true;
            let v = self.xb[i];
            if !v.is_finite() || v < -tol || v > self.upper[b] + tol {
                return Err(SolveError::InvariantViolation(format!(
                    "basic variable {b} = {v} outside [0, {}]",
                    self.upper[b]
                )));
            }
        }
        for (j, &basic) in seen.iter().enumerate() {
            if !basic && self.at_upper[j] && !self.upper[j].is_finite() {
                return Err(SolveError::InvariantViolation(format!(
                    "nonbasic column {j} rests at a non-finite upper bound"
                )));
            }
        }
        Ok(())
    }
}

/// Running pivot counters shared across both phases; the Dantzig→Bland
/// switch and the `max_pivots` cap are driven by the combined total.
#[derive(Debug, Clone, Copy, Default)]
struct PivotCounters {
    /// Basis-changing pivots (both phases, incl. artificial drive-out).
    pivots: usize,
    /// Pivots whose ratio-test step was ~0.
    degenerate: usize,
    /// Nonbasic bound flips (no basis change).
    flips: usize,
}

impl PivotCounters {
    fn total(&self) -> usize {
        self.pivots + self.flips
    }
}

/// One phase of the bounded simplex: minimize `cost` over the current
/// tableau, restricted to `allowed` entering columns.
fn run_phase(
    t: &mut Tableau,
    cost: &[f64],
    allowed: &dyn Fn(usize) -> bool,
    opts: SimplexOptions,
    counters: &mut PivotCounters,
) -> Result<(), SolveError> {
    let tol = opts.tolerance;
    loop {
        if counters.total() >= opts.max_pivots {
            return Err(SolveError::IterationLimit {
                limit: opts.max_pivots,
            });
        }
        let use_bland = counters.total() >= opts.bland_after;

        // Entering column: improving reduced cost given its resting bound.
        let mut entering: Option<(usize, f64)> = None; // (col, direction s)
        let mut best = tol;
        'cols: for j in 0..t.width {
            if !allowed(j) || t.is_basic(j) {
                continue;
            }
            let mut rc = cost[j];
            for i in 0..t.m {
                let cb = cost[t.basis[i]];
                // verify: allow(float-eq): exact-zero skip — zero basic cost contributes nothing
                if cb != 0.0 {
                    rc -= cb * t.at(i, j);
                }
            }
            // From the lower bound, increasing x_j helps iff rc < 0;
            // from the upper bound, decreasing x_j helps iff rc > 0.
            let (improves, direction) = if t.at_upper[j] {
                (rc > tol, -1.0)
            } else {
                (rc < -tol, 1.0)
            };
            if improves {
                if use_bland {
                    entering = Some((j, direction));
                    break 'cols;
                } else if rc.abs() > best {
                    best = rc.abs();
                    entering = Some((j, direction));
                }
            }
        }
        let Some((col, s)) = entering else {
            #[cfg(feature = "strict-invariants")]
            t.check_invariants(opts.tolerance.max(1e-6))?;
            return Ok(()); // phase optimal
        };

        // Ratio test: largest step `t*` keeping every basic variable within
        // its bounds, capped by the entering variable's own bound span.
        // x_B(t*) = xb − s·t*·d with d the tableau column.
        let mut limit = t.upper[col]; // a bound flip consumes the full span
        let mut blocking: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..t.m {
            let d = t.at(i, col);
            let sd = s * d;
            if sd > tol {
                // Basic variable decreases toward 0.
                let step = t.xb[i] / sd;
                if step < limit - tol || (step < limit + tol && better_tie(t, &blocking, i)) {
                    if step < limit - tol {
                        limit = step;
                        blocking = Some((i, false));
                    } else if blocking.is_some() {
                        blocking = Some((i, false));
                    }
                }
            } else if sd < -tol {
                // Basic variable increases toward its upper bound.
                let ub = t.upper[t.basis[i]];
                if ub.is_finite() {
                    let step = (ub - t.xb[i]) / (-sd);
                    if step < limit - tol || (step < limit + tol && better_tie(t, &blocking, i)) {
                        if step < limit - tol {
                            limit = step;
                            blocking = Some((i, true));
                        } else if blocking.is_some() {
                            blocking = Some((i, true));
                        }
                    }
                }
            }
        }
        if limit.is_infinite() {
            return Err(SolveError::Unbounded);
        }
        let step = limit.max(0.0);

        // Apply the move to the basic solution.
        for i in 0..t.m {
            t.xb[i] -= s * step * t.at(i, col);
            // Numerical hygiene: clamp tiny negatives.
            if t.xb[i] < 0.0 && t.xb[i] > -1e-9 {
                t.xb[i] = 0.0;
            }
        }

        match blocking {
            None => {
                // Bound flip: the entering variable traverses its whole
                // span and rests at the opposite bound. No basis change.
                t.at_upper[col] = !t.at_upper[col];
                counters.flips += 1;
            }
            Some((row, leaves_at_upper)) => {
                // The entering variable becomes basic with value:
                let entering_value = if t.at_upper[col] {
                    t.upper[col] - step
                } else {
                    step
                };
                let leaving = t.basis[row];
                t.at_upper[leaving] = leaves_at_upper;
                t.pivot(row, col);
                t.xb[row] = entering_value;
                t.at_upper[col] = false; // basic now; flag meaningless but tidy
                counters.pivots += 1;
                if step <= tol {
                    counters.degenerate += 1;
                }
            }
        }
    }
}

/// Bland-compatible tie-break: prefer the smaller basis index.
fn better_tie(t: &Tableau, current: &Option<(usize, bool)>, candidate: usize) -> bool {
    match current {
        None => true,
        Some((row, _)) => t.basis[candidate] < t.basis[*row],
    }
}

/// Solves `min objective · x` s.t. the rows, `0 ≤ x ≤ upper` with the
/// two-phase upper-bounded primal simplex. Low-level entry point; prefer
/// [`LpProblem`](crate::LpProblem).
pub(crate) fn simplex(
    num_vars: usize,
    objective: &[f64],
    rows: &[Row],
    upper_bounds: &[Option<f64>],
    opts: SimplexOptions,
) -> Result<Solution, SolveError> {
    debug_assert_eq!(upper_bounds.len(), num_vars);
    // verify: allow(determinism): wall-clock feeds SolveStats telemetry only, never a pivot choice
    let started = std::time::Instant::now();
    let m = rows.len();

    // Column layout: [structural | slack/surplus | artificial].
    let mut num_slack = 0;
    let mut num_art = 0;
    for row in rows {
        match effective_relation(row) {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Relation::Eq => num_art += 1,
        }
    }
    let width = num_vars + num_slack + num_art;
    let mut data = vec![0.0; m * width];
    let mut xb = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut upper = vec![f64::INFINITY; width];
    for (j, ub) in upper_bounds.iter().enumerate() {
        if let Some(u) = ub {
            upper[j] = *u;
        }
    }

    let mut slack_idx = num_vars;
    let mut art_idx = num_vars + num_slack;
    let art_start = art_idx;
    for (i, row) in rows.iter().enumerate() {
        let flip = row.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(var, c) in &row.coeffs {
            data[i * width + var] += sign * c;
        }
        xb[i] = sign * row.rhs;
        match effective_relation(row) {
            Relation::Le => {
                data[i * width + slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                data[i * width + slack_idx] = -1.0;
                slack_idx += 1;
                data[i * width + art_idx] = 1.0;
                basis[i] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                data[i * width + art_idx] = 1.0;
                basis[i] = art_idx;
                art_idx += 1;
            }
        }
    }
    let art_range = art_start..width;

    let mut t = Tableau {
        data,
        xb,
        m,
        width,
        basis,
        at_upper: vec![false; width],
        upper,
        scratch: vec![0.0; width],
    };
    let mut counters = PivotCounters::default();

    // Phase 1.
    if num_art > 0 {
        let mut phase1 = vec![0.0; width];
        phase1[art_start..width].fill(1.0);
        run_phase(&mut t, &phase1, &|_| true, opts, &mut counters)?;
        let infeas: f64 = (0..t.m)
            .filter(|&i| art_range.contains(&t.basis[i]))
            .map(|i| t.xb[i])
            .sum();
        if infeas > opts.tolerance.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        // Drive zero-level artificials out of the basis.
        let mut i = 0;
        while i < t.m {
            if art_range.contains(&t.basis[i]) {
                let mut pivoted = false;
                for j in 0..art_start {
                    if t.at(i, j).abs() > opts.tolerance.max(1e-8) && !t.is_basic(j) {
                        let value = t.xb[i]; // ≈ 0
                        t.pivot(i, j);
                        t.xb[i] = value;
                        counters.pivots += 1;
                        counters.degenerate += 1;
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    t.drop_row(i);
                    continue;
                }
            }
            i += 1;
        }
        #[cfg(feature = "strict-invariants")]
        t.check_invariants(opts.tolerance.max(1e-6))?;
    }

    let phase1_pivots = counters.pivots;

    // Phase 2: artificial columns are frozen out.
    let mut phase2 = vec![0.0; width];
    phase2[..num_vars].copy_from_slice(objective);
    run_phase(&mut t, &phase2, &|j| j < art_start, opts, &mut counters)?;

    // Extract the solution: basic value, or resting bound.
    let mut x = vec![0.0; num_vars];
    for (j, xj) in x.iter_mut().enumerate() {
        if t.at_upper[j] && !t.is_basic(j) {
            *xj = t.upper[j];
        }
    }
    for i in 0..t.m {
        let b = t.basis[i];
        if b < num_vars {
            x[b] = t.xb[i].max(0.0);
        }
    }
    let objective_value = crate::linalg::dot(objective, &x);
    let stats = SolveStats {
        pivots_phase1: phase1_pivots,
        pivots_phase2: counters.pivots - phase1_pivots,
        degenerate_pivots: counters.degenerate,
        bound_flips: counters.flips,
        wall_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
    };
    Ok(Solution::new(x, objective_value, stats))
}

/// Relation after normalizing the row to a non-negative rhs.
fn effective_relation(row: &Row) -> Relation {
    if row.rhs < 0.0 {
        match row.relation {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    } else {
        row.relation
    }
}

#[cfg(test)]
mod tests {
    use crate::{LpProblem, Relation, SolveError};

    #[test]
    fn bound_flip_path() {
        // max x0 + x1 s.t. x0 + x1 <= 1.5, x <= 1 each: optimum 1.5 with one
        // variable at its upper bound (exercises the flip logic).
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, -1.0);
        p.set_objective(1, -1.0);
        p.set_upper_bound(0, 1.0);
        p.set_upper_bound(1, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.5);
        let sol = p.solve().unwrap();
        assert!((sol.objective() + 1.5).abs() < 1e-9, "{}", sol.objective());
        assert!(p.is_feasible(sol.x(), 1e-9));
    }

    #[test]
    fn all_variables_at_upper() {
        // min −Σx with x ≤ u and no rows: pure bound flips.
        let mut p = LpProblem::minimize(3);
        for j in 0..3 {
            p.set_objective(j, -1.0);
            p.set_upper_bound(j, (j + 1) as f64);
        }
        let sol = p.solve().unwrap();
        assert_eq!(sol.x(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 2.0), (1, 2.0)], Relation::Eq, 4.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 0.0).abs() < 1e-9);
        assert!(p.is_feasible(sol.x(), 1e-9));
    }

    #[test]
    fn transportation_problem() {
        let cost = [8.0, 6.0, 10.0, 9.0, 12.0, 13.0];
        let mut p = LpProblem::minimize(6);
        for (i, &c) in cost.iter().enumerate() {
            p.set_objective(i, c);
        }
        p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 20.0);
        p.add_constraint(&[(3, 1.0), (4, 1.0), (5, 1.0)], Relation::Le, 30.0);
        p.add_constraint(&[(0, 1.0), (3, 1.0)], Relation::Eq, 10.0);
        p.add_constraint(&[(1, 1.0), (4, 1.0)], Relation::Eq, 25.0);
        p.add_constraint(&[(2, 1.0), (5, 1.0)], Relation::Eq, 15.0);
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(sol.x(), 1e-8));
        assert!(
            (sol.objective() - 465.0).abs() < 1e-7,
            "{}",
            sol.objective()
        );
    }

    #[test]
    fn infeasible_equality_system() {
        let mut p = LpProblem::minimize(2);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 2.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn infeasible_because_of_bounds() {
        let mut p = LpProblem::minimize(1);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.set_upper_bound(0, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn large_random_diet_style_problem_is_feasible_and_optimal_vs_bounds() {
        let n = 30;
        let m = 12;
        let mut seed = 7u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64)
        };
        let mut p = LpProblem::minimize(n);
        for j in 0..n {
            p.set_objective(j, 0.5 + next());
        }
        for _ in 0..m {
            let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.1 + next())).collect();
            p.add_constraint(&coeffs, Relation::Ge, 5.0 + 5.0 * next());
        }
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(sol.x(), 1e-7));
        let naive = vec![100.0 / n as f64; n];
        assert!(sol.objective() <= p.objective_at(&naive) + 1e-7);
    }

    #[test]
    fn boxed_equality_combination() {
        // min x0 + 3x1 s.t. x0 + x1 = 4, x0 ≤ 2.5 → x0 = 2.5, x1 = 1.5.
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 3.0);
        p.set_upper_bound(0, 2.5);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 4.0);
        let sol = p.solve().unwrap();
        assert!((sol.x()[0] - 2.5).abs() < 1e-9, "{:?}", sol.x());
        assert!((sol.x()[1] - 1.5).abs() < 1e-9);
    }
}
