//! Small dense linear-algebra helpers.
//!
//! Only what the simplex solver and its cross-checking tests need: solving
//! square systems by Gaussian elimination with partial pivoting.

/// Solves the square system `A x = b` by Gaussian elimination with partial
/// pivoting, where `a` is row-major `n × n`.
///
/// Returns `None` if the matrix is (numerically) singular.
///
/// # Panics
/// Panics if `a.len() != n * n` or `b.len() != n`.
///
/// # Example
/// ```
/// let a = vec![2.0, 1.0, 1.0, 3.0];
/// let b = vec![3.0, 5.0];
/// let x = grefar_lp::linalg::solve_dense(2, &a, &b).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
pub fn solve_dense(n: usize, a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    assert_eq!(b.len(), n, "rhs must have length n");
    // verify: allow(hot-path-alloc): elimination must mutate working copies; two exact-size allocations per solve, not per pivot
    let (mut m, mut rhs) = (a.to_vec(), b.to_vec());

    for col in 0..n {
        // Partial pivoting: largest absolute entry in the column.
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for row in (col + 1)..n {
            let v = m[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                m.swap(col * n + j, pivot_row * n + j);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            // verify: allow(float-eq): exact-zero skip — elimination with a zero factor is a no-op
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                m[row * n + j] -= factor * m[col * n + j];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for j in (row + 1)..n {
            acc -= m[row * n + j] * x[j];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot-product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(2, &a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // First pivot is zero; requires row exchange.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(2, &a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn detects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(2, &a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn three_by_three() {
        let a = vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0];
        let b = vec![1.0, 0.0, 1.0];
        let x = solve_dense(3, &a, &b).unwrap();
        // Known solution of the 1-D Poisson system: x = [1, 1, 1].
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn residual_is_small_on_random_system() {
        // Deterministic pseudo-random fill.
        let n = 8;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        if let Some(x) = solve_dense(n, &a, &b) {
            for i in 0..n {
                let run = dot(&a[i * n..(i + 1) * n], &x);
                assert!((run - b[i]).abs() < 1e-8, "row {i} residual too large");
            }
        }
    }

    #[test]
    fn dot_works() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
