//! Dense two-phase primal simplex linear-programming solver.
//!
//! This crate is the linear-programming substrate of the `grefar` workspace.
//! The GreFar paper (§IV-B) observes that the per-slot drift-plus-penalty
//! problem (14) "becomes a standard linear programming problem" when fairness
//! is not considered (`β = 0`), and the offline `T`-step lookahead policy
//! (§V-A, eqs. (15)–(18)) is a frame-sized LP. Rather than assuming an
//! external solver exists, the workspace ships this self-contained one.
//!
//! # Features
//!
//! * [`LpProblem`] — a model builder with `≤ / = / ≥` constraints,
//!   non-negative variables and optional upper bounds, solved by a dense
//!   two-phase primal simplex with a Dantzig pivot rule and automatic
//!   fallback to Bland's rule for anti-cycling (tunable via
//!   [`SimplexOptions`]),
//! * [`linalg`] — the small dense linear-algebra helpers (Gaussian
//!   elimination) used by the solver's tests and by brute-force
//!   cross-checking in property tests.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2` (so minimize the
//! negation):
//!
//! ```
//! use grefar_lp::{LpProblem, Relation};
//!
//! # fn main() -> Result<(), grefar_lp::SolveError> {
//! let mut p = LpProblem::minimize(2);
//! p.set_objective(0, -3.0);
//! p.set_objective(1, -2.0);
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! p.set_upper_bound(0, 2.0);
//! let sol = p.solve()?;
//! assert!((sol.objective() - (-10.0)).abs() < 1e-9); // x=2, y=2
//! assert!((sol.x()[0] - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
mod problem;
mod simplex;
mod solution;

pub use problem::{LpProblem, Relation};
pub use simplex::SimplexOptions;
pub use solution::{Solution, SolveError, SolveStats};
