//! Solver results and errors.

use core::fmt;

/// Per-solve instrumentation: how hard the simplex had to work.
///
/// Cheap to collect (a handful of integer bumps plus one clock read), so
/// it is always populated — telemetry layers read it off the returned
/// [`Solution`] without the solver needing an observer dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Basis-changing pivots during phase 1 (artificial elimination
    /// included).
    pub pivots_phase1: usize,
    /// Basis-changing pivots during phase 2.
    pub pivots_phase2: usize,
    /// Pivots whose ratio-test step was ~0 (degenerate; the Bland
    /// fallback exists because of these).
    pub degenerate_pivots: usize,
    /// Nonbasic bound flips (upper-bounded simplex moves that change no
    /// basis entry). These count toward the pivot limit.
    pub bound_flips: usize,
    /// Wall-clock time of the whole solve, in microseconds.
    pub wall_us: u64,
}

impl SolveStats {
    /// Total pivots and bound flips across both phases — the quantity
    /// capped by [`SimplexOptions::max_pivots`](crate::SimplexOptions).
    pub fn total_iterations(&self) -> usize {
        self.pivots_phase1 + self.pivots_phase2 + self.bound_flips
    }
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
    stats: SolveStats,
}

impl Solution {
    pub(crate) fn new(x: Vec<f64>, objective: f64, stats: SolveStats) -> Self {
        Self {
            x,
            objective,
            stats,
        }
    }

    /// The optimal variable assignment, indexed as in the
    /// [`LpProblem`](crate::LpProblem).
    #[inline]
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// The optimal objective value (of the *minimization*; callers that
    /// modeled a maximization by negating costs should negate back).
    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of simplex pivots and bound flips performed across both
    /// phases. See [`stats`](Solution::stats) for the breakdown.
    #[inline]
    pub fn iterations(&self) -> usize {
        self.stats.total_iterations()
    }

    /// The per-solve instrumentation counters.
    #[inline]
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Consumes the solution, returning the variable assignment.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}

/// Why a linear program could not be solved to optimality.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The pivot-count safety limit was exceeded (numerical trouble or an
    /// adversarially degenerate instance).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The model itself is malformed (e.g. a variable index out of range).
    BadModel(String),
    /// An internal consistency check failed (duplicate basis column,
    /// basic value outside its bounds, bound flip on an unbounded
    /// column). Only produced with the `strict-invariants` feature; always
    /// indicates a solver bug, never a property of the model.
    InvariantViolation(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "linear program is infeasible"),
            Self::Unbounded => write!(f, "linear program is unbounded"),
            Self::IterationLimit { limit } => {
                write!(f, "simplex exceeded the pivot limit of {limit}")
            }
            Self::BadModel(why) => write!(f, "malformed linear program: {why}"),
            Self::InvariantViolation(why) => {
                write!(f, "simplex internal invariant violated: {why}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_accessors() {
        let stats = SolveStats {
            pivots_phase1: 3,
            pivots_phase2: 2,
            degenerate_pivots: 1,
            bound_flips: 2,
            wall_us: 15,
        };
        let s = Solution::new(vec![1.0, 2.0], 3.5, stats);
        assert_eq!(s.x(), &[1.0, 2.0]);
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.iterations(), 7);
        assert_eq!(s.stats(), stats);
        assert_eq!(s.into_x(), vec![1.0, 2.0]);
    }

    #[test]
    fn errors_display() {
        assert!(!SolveError::Infeasible.to_string().is_empty());
        assert!(!SolveError::Unbounded.to_string().is_empty());
        assert!(SolveError::IterationLimit { limit: 9 }
            .to_string()
            .contains('9'));
        assert!(SolveError::BadModel("x".into()).to_string().contains('x'));
        assert!(SolveError::InvariantViolation("basis".into())
            .to_string()
            .contains("basis"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SolveError>();
    }
}
