//! Solver results and errors.

use core::fmt;

/// An optimal solution to a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(x: Vec<f64>, objective: f64, iterations: usize) -> Self {
        Self {
            x,
            objective,
            iterations,
        }
    }

    /// The optimal variable assignment, indexed as in the
    /// [`LpProblem`](crate::LpProblem).
    #[inline]
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// The optimal objective value (of the *minimization*; callers that
    /// modeled a maximization by negating costs should negate back).
    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of simplex pivots performed across both phases.
    #[inline]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Consumes the solution, returning the variable assignment.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}

/// Why a linear program could not be solved to optimality.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The pivot-count safety limit was exceeded (numerical trouble or an
    /// adversarially degenerate instance).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The model itself is malformed (e.g. a variable index out of range).
    BadModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "linear program is infeasible"),
            Self::Unbounded => write!(f, "linear program is unbounded"),
            Self::IterationLimit { limit } => {
                write!(f, "simplex exceeded the pivot limit of {limit}")
            }
            Self::BadModel(why) => write!(f, "malformed linear program: {why}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_accessors() {
        let s = Solution::new(vec![1.0, 2.0], 3.5, 7);
        assert_eq!(s.x(), &[1.0, 2.0]);
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.iterations(), 7);
        assert_eq!(s.into_x(), vec![1.0, 2.0]);
    }

    #[test]
    fn errors_display() {
        assert!(!SolveError::Infeasible.to_string().is_empty());
        assert!(!SolveError::Unbounded.to_string().is_empty());
        assert!(SolveError::IterationLimit { limit: 9 }
            .to_string()
            .contains('9'));
        assert!(SolveError::BadModel("x".into()).to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SolveError>();
    }
}
