//! The linear-program model builder.

use crate::simplex::{simplex, SimplexOptions};
use crate::solution::{Solution, SolveError};

/// Direction of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j = b`
    Eq,
    /// `Σ a_j x_j ≥ b`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    /// Sparse coefficients as (variable, coefficient) pairs.
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program over non-negative variables:
///
/// ```text
/// minimize    c · x
/// subject to  Σ_j a_{ij} x_j  {≤,=,≥}  b_i      for each constraint i
///             0 ≤ x_j ≤ u_j                      (u_j optional)
/// ```
///
/// Build the model incrementally, then call [`solve`](Self::solve).
///
/// # Example
/// ```
/// use grefar_lp::{LpProblem, Relation};
///
/// # fn main() -> Result<(), grefar_lp::SolveError> {
/// // min  x0 + 2 x1   s.t.  x0 + x1 >= 3
/// let mut p = LpProblem::minimize(2);
/// p.set_objective(0, 1.0);
/// p.set_objective(1, 2.0);
/// p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 3.0);
/// let sol = p.solve()?;
/// assert!((sol.objective() - 3.0).abs() < 1e-9); // x0 = 3, x1 = 0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
    upper_bounds: Vec<Option<f64>>,
    options: SimplexOptions,
}

impl LpProblem {
    /// Creates an empty minimization over `num_vars` non-negative variables
    /// with an all-zero objective.
    pub fn minimize(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            // verify: allow(hot-path-alloc): empty builder — the row count is unknown until callers add constraints, once per problem
            rows: Vec::new(),
            upper_bounds: vec![None; num_vars],
            options: SimplexOptions::default(),
        }
    }

    /// Number of decision variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows added so far (excluding upper bounds).
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `var` to `coeff`.
    ///
    /// # Panics
    /// Panics if `var` is out of range or `coeff` is non-finite.
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> &mut Self {
        assert!(var < self.num_vars, "variable {var} out of range");
        assert!(coeff.is_finite(), "objective coefficient must be finite");
        self.objective[var] = coeff;
        self
    }

    /// Adds `delta` to the objective coefficient of variable `var`.
    ///
    /// # Panics
    /// Panics if `var` is out of range or `delta` is non-finite.
    pub fn add_objective(&mut self, var: usize, delta: f64) -> &mut Self {
        assert!(var < self.num_vars, "variable {var} out of range");
        assert!(delta.is_finite(), "objective coefficient must be finite");
        self.objective[var] += delta;
        self
    }

    /// Adds the constraint `Σ coeffs · x  relation  rhs`.
    ///
    /// Repeated variable indices in `coeffs` are summed.
    ///
    /// # Panics
    /// Panics if any variable index is out of range or any value non-finite.
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(var, c) in coeffs {
            assert!(var < self.num_vars, "variable {var} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        // verify: allow(hot-path-alloc): growing the constraint set is the builder's job; rows reallocate O(log rows) times per problem
        self.rows.push(Row {
            // verify: allow(hot-path-alloc): the Row must own its sparse coefficients; one exact-size copy per constraint build
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        self
    }

    /// Sets the upper bound `x_var ≤ upper` (lower bounds are always 0).
    ///
    /// # Panics
    /// Panics if `var` is out of range or `upper` is negative/non-finite.
    pub fn set_upper_bound(&mut self, var: usize, upper: f64) -> &mut Self {
        assert!(var < self.num_vars, "variable {var} out of range");
        assert!(
            upper.is_finite() && upper >= 0.0,
            "upper bound must be non-negative and finite, got {upper}"
        );
        self.upper_bounds[var] = Some(upper);
        self
    }

    /// Overrides the solver options (pivot limits, tolerances).
    pub fn set_options(&mut self, options: SimplexOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Solves the program with the two-phase primal simplex method.
    ///
    /// # Errors
    /// [`SolveError::Infeasible`] if no point satisfies all constraints,
    /// [`SolveError::Unbounded`] if the objective diverges to `−∞`, and
    /// [`SolveError::IterationLimit`] if the pivot safety limit is hit.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        simplex(
            self.num_vars,
            &self.objective,
            &self.rows,
            &self.upper_bounds,
            self.options,
        )
    }

    /// Evaluates the objective at a point (useful for verification).
    ///
    /// # Panics
    /// Panics if `x.len() != num_vars`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars, "point has wrong dimension");
        crate::linalg::dot(&self.objective, x)
    }

    /// Checks whether `x` satisfies every constraint and bound within
    /// tolerance `tol`.
    ///
    /// # Panics
    /// Panics if `x.len() != num_vars`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.num_vars, "point has wrong dimension");
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        for (var, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(u) = ub {
                if x[var] > u + tol {
                    return false;
                }
            }
        }
        for row in &self.rows {
            let lhs: f64 = row.coeffs.iter().map(|&(v, c)| c * x[v]).sum();
            let ok = match row.relation {
                Relation::Le => lhs <= row.rhs + tol,
                Relation::Eq => (lhs - row.rhs).abs() <= tol,
                Relation::Ge => lhs >= row.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier–Lieberman)
        // optimum: x = 2, y = 6, objective 36.
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, -3.0);
        p.set_objective(1, -5.0);
        p.set_upper_bound(0, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() + 36.0).abs() < 1e-9);
        assert!((sol.x()[0] - 2.0).abs() < 1e-9);
        assert!((sol.x()[1] - 6.0).abs() < 1e-9);
        assert!(p.is_feasible(sol.x(), 1e-9));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1  →  x = 2, y = 1.
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, 1.0);
        p.set_objective(1, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 1.0);
        let sol = p.solve().unwrap();
        assert!((sol.x()[0] - 2.0).abs() < 1e-9);
        assert!((sol.x()[1] - 1.0).abs() < 1e-9);
        assert!((sol.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = LpProblem::minimize(1);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.set_upper_bound(0, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = LpProblem::minimize(1);
        p.set_objective(0, -1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2 with min x  →  y >= x + 2, so x = 0 (y = 2 via slack-free row).
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, 1.0);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Le, -2.0);
        p.set_upper_bound(1, 10.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 0.0).abs() < 1e-9);
        assert!(p.is_feasible(sol.x(), 1e-9));
    }

    #[test]
    fn ge_with_positive_rhs() {
        // min 2x + 3y s.t. x + y >= 10, x <= 4  →  x = 4, y = 6, cost 26.
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, 2.0);
        p.set_objective(1, 3.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.set_upper_bound(0, 4.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_indices_are_summed() {
        // (x + x) <= 4 → x <= 2; max x.
        let mut p = LpProblem::minimize(1);
        p.set_objective(0, -1.0);
        p.add_constraint(&[(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let sol = p.solve().unwrap();
        assert!((sol.x()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (Beale's example structure) — must not cycle.
        let mut p = LpProblem::minimize(4);
        p.set_objective(0, -0.75);
        p.set_objective(1, 150.0);
        p.set_objective(2, -0.02);
        p.set_objective(3, 6.0);
        p.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective() + 0.05).abs() < 1e-9);
    }

    #[test]
    fn zero_constraint_problem() {
        // Pure bounds: min -x with x <= 3.
        let mut p = LpProblem::minimize(1);
        p.set_objective(0, -1.0);
        p.set_upper_bound(0, 3.0);
        let sol = p.solve().unwrap();
        assert!((sol.x()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn objective_at_and_feasibility_helpers() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(0, 1.0);
        p.add_objective(0, 1.0);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        assert_eq!(p.objective_at(&[1.5, 0.0]), 3.0);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[3.0, 0.0], 1e-9));
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9));
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
    }
}
