//! Edge-case integration tests for the LP solver: solver options, scale
//! extremes, and structured scheduling-like programs.

use grefar_lp::{LpProblem, Relation, SimplexOptions, SolveError};

#[test]
fn iteration_limit_is_reported() {
    // A healthy LP with an absurdly small pivot budget.
    let mut p = LpProblem::minimize(4);
    for j in 0..4 {
        p.set_objective(j, -1.0);
        p.set_upper_bound(j, 1.0);
    }
    p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)], Relation::Le, 2.0);
    p.set_options(SimplexOptions {
        max_pivots: 1,
        ..SimplexOptions::default()
    });
    assert!(matches!(
        p.solve(),
        Err(SolveError::IterationLimit { limit: 1 })
    ));
}

#[test]
fn zero_variable_bounds_pin_variables() {
    // ub = 0 is how schedulers encode ineligible (i, j) pairs.
    let mut p = LpProblem::minimize(3);
    p.set_objective(0, -5.0);
    p.set_objective(1, -1.0);
    p.set_objective(2, -1.0);
    p.set_upper_bound(0, 0.0);
    p.set_upper_bound(1, 2.0);
    p.set_upper_bound(2, 2.0);
    p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 3.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.x()[0], 0.0, "pinned variable must stay zero");
    assert!((sol.objective() + 3.0).abs() < 1e-9);
}

#[test]
fn widely_scaled_coefficients() {
    // min 1e-6·x + 1e6·y  s.t.  x + y >= 1e3, x <= 1e4.
    let mut p = LpProblem::minimize(2);
    p.set_objective(0, 1e-6);
    p.set_objective(1, 1e6);
    p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 1e3);
    p.set_upper_bound(0, 1e4);
    let sol = p.solve().unwrap();
    assert!((sol.x()[0] - 1e3).abs() < 1e-6, "{:?}", sol.x());
    assert!(sol.x()[1].abs() < 1e-9);
}

#[test]
fn assignment_polytope_has_integral_optimum() {
    // 3x3 assignment problem: total unimodularity means the LP optimum is
    // integral — a nice stress of the bounded simplex's vertex handling.
    let cost = [4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0];
    let var = |i: usize, j: usize| i * 3 + j;
    let mut p = LpProblem::minimize(9);
    for (idx, &c) in cost.iter().enumerate() {
        p.set_objective(idx, c);
        p.set_upper_bound(idx, 1.0);
    }
    for i in 0..3 {
        let row: Vec<(usize, f64)> = (0..3).map(|j| (var(i, j), 1.0)).collect();
        p.add_constraint(&row, Relation::Eq, 1.0);
        let col: Vec<(usize, f64)> = (0..3).map(|j| (var(j, i), 1.0)).collect();
        p.add_constraint(&col, Relation::Eq, 1.0);
    }
    let sol = p.solve().unwrap();
    // Optimal assignment: (0,1), (1,0)... enumerate: best total is 5
    // via x01+x10+x22 = 1+2+2 = 5.
    assert!((sol.objective() - 5.0).abs() < 1e-9, "{}", sol.objective());
    for v in sol.x() {
        assert!(v.abs() < 1e-7 || (v - 1.0).abs() < 1e-7, "fractional: {v}");
    }
}

#[test]
fn slot_dispatch_shape_lp() {
    // The per-slot GreFar LP shape: maximize queue-weighted service minus
    // energy, coupling h to b through capacity. Two jobs, two classes.
    let (h0, h1, b0, b1) = (0usize, 1usize, 2usize, 3usize);
    let mut p = LpProblem::minimize(4);
    p.set_objective(h0, -6.0); // q = 6
    p.set_objective(h1, -2.0); // q = 2
    p.set_objective(b0, 0.8); // V·φ·p
    p.set_objective(b1, 1.4);
    p.set_upper_bound(h0, 4.0);
    p.set_upper_bound(h1, 4.0);
    p.set_upper_bound(b0, 3.0);
    p.set_upper_bound(b1, 3.0);
    // d = (1, 2); s = (1, 1.5): h0 + 2 h1 ≤ b0 + 1.5 b1.
    p.add_constraint(
        &[(h0, 1.0), (h1, 2.0), (b0, -1.0), (b1, -1.5)],
        Relation::Le,
        0.0,
    );
    let sol = p.solve().unwrap();
    assert!(p.is_feasible(sol.x(), 1e-9));
    // Values per unit work: job 0 → 6.0, job 1 → 1.0. Supply costs per unit
    // work: class 0 → 0.8, class 1 → 1.4/1.5 ≈ 0.933. Both jobs are
    // profitable, so all capacity (3 + 4.5 = 7.5 work) is used: h0 = 4
    // (4 work), h1 = (7.5 − 4)/2 = 1.75.
    assert!((sol.x()[h0] - 4.0).abs() < 1e-9, "{:?}", sol.x());
    assert!((sol.x()[h1] - 1.75).abs() < 1e-9, "{:?}", sol.x());
    assert!((sol.x()[b0] - 3.0).abs() < 1e-9);
    assert!((sol.x()[b1] - 3.0).abs() < 1e-9);
    let expected = -6.0 * 4.0 - 2.0 * 1.75 + 0.8 * 3.0 + 1.4 * 3.0;
    assert!((sol.objective() - expected).abs() < 1e-9);
}
