//! Property-based verification of the simplex solver against brute-force
//! vertex enumeration.
//!
//! Any bounded, non-empty polyhedron `{0 ≤ x ≤ u, Ax {≤,=,≥} b}` attains the
//! LP optimum at a vertex, and every vertex solves `n` of the constraints as
//! equalities. Enumerating all `n`-subsets therefore yields ground truth for
//! small random programs.

use grefar_lp::{linalg, LpProblem, Relation, SolveError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
    upper: f64,
}

impl RandomLp {
    fn to_problem(&self) -> LpProblem {
        let mut p = LpProblem::minimize(self.num_vars);
        for (j, &c) in self.objective.iter().enumerate() {
            p.set_objective(j, c);
        }
        for (coeffs, rel, rhs) in &self.rows {
            let sparse: Vec<(usize, f64)> =
                coeffs.iter().enumerate().map(|(j, &c)| (j, c)).collect();
            p.add_constraint(&sparse, *rel, *rhs);
        }
        for j in 0..self.num_vars {
            p.set_upper_bound(j, self.upper);
        }
        p
    }

    fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.iter().any(|&v| !(-tol..=self.upper + tol).contains(&v)) {
            return false;
        }
        self.rows.iter().all(|(coeffs, rel, rhs)| {
            let lhs = linalg::dot(coeffs, x);
            match rel {
                Relation::Le => lhs <= rhs + tol,
                Relation::Eq => (lhs - rhs).abs() <= tol,
                Relation::Ge => lhs >= rhs - tol,
            }
        })
    }

    /// Brute-force optimum via vertex enumeration: every subset of size
    /// `num_vars` drawn from {constraint rows, x_j = 0, x_j = upper}.
    fn brute_force(&self) -> Option<f64> {
        let n = self.num_vars;
        // Hyperplane set: (normal, offset).
        let mut planes: Vec<(Vec<f64>, f64)> = Vec::new();
        for (coeffs, _, rhs) in &self.rows {
            planes.push((coeffs.clone(), *rhs));
        }
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            planes.push((e.clone(), 0.0));
            planes.push((e, self.upper));
        }
        let mut best: Option<f64> = None;
        let idx: Vec<usize> = (0..planes.len()).collect();
        for combo in combinations(&idx, n) {
            let mut a = Vec::with_capacity(n * n);
            let mut b = Vec::with_capacity(n);
            for &i in &combo {
                a.extend_from_slice(&planes[i].0);
                b.push(planes[i].1);
            }
            if let Some(x) = linalg::solve_dense(n, &a, &b) {
                if self.is_feasible(&x, 1e-7) {
                    let obj = linalg::dot(&self.objective, &x);
                    best = Some(match best {
                        None => obj,
                        Some(cur) => cur.min(obj),
                    });
                }
            }
        }
        best
    }
}

fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![vec![]];
    }
    if items.len() < k {
        return vec![];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        for mut rest in combinations(&items[i + 1..], k - 1) {
            rest.insert(0, first);
            out.push(rest);
        }
    }
    out
}

fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop_oneof![Just(Relation::Le), Just(Relation::Eq), Just(Relation::Ge)]
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..=3).prop_flat_map(|n| {
        let objective = proptest::collection::vec(-3.0f64..3.0, n);
        let row = (
            proptest::collection::vec(-2.0f64..2.0, n),
            relation_strategy(),
            -3.0f64..5.0,
        );
        let rows = proptest::collection::vec(row, 1..=4);
        (objective, rows).prop_map(move |(objective, rows)| RandomLp {
            num_vars: n,
            objective,
            rows,
            upper: 4.0,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The simplex optimum matches brute-force vertex enumeration, and
    /// infeasibility verdicts agree.
    #[test]
    fn simplex_matches_vertex_enumeration(lp in random_lp()) {
        let problem = lp.to_problem();
        let brute = lp.brute_force();
        match problem.solve() {
            Ok(sol) => {
                prop_assert!(problem.is_feasible(sol.x(), 1e-6),
                    "simplex returned infeasible point {:?}", sol.x());
                let brute = brute.expect("simplex found a solution but brute force found none");
                prop_assert!((sol.objective() - brute).abs() <= 1e-5 * (1.0 + brute.abs()),
                    "objective mismatch: simplex {} vs brute {}", sol.objective(), brute);
            }
            Err(SolveError::Infeasible) => {
                prop_assert!(brute.is_none(),
                    "simplex says infeasible but brute force found optimum {:?}", brute);
            }
            Err(SolveError::Unbounded) => {
                // Impossible: all variables are boxed in [0, upper].
                prop_assert!(false, "bounded LP reported unbounded");
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    /// Solving is deterministic: two runs of the same model agree exactly.
    #[test]
    fn simplex_is_deterministic(lp in random_lp()) {
        let a = lp.to_problem().solve();
        let b = lp.to_problem().solve();
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.x(), y.x());
                prop_assert_eq!(x.objective(), y.objective());
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (a, b) => prop_assert!(false, "non-deterministic outcome: {a:?} vs {b:?}"),
        }
    }
}
