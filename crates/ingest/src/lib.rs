//! Resilient input-feed layer for GreFar: a deterministic, seeded
//! unreliable-feed model between the frozen traces and the scheduler.
//!
//! GreFar's analysis (PAPER.md, §III) assumes the scheduler reads the slot's
//! electricity prices and server availability exactly. Real control planes
//! read them over feeds that time out, drop, delay, reorder and corrupt.
//! This crate models that gap end to end:
//!
//! - [`FeedProfile`] — a `;`-separated disturbance DSL in the style of
//!   `grefar_faults::FaultPlan` (e.g.
//!   `drop:feed=price,p=0.4,start=0,end=500;policy:retries=3,seed=7`),
//!   plus a [`FeedPolicy`] tuning the client. Disturbances are *pure
//!   hashes* of `(seed, slot, feed, attempt)` — stateless, so replays and
//!   checkpoint resume are bit-identical.
//! - A resilient client per feed: per-slot deadline budgets, bounded retry
//!   with exponential backoff and deterministic jitter, a circuit breaker
//!   (closed → open → half-open probing), record validation that
//!   quarantines NaN/negative garbage, and a last-known-good cache with
//!   staleness-bounded fallback estimators ([`Estimator::HoldLast`],
//!   [`Estimator::DiurnalPrior`]).
//! - [`EstimatedState`] — the state `x̂(t)` the scheduler acts on, carrying
//!   per-field [`FieldEstimate`] staleness/provenance so downstream code
//!   (`grefar_core::stale`, `grefar-report`) can reason about degradation.
//!
//! [`FeedHarness::observe`] drives one slot; `grefar-sim` wires it behind
//! `--feeds PROFILE` and `grefar_core::stale::decide_estimated` repairs the
//! estimated decision against the true state, so the run never violates
//! physical capacity even when every feed lies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod estimate;
mod profile;
mod upstream;

pub use client::{FeedHarness, DIURNAL_PERIOD};
pub use estimate::{EstimatedState, FieldEstimate, Provenance};
pub use profile::{
    CorruptMode, Disruption, DisruptionKind, Estimator, FeedKind, FeedPolicy, FeedProfile,
    FeedProfileError,
};
