//! The resilient feed client: per-slot deadline budgets, bounded retry with
//! exponential backoff + deterministic jitter, a per-feed circuit breaker
//! (closed → open → half-open probing), record validation/quarantine and a
//! last-known-good cache with staleness-bounded fallback estimators.

use crate::estimate::{EstimatedState, FieldEstimate, Provenance};
use crate::profile::{all_feeds, Estimator, FeedKind, FeedPolicy, FeedProfile, FeedProfileError};
use crate::upstream::{hash_roll, validate, GoodPayload, Upstream, FETCH_COST_MS, PURPOSE_JITTER};
use grefar_obs::{Event, NullObserver, Observer};
use grefar_types::{DataCenterState, SystemState, Tariff};

/// Period of the diurnal-prior estimator, in slots (one slot is one hour in
/// the paper's §VI-A setup).
pub const DIURNAL_PERIOD: u64 = 24;

/// Circuit-breaker state (the classic closed → open → half-open machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Fetching normally; failures accumulate in the sliding window.
    Closed,
    /// Tripped at `since`; fetches are skipped until `cooldown` elapses.
    Open { since: u64 },
    /// Cooldown elapsed; a single probe decides open vs. closed.
    HalfOpen,
}

#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    /// Sliding outcome window (`true` = failed slot-fetch).
    window: Vec<bool>,
    cursor: usize,
    filled: usize,
}

/// How many attempts the breaker allows this slot.
enum Gate {
    /// Breaker open: no attempt at all.
    Skip,
    /// Half-open: exactly one probe attempt.
    Probe,
    /// Closed: the full retry budget.
    Full,
}

impl Breaker {
    fn new(window: u64) -> Self {
        Self {
            state: BreakerState::Closed,
            window: vec![false; window as usize],
            cursor: 0,
            filled: 0,
        }
    }

    /// Gates the slot's fetch; may transition open → half-open.
    fn gate(
        &mut self,
        t: u64,
        policy: &FeedPolicy,
    ) -> (Gate, Option<(&'static str, &'static str)>) {
        match self.state {
            BreakerState::Closed => (Gate::Full, None),
            BreakerState::HalfOpen => (Gate::Probe, None),
            BreakerState::Open { since } => {
                if t >= since.saturating_add(policy.cooldown) {
                    self.state = BreakerState::HalfOpen;
                    (Gate::Probe, Some(("open", "half_open")))
                } else {
                    (Gate::Skip, None)
                }
            }
        }
    }

    /// Records the slot-fetch outcome; may trip or close the breaker.
    fn record(
        &mut self,
        success: bool,
        t: u64,
        policy: &FeedPolicy,
    ) -> Option<(&'static str, &'static str)> {
        match self.state {
            BreakerState::HalfOpen => {
                if success {
                    self.state = BreakerState::Closed;
                    self.window.iter_mut().for_each(|w| *w = false);
                    self.cursor = 0;
                    self.filled = 0;
                    Some(("half_open", "closed"))
                } else {
                    self.state = BreakerState::Open { since: t };
                    Some(("half_open", "open"))
                }
            }
            BreakerState::Closed => {
                // verify: allow(no-panic): cursor is maintained modulo window.len() two lines below
                self.window[self.cursor] = !success;
                self.cursor = (self.cursor + 1) % self.window.len();
                self.filled = (self.filled + 1).min(self.window.len());
                let fails = self.window.iter().filter(|w| **w).count() as u64;
                if fails >= policy.breaker_fails {
                    self.state = BreakerState::Open { since: t };
                    Some(("closed", "open"))
                } else {
                    None
                }
            }
            // `Skip` slots never reach `record`.
            BreakerState::Open { .. } => None,
        }
    }
}

/// One feed's client state: breaker, last-known-good cache and the diurnal
/// ring of per-hour observations.
#[derive(Debug, Clone)]
struct FeedClient {
    kind: FeedKind,
    dc: Option<usize>,
    /// Stable hash index (distinct per feed) for the disturbance rolls.
    idx: u64,
    breaker: Breaker,
    /// Newest validated record: `(slot it describes, payload)`.
    lkg: Option<(u64, GoodPayload)>,
    /// Newest validated record per hour of day.
    ring: Vec<Option<(u64, GoodPayload)>>,
}

/// Outcome of one slot's resilient fetch.
struct PollResult {
    /// Slot of the record that arrived and validated this slot, if any.
    arrived: Option<u64>,
    attempts: u64,
    /// Failure reason when nothing arrived.
    reason: &'static str,
}

impl FeedClient {
    fn new(kind: FeedKind, dc: Option<usize>, idx: u64, policy: &FeedPolicy) -> Self {
        Self {
            kind,
            dc,
            idx,
            breaker: Breaker::new(policy.breaker_window),
            lkg: None,
            ring: vec![None; DIURNAL_PERIOD as usize],
        }
    }

    fn emit_breaker(&self, t: u64, from: &'static str, to: &'static str, obs: &mut dyn Observer) {
        if !obs.enabled() {
            return;
        }
        let mut event = Event::new("feed.breaker")
            .field("t", t)
            .field("feed", self.kind.label());
        if let Some(dc) = self.dc {
            event = event.field("dc", dc);
        }
        obs.record_event(event.field("from", from).field("to", to));
        if to == "open" {
            obs.add_counter("feed.breaker_open", 1);
        }
    }

    /// The slot's resilient fetch: breaker gate, then bounded retry under
    /// the deadline budget, validating and caching whatever arrives.
    fn poll(
        &mut self,
        up: &Upstream<'_>,
        policy: &FeedPolicy,
        t: u64,
        obs: &mut dyn Observer,
    ) -> PollResult {
        let (gate, transition) = self.breaker.gate(t, policy);
        if let Some((from, to)) = transition {
            self.emit_breaker(t, from, to, obs);
        }
        let max_attempts = match gate {
            Gate::Skip => {
                let result = PollResult {
                    arrived: None,
                    attempts: 0,
                    reason: "breaker_open",
                };
                self.emit_fetch(&result, t, obs);
                return result;
            }
            Gate::Probe => 1,
            Gate::Full => 1 + policy.retries,
        };

        let mut spent = 0u64;
        let mut attempts = 0u64;
        let mut reason: &'static str = "retries_exhausted";
        let mut arrived = None;
        while attempts < max_attempts {
            if attempts > 0 {
                // Exponential backoff with deterministic jitter in
                // [0, backoff_ms); a new attempt launches only while the
                // slot's deadline budget is not exhausted.
                let shift = u32::try_from(attempts - 1).unwrap_or(16).min(16);
                let jitter = if policy.backoff_ms > 0 {
                    hash_roll(policy.seed, t, self.idx, attempts, PURPOSE_JITTER << 32)
                        % policy.backoff_ms
                } else {
                    0
                };
                spent += (policy.backoff_ms << shift) + jitter;
                if spent >= policy.deadline_ms {
                    reason = "deadline";
                    break;
                }
            }
            attempts += 1;
            match up.fetch(self.kind, self.dc, self.idx, t, attempts - 1) {
                Ok(record) => {
                    spent += FETCH_COST_MS;
                    match validate(record.payload) {
                        Ok(good) => {
                            self.store(record.slot, good);
                            arrived = Some(record.slot);
                            break;
                        }
                        Err(why) => {
                            reason = "quarantined";
                            if obs.enabled() {
                                let mut event = Event::new("feed.quarantine")
                                    .field("t", t)
                                    .field("feed", self.kind.label());
                                if let Some(dc) = self.dc {
                                    event = event.field("dc", dc);
                                }
                                obs.record_event(event.field("reason", why));
                                obs.add_counter("feed.quarantined", 1);
                            }
                        }
                    }
                }
                Err(failure) => {
                    spent += failure.cost_ms(policy.timeout_ms);
                    reason = failure.reason();
                }
            }
        }

        if let Some((from, to)) = self.breaker.record(arrived.is_some(), t, policy) {
            self.emit_breaker(t, from, to, obs);
        }
        let result = PollResult {
            arrived,
            attempts,
            reason,
        };
        self.emit_fetch(&result, t, obs);
        result
    }

    /// Emits the `feed.fetch` event for noteworthy outcomes (any failure,
    /// or a success that needed retries) plus the fetch counters.
    fn emit_fetch(&self, result: &PollResult, t: u64, obs: &mut dyn Observer) {
        if !obs.enabled() {
            return;
        }
        if result.attempts > 1 {
            obs.add_counter("feed.retries", result.attempts - 1);
        }
        if result.arrived.is_none() {
            obs.add_counter("feed.failures", 1);
        }
        if result.arrived.is_some() && result.attempts <= 1 {
            return; // clean fetches stay silent — counters only
        }
        let mut event = Event::new("feed.fetch")
            .field("t", t)
            .field("feed", self.kind.label());
        if let Some(dc) = self.dc {
            event = event.field("dc", dc);
        }
        event = event
            .field(
                "outcome",
                if result.arrived.is_some() {
                    "ok"
                } else {
                    "fail"
                },
            )
            .field("attempts", result.attempts);
        if result.arrived.is_none() {
            event = event.field("reason", result.reason);
        }
        obs.record_event(event);
    }

    /// Caches a validated record (keeping the newest per cache).
    fn store(&mut self, slot: u64, good: GoodPayload) {
        let hour = (slot % DIURNAL_PERIOD) as usize;
        if let Some(entry) = self.ring.get_mut(hour) {
            if entry.as_ref().is_none_or(|(s, _)| slot >= *s) {
                *entry = Some((slot, good.clone()));
            }
        }
        if self.lkg.as_ref().is_none_or(|(s, _)| slot >= *s) {
            self.lkg = Some((slot, good));
        }
    }

    /// The field estimate for slot `t`, given whether a record arrived this
    /// slot. Falls back to the policy's estimator, then to `prior`.
    fn estimate(
        &self,
        t: u64,
        policy: &FeedPolicy,
        arrived: Option<u64>,
        prior: impl FnOnce() -> GoodPayload,
    ) -> (GoodPayload, FieldEstimate) {
        if arrived.is_some() {
            // An arrival always lands in the last-known-good cache (the
            // cache keeps the newest record, so it can only be newer).
            // verify: allow(no-panic): `store` ran for this arrival earlier in the same poll, so lkg is populated
            let (slot, payload) = self.lkg.clone().expect("arrival was cached");
            let age = t - slot;
            let provenance = if age == 0 {
                Provenance::Fresh
            } else {
                Provenance::Delayed
            };
            return (payload, FieldEstimate { age, provenance });
        }
        let hold = self
            .lkg
            .clone()
            .map(|(slot, payload)| (slot, payload, Provenance::HeldLast));
        let pick = match policy.estimator {
            Estimator::HoldLast => hold,
            Estimator::DiurnalPrior => {
                let slot_entry = self
                    .ring
                    .get((t % DIURNAL_PERIOD) as usize)
                    .and_then(Option::as_ref);
                match slot_entry {
                    Some((slot, payload)) => {
                        Some((*slot, payload.clone(), Provenance::DiurnalPrior))
                    }
                    None => hold,
                }
            }
        };
        match pick {
            Some((slot, payload, provenance)) => {
                let age = t - slot;
                let provenance = if age > policy.max_stale {
                    Provenance::Expired
                } else {
                    provenance
                };
                (payload, FieldEstimate { age, provenance })
            }
            None => (
                prior(),
                FieldEstimate {
                    age: t + 1,
                    provenance: Provenance::Prior,
                },
            ),
        }
    }
}

/// The whole feed layer of one run: a resilient client per feed, pulling
/// from the profile's unreliable upstream and assembling the per-slot
/// [`EstimatedState`] the scheduler acts on.
///
/// Feeds (for `n` data centers): `n` price feeds, `n` availability feeds,
/// one arrivals feed. Call [`observe`](FeedHarness::observe) exactly once
/// per slot, in slot order — the breaker windows and caches advance with
/// each call, and replaying the same slots reproduces the same state
/// (see [`fast_forward`](FeedHarness::fast_forward)).
#[derive(Debug, Clone)]
pub struct FeedHarness {
    profile: FeedProfile,
    num_dcs: usize,
    clients: Vec<FeedClient>,
}

impl FeedHarness {
    /// Builds the feed layer for a system with `num_dcs` data centers.
    ///
    /// # Errors
    /// [`FeedProfileError`] if the profile targets a data center out of
    /// range.
    pub fn new(profile: FeedProfile, num_dcs: usize) -> Result<Self, FeedProfileError> {
        profile.validate_for(num_dcs)?;
        let policy = *profile.policy();
        let clients = all_feeds(num_dcs)
            .into_iter()
            .enumerate()
            .map(|(idx, (kind, dc))| FeedClient::new(kind, dc, idx as u64, &policy))
            .collect();
        Ok(Self {
            profile,
            num_dcs,
            clients,
        })
    }

    /// The profile in force.
    pub fn profile(&self) -> &FeedProfile {
        &self.profile
    }

    /// Runs every feed's resilient fetch for slot `t` against the frozen
    /// truth (`states`/`arrivals`, indexed by slot) and assembles the
    /// estimate the scheduler will act on. Emits `feed.*` telemetry.
    ///
    /// # Panics
    /// Panics if `t` is outside the horizon or the truth's shape mismatches
    /// the harness.
    pub fn observe(
        &mut self,
        t: u64,
        states: &[SystemState],
        arrivals: &[Vec<f64>],
        obs: &mut dyn Observer,
    ) -> EstimatedState {
        assert!((t as usize) < states.len(), "slot {t} outside the horizon");
        // verify: allow(no-panic): bounds asserted on the line above
        let truth = &states[t as usize];
        assert_eq!(
            truth.num_data_centers(),
            self.num_dcs,
            "truth has a different data-center count"
        );
        let policy = *self.profile.policy();
        let up = Upstream::new(&self.profile, states, arrivals);
        let n = self.num_dcs;

        let mut dcs = Vec::with_capacity(n);
        let mut price_meta = Vec::with_capacity(n);
        let mut avail_meta = Vec::with_capacity(n);
        for i in 0..n {
            let truth_dc = truth.data_center(i);
            let arrived = self.clients[i].poll(&up, &policy, t, obs).arrived; // verify: allow(no-panic): the constructor builds exactly 2n+1 clients, i < n
            let (tariff, meta) = match self.clients[i].estimate(t, &policy, arrived, || {
                GoodPayload::Price(Tariff::flat(0.0))
            }) {
                (GoodPayload::Price(tariff), meta) => (tariff, meta),
                (other, _) => unreachable!("price feed served {other:?}"), // verify: allow(no-panic): feed index < n serves Price payloads by construction
            };
            price_meta.push(meta);

            let classes = truth_dc.available_slice().len();
            let arrived = self.clients[n + i].poll(&up, &policy, t, obs).arrived; // verify: allow(no-panic): the constructor builds exactly 2n+1 clients, n + i < 2n
            let (levels, meta) = match self.clients[n + i].estimate(t, &policy, arrived, || {
                GoodPayload::Levels(vec![0.0; classes])
            }) {
                (GoodPayload::Levels(levels), meta) => (levels, meta),
                (other, _) => unreachable!("availability feed served {other:?}"), // verify: allow(no-panic): feed indices n..2n serve Levels payloads by construction
            };
            avail_meta.push(meta);
            dcs.push(DataCenterState::new(levels, tariff));
        }

        let arrivals_client = &mut self.clients[2 * n]; // verify: allow(no-panic): the constructor builds exactly 2n+1 clients; 2n is the arrivals feed
        let arrived = arrivals_client.poll(&up, &policy, t, obs).arrived;
        let classes = arrivals.first().map_or(0, Vec::len);
        let (arrivals_prev, arrivals_meta) =
            match arrivals_client.estimate(t, &policy, arrived, || {
                GoodPayload::Levels(vec![0.0; classes])
            }) {
                (GoodPayload::Levels(levels), meta) => (levels, meta),
                (other, _) => unreachable!("arrivals feed served {other:?}"), // verify: allow(no-panic): feed index 2n serves Levels payloads by construction
            };

        EstimatedState::new(
            SystemState::new(t, dcs),
            price_meta,
            avail_meta,
            arrivals_prev,
            arrivals_meta,
        )
    }

    /// Replays slots `0..upto` silently, reconstructing the exact client
    /// state (breakers, caches) a run reaches after `upto` observed slots —
    /// the feed half of bit-identical checkpoint resume. Call on a freshly
    /// built harness.
    pub fn fast_forward(&mut self, states: &[SystemState], arrivals: &[Vec<f64>], upto: u64) {
        let mut null = NullObserver;
        for t in 0..upto {
            let _ = self.observe(t, states, arrivals, &mut null);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Test sink that keeps the full events (MemoryObserver only counts).
    #[derive(Default)]
    struct Recorder {
        events: Vec<Event>,
        counters: BTreeMap<&'static str, u64>,
    }

    impl Recorder {
        fn new() -> Self {
            Self::default()
        }

        fn events(&self) -> &[Event] {
            &self.events
        }

        fn event_count(&self, name: &str) -> usize {
            self.events.iter().filter(|e| e.name() == name).count()
        }

        fn counter(&self, name: &str) -> u64 {
            self.counters.get(name).copied().unwrap_or(0)
        }
    }

    impl Observer for Recorder {
        fn record_event(&mut self, event: Event) {
            self.events.push(event);
        }

        fn add_counter(&mut self, name: &'static str, delta: u64) {
            *self.counters.entry(name).or_insert(0) += delta;
        }
    }

    fn truth(slots: usize, dcs: usize) -> (Vec<SystemState>, Vec<Vec<f64>>) {
        let states = (0..slots)
            .map(|t| {
                SystemState::new(
                    t as u64,
                    (0..dcs)
                        .map(|i| {
                            DataCenterState::new(
                                vec![10.0 + i as f64],
                                Tariff::flat(0.2 + 0.01 * t as f64),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let arrivals = (0..slots).map(|t| vec![(t % 5) as f64]).collect();
        (states, arrivals)
    }

    fn harness(spec: &str, dcs: usize) -> FeedHarness {
        FeedHarness::new(FeedProfile::parse(spec).unwrap(), dcs).unwrap()
    }

    #[test]
    fn perfect_profile_estimates_are_fresh_truth() {
        let (states, arrivals) = truth(30, 2);
        let mut h = harness("", 2);
        let mut obs = Recorder::new();
        for t in 0..30u64 {
            let est = h.observe(t, &states, &arrivals, &mut obs);
            assert!(est.is_fresh(), "slot {t}");
            assert_eq!(est.state(), &states[t as usize], "slot {t}");
            if t > 0 {
                assert_eq!(est.arrivals_prev(), &arrivals[t as usize - 1][..]);
            }
        }
        assert_eq!(obs.event_count("feed.fetch"), 0);
        assert_eq!(obs.event_count("feed.breaker"), 0);
        assert_eq!(obs.event_count("feed.quarantine"), 0);
    }

    #[test]
    fn outage_falls_back_to_hold_last_with_growing_age() {
        let (states, arrivals) = truth(30, 1);
        // Breaker kept out of the way (8 fails needed, outage is 4 slots):
        // this test is about the hold-last fallback alone.
        let mut h = harness(
            "outage:feed=price,dc=0,start=10,end=14;policy:breaker_fails=8",
            1,
        );
        let mut obs = Recorder::new();
        for t in 0..10u64 {
            h.observe(t, &states, &arrivals, &mut obs);
        }
        for (t, want_age) in [(10u64, 1u64), (11, 2), (12, 3), (13, 4)] {
            let est = h.observe(t, &states, &arrivals, &mut obs);
            let f = est.price_estimate(0);
            assert_eq!(f.provenance, Provenance::HeldLast, "slot {t}");
            assert_eq!(f.age, want_age, "slot {t}");
            // The held price is the slot-9 truth.
            let held = est.state().data_center(0).price();
            assert!((held - states[9].data_center(0).price()).abs() < 1e-12);
        }
        // Recovery: slot 14 fetches fresh again.
        let est = h.observe(14, &states, &arrivals, &mut obs);
        assert!(est.price_estimate(0).provenance.is_fresh());
        assert!(obs.event_count("feed.fetch") >= 4);
    }

    #[test]
    fn breaker_opens_after_repeated_failures_and_reprobes() {
        let (states, arrivals) = truth(60, 1);
        // Default policy: window 8, 4 fails trip, cooldown 6, 3 attempts.
        let mut h = harness("outage:feed=avail,dc=0,start=5,end=40", 1);
        let mut obs = Recorder::new();
        for t in 0..60u64 {
            h.observe(t, &states, &arrivals, &mut obs);
        }
        let breakers: Vec<(u64, String, String)> = obs
            .events()
            .iter()
            .filter(|e| e.name() == "feed.breaker")
            .map(|e| {
                let t = match e.get("t").unwrap() {
                    grefar_obs::Value::U64(v) => *v,
                    other => panic!("t {other:?}"),
                };
                let get = |k: &str| match e.get(k).unwrap() {
                    grefar_obs::Value::Str(s) => s.clone(),
                    other => panic!("{k} {other:?}"),
                };
                (t, get("from"), get("to"))
            })
            .collect();
        // Trips at the 4th failed slot (5,6,7,8).
        assert_eq!(breakers[0], (8, "closed".into(), "open".into()));
        // Half-open probe after the cooldown, which fails and re-opens.
        assert_eq!(breakers[1], (14, "open".into(), "half_open".into()));
        assert_eq!(breakers[2], (14, "half_open".into(), "open".into()));
        // Eventually the outage ends and a probe closes the breaker.
        let closed = breakers
            .iter()
            .find(|(_, _, to)| to == "closed")
            .expect("breaker closes after recovery");
        assert!(closed.0 >= 40);
        // While open, slots are skipped without attempts.
        let skipped = obs
            .events()
            .iter()
            .filter(|e| e.name() == "feed.fetch")
            .filter(|e| {
                matches!(e.get("reason"), Some(grefar_obs::Value::Str(s)) if s == "breaker_open")
            })
            .count();
        assert!(
            skipped >= 4,
            "open breaker should skip fetches, got {skipped}"
        );
    }

    /// Extracts `(t, from, to)` breaker transitions from a recorded stream.
    fn transitions(obs: &Recorder) -> Vec<(u64, String, String)> {
        obs.events()
            .iter()
            .filter(|e| e.name() == "feed.breaker")
            .map(|e| {
                let t = match e.get("t").unwrap() {
                    grefar_obs::Value::U64(v) => *v,
                    other => panic!("t {other:?}"),
                };
                let get = |k: &str| match e.get(k).unwrap() {
                    grefar_obs::Value::Str(s) => s.clone(),
                    other => panic!("{k} {other:?}"),
                };
                (t, get("from"), get("to"))
            })
            .collect()
    }

    // The three tests below exercise the breaker under the *daemon's*
    // call patterns. The batch simulator observes each slot exactly once,
    // in order; a real-time clock also re-enters a slot (a probe still in
    // flight when the monitor fires again), flaps open→half-open→open
    // inside a single slot (cooldown=1 against a persistent outage), and
    // jumps many slots at once (wall time passed while the process was
    // stalled). The breaker must stay deterministic under all three.

    #[test]
    fn reprobe_within_the_same_slot_is_gated_off() {
        let (states, arrivals) = truth(40, 1);
        // Trip fast (2 fails in a window of 2) so the episode is short.
        let mut h = harness(
            "outage:feed=price,dc=0,start=4,end=40;\
             policy:breaker_window=2,breaker_fails=2,cooldown=2",
            1,
        );
        let mut obs = Recorder::new();
        for t in 0..6u64 {
            h.observe(t, &states, &arrivals, &mut obs);
        }
        // Trips at the second failed slot.
        assert_eq!(transitions(&obs)[0], (5, "closed".into(), "open".into()));

        // Cooldown elapses at slot 7: the first observation transitions to
        // half-open and spends its single probe (which fails and re-opens).
        h.observe(6, &states, &arrivals, &mut obs);
        h.observe(7, &states, &arrivals, &mut obs);
        let after_probe = transitions(&obs);
        assert_eq!(after_probe[1], (7, "open".into(), "half_open".into()));
        assert_eq!(after_probe[2], (7, "half_open".into(), "open".into()));

        // Re-entering slot 7 — the real-time monitor firing again while the
        // probe's outcome is already decided — must NOT launch a second
        // probe: `since` was re-stamped to 7, the cooldown window restarts,
        // and the repeat observation is skipped with zero attempts.
        let before = obs.event_count("feed.fetch");
        h.observe(7, &states, &arrivals, &mut obs);
        assert_eq!(transitions(&obs).len(), 3, "no extra transitions");
        let last = obs.events()[obs.events().len() - 1].clone();
        assert_eq!(last.name(), "feed.fetch");
        assert!(
            matches!(last.get("reason"), Some(grefar_obs::Value::Str(s)) if s == "breaker_open"),
            "re-probe in the same slot must be gated off"
        );
        assert_eq!(obs.event_count("feed.fetch"), before + 1);
    }

    #[test]
    fn cooldown_one_flaps_open_half_open_open_within_one_slot() {
        let (states, arrivals) = truth(30, 1);
        let mut h = harness(
            "outage:feed=price,dc=0,start=2,end=30;\
             policy:breaker_window=2,breaker_fails=2,cooldown=1",
            1,
        );
        let mut obs = Recorder::new();
        for t in 0..10u64 {
            h.observe(t, &states, &arrivals, &mut obs);
        }
        let ts = transitions(&obs);
        assert_eq!(ts[0], (3, "closed".into(), "open".into()));
        // From slot 4 on, every slot replays the full flap: the one-slot
        // cooldown has always just elapsed, so the gate goes half-open and
        // the failed probe re-opens — two transitions, one slot, repeated.
        for (i, t) in (4..10u64).enumerate() {
            assert_eq!(
                ts[1 + 2 * i],
                (t, "open".into(), "half_open".into()),
                "slot {t}"
            );
            assert_eq!(
                ts[2 + 2 * i],
                (t, "half_open".into(), "open".into()),
                "slot {t}"
            );
        }
        // Each flap costs exactly one probe attempt, never the full retry
        // budget: the breaker still sheds load even while flapping.
        let probes = obs
            .events()
            .iter()
            .filter(|e| e.name() == "feed.fetch")
            .filter(|e| matches!(e.get("t"), Some(grefar_obs::Value::U64(t)) if *t >= 4))
            .all(|e| matches!(e.get("attempts"), Some(grefar_obs::Value::U64(a)) if *a <= 1));
        assert!(probes, "flapping probes must be single-attempt");
    }

    #[test]
    fn slot_jump_past_cooldown_probes_once_and_recovers() {
        let (states, arrivals) = truth(80, 1);
        // Outage ends at slot 10; the breaker trips inside it.
        let mut h = harness(
            "outage:feed=price,dc=0,start=2,end=10;\
             policy:breaker_window=2,breaker_fails=2,cooldown=4",
            1,
        );
        let mut obs = Recorder::new();
        for t in 0..4u64 {
            h.observe(t, &states, &arrivals, &mut obs);
        }
        assert_eq!(transitions(&obs)[0], (3, "closed".into(), "open".into()));

        // The daemon stalls and wakes up 50 slots later. The jump is far
        // past the cooldown: exactly one half-open probe runs (not one per
        // skipped slot), it succeeds against the recovered upstream, and
        // the breaker closes with a cleared failure window.
        let before = obs.event_count("feed.fetch");
        let est = h.observe(53, &states, &arrivals, &mut obs);
        let ts = transitions(&obs);
        assert_eq!(ts[1], (53, "open".into(), "half_open".into()));
        assert_eq!(ts[2], (53, "half_open".into(), "closed".into()));
        assert_eq!(ts.len(), 3);
        assert_eq!(obs.event_count("feed.fetch"), before, "clean probe");
        assert!(est.price_estimate(0).provenance.is_fresh());

        // The cleared window means one stray failure does not re-trip: the
        // breaker needs a full fresh streak of `breaker_fails` failures.
        let mut h2 = harness(
            "outage:feed=price,dc=0,start=2,end=10;outage:feed=price,dc=0,start=60,end=61;\
             policy:breaker_window=2,breaker_fails=2,cooldown=4",
            1,
        );
        let mut obs2 = Recorder::new();
        for t in 0..4u64 {
            h2.observe(t, &states, &arrivals, &mut obs2);
        }
        h2.observe(53, &states, &arrivals, &mut obs2);
        h2.observe(60, &states, &arrivals, &mut obs2);
        let ts2 = transitions(&obs2);
        assert!(
            !ts2.iter().any(|(t, _, to)| *t == 60 && to == "open"),
            "one failure after recovery must not re-trip a cleared window"
        );
    }

    #[test]
    fn quarantine_guards_nan_and_negative_records() {
        let (states, arrivals) = truth(20, 1);
        let mut h = harness("corrupt:feed=price,p=1,mode=nan,start=0,end=20", 1);
        let mut obs = Recorder::new();
        let est = h.observe(0, &states, &arrivals, &mut obs);
        // Slot 0, nothing ever cached: the conservative zero prior serves.
        assert_eq!(est.price_estimate(0).provenance, Provenance::Prior);
        assert!(est.state().data_center(0).price().abs() < 1e-12);
        assert!(obs.event_count("feed.quarantine") >= 1);
        assert_eq!(obs.counter("feed.quarantined") > 0, true);
        // Availability stays fresh — corruption only hit the price feed.
        assert!(est.avail_estimate(0).provenance.is_fresh());
    }

    #[test]
    fn diurnal_estimator_prefers_same_hour_of_day() {
        let (mut states, arrivals) = truth(80, 1);
        // Make the price strongly hour-dependent: price = hour/100.
        for (t, s) in states.iter_mut().enumerate() {
            *s = SystemState::new(
                t as u64,
                vec![DataCenterState::new(
                    vec![10.0],
                    Tariff::flat((t % 24) as f64 / 100.0),
                )],
            );
        }
        let mut h = harness(
            "outage:feed=price,dc=0,start=48,end=72;policy:estimator=diurnal,max_stale=30",
            1,
        );
        let mut obs = Recorder::new();
        let mut checked = false;
        for t in 0..72u64 {
            let est = h.observe(t, &states, &arrivals, &mut obs);
            if (48..72).contains(&t) && t % 24 != 0 {
                let f = est.price_estimate(0);
                // Breaker-open slots still estimate; same-hour prior means
                // the served price matches the hour exactly, age ≈ 24.
                assert_eq!(f.provenance, Provenance::DiurnalPrior, "slot {t}");
                assert_eq!(f.age, 24, "slot {t}");
                let served = est.state().data_center(0).price();
                assert!(
                    (served - (t % 24) as f64 / 100.0).abs() < 1e-12,
                    "slot {t} served {served}"
                );
                checked = true;
            }
        }
        assert!(checked);
    }

    #[test]
    fn expired_provenance_past_max_stale() {
        let (states, arrivals) = truth(40, 1);
        let mut h = harness(
            "outage:feed=price,dc=0,start=5,end=40;policy:max_stale=10,breaker_fails=8,breaker_window=8",
            1,
        );
        let mut obs = Recorder::new();
        let mut saw_expired = false;
        for t in 0..40u64 {
            let est = h.observe(t, &states, &arrivals, &mut obs);
            let f = est.price_estimate(0);
            if f.age > 10 {
                assert_eq!(f.provenance, Provenance::Expired, "slot {t}");
                saw_expired = true;
            }
        }
        assert!(saw_expired);
    }

    #[test]
    fn identical_seeds_replay_identical_event_streams() {
        let (states, arrivals) = truth(120, 2);
        let spec =
            "drop:feed=price,p=0.4,start=0,end=120;timeout:feed=avail,p=0.3,start=0,end=120;\
                    corrupt:feed=price,p=0.2,mode=nan,start=0,end=120;policy:seed=42";
        let run = |spec: &str| {
            let mut h = harness(spec, 2);
            let mut obs = Recorder::new();
            let mut estimates = Vec::new();
            for t in 0..120u64 {
                estimates.push(h.observe(t, &states, &arrivals, &mut obs));
            }
            let events: Vec<String> = obs.events().iter().map(|e| e.to_json()).collect();
            (estimates, events)
        };
        let (est_a, ev_a) = run(spec);
        let (est_b, ev_b) = run(spec);
        assert_eq!(est_a, est_b, "estimates must be deterministic");
        assert_eq!(ev_a, ev_b, "telemetry must be byte-identical");
        assert!(!ev_a.is_empty());
        let (_, ev_c) = run(&spec.replace("seed=42", "seed=43"));
        assert_ne!(ev_a, ev_c, "a different seed must change the schedule");
    }

    #[test]
    fn fast_forward_matches_live_observation() {
        let (states, arrivals) = truth(100, 2);
        let spec = "drop:feed=price,p=0.5,start=0,end=100;outage:feed=avail,dc=1,start=20,end=60;\
                    policy:seed=3";
        let mut live = harness(spec, 2);
        let mut null = NullObserver;
        for t in 0..70u64 {
            live.observe(t, &states, &arrivals, &mut null);
        }
        let mut replayed = harness(spec, 2);
        replayed.fast_forward(&states, &arrivals, 70);
        // From slot 70 on, both harnesses must produce identical estimates.
        for t in 70..100u64 {
            let a = live.observe(t, &states, &arrivals, &mut null);
            let b = replayed.observe(t, &states, &arrivals, &mut null);
            assert_eq!(a, b, "slot {t}");
        }
    }

    #[test]
    fn rejects_out_of_range_dc() {
        let profile = FeedProfile::parse("outage:feed=price,dc=5,start=0,end=4").unwrap();
        assert!(FeedHarness::new(profile, 2).is_err());
    }
}
