//! The `FeedProfile` DSL: a compact, replayable description of *how* the
//! input feeds misbehave and *how* the resilient client is tuned.
//!
//! Mirrors the `grefar_faults::FaultPlan` spec style: `;`-separated clauses
//! of the form `kind:key=value,...`, half-open slot windows `[start, end)`,
//! and an exact [`FeedProfile::parse`] / [`FeedProfile::spec`] round-trip so
//! a run (or a checkpoint) can carry its feed schedule verbatim.

use core::fmt;

/// A malformed or inapplicable feed profile (bad spec syntax, out-of-range
/// indices, inverted windows, invalid probabilities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedProfileError {
    message: String,
}

impl FeedProfileError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for FeedProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid feed profile: {}", self.message)
    }
}

impl std::error::Error for FeedProfileError {}

/// Which signal a feed delivers (§III-A: prices and availability are the
/// *remote*, time-varying inputs; arrivals are measured at the front end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedKind {
    /// Per-data-center electricity tariff (§III-A.2).
    Price,
    /// Per-data-center server availability `n_{i,k}(t)` (§III-A.1).
    Availability,
    /// The front end's arrival counter `a_j(t-1)` (one global feed; GreFar
    /// itself never *needs* it — §II — so its estimate is carried for
    /// telemetry and estimation-error accounting only).
    Arrivals,
}

impl FeedKind {
    /// The DSL keyword (`"price"`, `"avail"`, `"arrivals"`) — also the
    /// `feed` field of `feed.*` telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            FeedKind::Price => "price",
            FeedKind::Availability => "avail",
            FeedKind::Arrivals => "arrivals",
        }
    }
}

/// How a corrupt record is mangled on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorruptMode {
    /// The payload carries a NaN (caught by validation, quarantined).
    Nan,
    /// The payload turns negative (caught by validation, quarantined).
    Negative,
    /// The payload is scaled by `factor` — *well-formed but wrong*, so it
    /// passes validation and silently skews the estimate.
    Spike {
        /// Multiplier applied to the payload.
        factor: f64,
    },
}

impl CorruptMode {
    fn label(self) -> &'static str {
        match self {
            CorruptMode::Nan => "nan",
            CorruptMode::Negative => "negative",
            CorruptMode::Spike { .. } => "spike",
        }
    }
}

/// What a single disruption clause does to matching feeds inside its window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DisruptionKind {
    /// `outage:` — the upstream is hard-down (every attempt fails).
    Outage,
    /// `drop:p=P` — each fetch attempt fails fast with probability `P`.
    Drop {
        /// Per-attempt drop probability in `[0, 1]`.
        p: f64,
    },
    /// `timeout:p=P` — each attempt times out with probability `P`,
    /// burning the policy's `timeout_ms` from the slot's deadline budget.
    Timeout {
        /// Per-attempt timeout probability in `[0, 1]`.
        p: f64,
    },
    /// `delay:slots=K` — served records lag `K` slots behind real time.
    Delay {
        /// Lag in slots (`≥ 1`).
        slots: u64,
    },
    /// `reorder:window=K,p=P` — with probability `P` the served record is
    /// an out-of-order one, `1..=K` slots old.
    Reorder {
        /// Maximum out-of-order age in slots (`≥ 1`).
        window: u64,
        /// Per-fetch reorder probability in `[0, 1]`.
        p: f64,
    },
    /// `corrupt:p=P,mode=M[,factor=F]` — each delivered record is mangled
    /// with probability `P` per [`CorruptMode`].
    Corrupt {
        /// Per-record corruption probability in `[0, 1]`.
        p: f64,
        /// How the record is mangled.
        mode: CorruptMode,
    },
}

/// One timed disruption: a [`DisruptionKind`] applied to every matching
/// feed over the half-open slot window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disruption {
    /// What happens.
    pub kind: DisruptionKind,
    /// Which feed kind it hits.
    pub feed: FeedKind,
    /// The targeted data center, or `None` for every data center
    /// (always `None` for the arrivals feed).
    pub dc: Option<usize>,
    /// First affected slot.
    pub start: u64,
    /// First slot past the window.
    pub end: u64,
}

impl Disruption {
    /// The DSL keyword for this disruption's kind.
    pub fn label(&self) -> &'static str {
        match self.kind {
            DisruptionKind::Outage => "outage",
            DisruptionKind::Drop { .. } => "drop",
            DisruptionKind::Timeout { .. } => "timeout",
            DisruptionKind::Delay { .. } => "delay",
            DisruptionKind::Reorder { .. } => "reorder",
            DisruptionKind::Corrupt { .. } => "corrupt",
        }
    }

    /// Whether the disruption is active during `slot`.
    pub fn active_at(&self, slot: u64) -> bool {
        self.start <= slot && slot < self.end
    }

    /// Whether the disruption applies to the feed `(kind, dc)`.
    pub fn matches(&self, kind: FeedKind, dc: Option<usize>) -> bool {
        self.feed == kind && (self.dc.is_none() || self.dc == dc)
    }

    /// Whether this disruption can make a whole slot-fetch fail (as opposed
    /// to merely aging or skewing the record). Spikes pass validation, so
    /// only detectable corruption counts.
    pub(crate) fn can_fail_fetch(&self) -> bool {
        match self.kind {
            DisruptionKind::Outage
            | DisruptionKind::Drop { .. }
            | DisruptionKind::Timeout { .. } => true,
            DisruptionKind::Corrupt { mode, .. } => !matches!(mode, CorruptMode::Spike { .. }),
            DisruptionKind::Delay { .. } | DisruptionKind::Reorder { .. } => false,
        }
    }

    /// The canonical DSL clause for this disruption (parses back to `self`).
    pub fn spec(&self) -> String {
        let mut out = format!("{}:feed={}", self.label(), self.feed.label());
        if let Some(dc) = self.dc {
            out.push_str(&format!(",dc={dc}"));
        }
        match self.kind {
            DisruptionKind::Outage => {}
            DisruptionKind::Drop { p } | DisruptionKind::Timeout { p } => {
                out.push_str(&format!(",p={p}"));
            }
            DisruptionKind::Delay { slots } => out.push_str(&format!(",slots={slots}")),
            DisruptionKind::Reorder { window, p } => {
                out.push_str(&format!(",window={window},p={p}"));
            }
            DisruptionKind::Corrupt { p, mode } => {
                out.push_str(&format!(",p={p},mode={}", mode.label()));
                if let CorruptMode::Spike { factor } = mode {
                    out.push_str(&format!(",factor={factor}"));
                }
            }
        }
        out.push_str(&format!(",start={},end={}", self.start, self.end));
        out
    }

    fn validate(&self, index: usize) -> Result<(), FeedProfileError> {
        let err = |msg: String| {
            FeedProfileError::new(format!("disruption {index} ({}): {msg}", self.label()))
        };
        if self.start >= self.end {
            return Err(err(format!("empty window [{}, {})", self.start, self.end)));
        }
        if self.feed == FeedKind::Arrivals && self.dc.is_some() {
            return Err(err("the arrivals feed is global; drop the `dc` key".into()));
        }
        let prob = |p: f64| -> Result<(), FeedProfileError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(err(format!("probability must lie in [0, 1], got {p}")));
            }
            Ok(())
        };
        match self.kind {
            DisruptionKind::Outage => {}
            DisruptionKind::Drop { p } | DisruptionKind::Timeout { p } => prob(p)?,
            DisruptionKind::Delay { slots } => {
                if slots == 0 {
                    return Err(err("slots must be at least 1".into()));
                }
            }
            DisruptionKind::Reorder { window, p } => {
                prob(p)?;
                if window == 0 {
                    return Err(err("window must be at least 1".into()));
                }
            }
            DisruptionKind::Corrupt { p, mode } => {
                prob(p)?;
                if let CorruptMode::Spike { factor } = mode {
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(err(format!(
                            "spike factor must be finite and positive, got {factor}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Which fallback estimator fills in for a feed that produced no fresh
/// record this slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// Serve the last-known-good record (zero-order hold).
    #[default]
    HoldLast,
    /// Serve the last-known-good record *for this hour of day* (period-24
    /// diurnal prior; prices and availability are diurnal in §VI-A),
    /// falling back to hold-last when the hour was never observed.
    DiurnalPrior,
}

impl Estimator {
    /// The DSL keyword (`"hold"` / `"diurnal"`).
    pub fn label(self) -> &'static str {
        match self {
            Estimator::HoldLast => "hold",
            Estimator::DiurnalPrior => "diurnal",
        }
    }
}

/// Tuning of the resilient client: retry/backoff, per-slot deadline budget,
/// circuit breaker and staleness policy. Set via a single `policy:` clause;
/// every key is optional and defaults to the values of
/// [`FeedPolicy::default`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedPolicy {
    /// Retries after the first attempt (so at most `1 + retries` attempts).
    pub retries: u64,
    /// Base backoff between attempts, in simulated milliseconds; attempt
    /// `k` waits `backoff_ms · 2^(k-1)` plus deterministic jitter in
    /// `[0, backoff_ms)`.
    pub backoff_ms: u64,
    /// Cost of a timed-out attempt, in simulated milliseconds.
    pub timeout_ms: u64,
    /// Per-slot deadline budget, in simulated milliseconds: a new attempt
    /// launches only while the budget is not exhausted.
    pub deadline_ms: u64,
    /// Sliding-window length (in slot-fetches) the breaker watches.
    pub breaker_window: u64,
    /// Failures within the window that trip the breaker open.
    pub breaker_fails: u64,
    /// Slots the breaker stays open before half-open probing.
    pub cooldown: u64,
    /// Admissible staleness in slots; older estimates are still served (the
    /// scheduler must act every slot) but carry `expired` provenance.
    pub max_stale: u64,
    /// Fallback estimator for slots without a fresh record.
    pub estimator: Estimator,
    /// Seed of the deterministic disturbance/jitter hash.
    pub seed: u64,
}

impl Default for FeedPolicy {
    fn default() -> Self {
        Self {
            retries: 2,
            backoff_ms: 4,
            timeout_ms: 20,
            deadline_ms: 60,
            breaker_window: 8,
            breaker_fails: 4,
            cooldown: 6,
            max_stale: 24,
            estimator: Estimator::HoldLast,
            seed: 0,
        }
    }
}

impl FeedPolicy {
    /// The canonical `policy:` clause (parses back to `self`).
    pub fn spec(&self) -> String {
        format!(
            "policy:retries={},backoff_ms={},timeout_ms={},deadline_ms={},breaker_window={},\
             breaker_fails={},cooldown={},max_stale={},estimator={},seed={}",
            self.retries,
            self.backoff_ms,
            self.timeout_ms,
            self.deadline_ms,
            self.breaker_window,
            self.breaker_fails,
            self.cooldown,
            self.max_stale,
            self.estimator.label(),
            self.seed
        )
    }

    fn validate(&self) -> Result<(), FeedProfileError> {
        let err = |msg: &str| FeedProfileError::new(format!("policy: {msg}"));
        if self.deadline_ms == 0 {
            return Err(err("deadline_ms must be at least 1"));
        }
        if self.breaker_window == 0 || self.breaker_window > 64 {
            return Err(err("breaker_window must lie in 1..=64"));
        }
        if self.breaker_fails == 0 || self.breaker_fails > self.breaker_window {
            return Err(err("breaker_fails must lie in 1..=breaker_window"));
        }
        if self.cooldown == 0 {
            return Err(err("cooldown must be at least 1"));
        }
        if self.max_stale == 0 {
            return Err(err("max_stale must be at least 1"));
        }
        Ok(())
    }
}

/// An ordered list of timed feed disruptions plus the client policy. See
/// the [module docs](self) for the compact spec DSL.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeedProfile {
    disruptions: Vec<Disruption>,
    policy: FeedPolicy,
}

impl FeedProfile {
    /// A profile with no disruptions and the default policy (feeds are
    /// perfect; every estimate is fresh).
    pub fn perfect() -> Self {
        Self::default()
    }

    /// Builds a profile from explicit parts, validating each disruption and
    /// the policy.
    ///
    /// # Errors
    /// [`FeedProfileError`] naming the first invalid disruption or policy
    /// field.
    pub fn new(disruptions: Vec<Disruption>, policy: FeedPolicy) -> Result<Self, FeedProfileError> {
        for (index, d) in disruptions.iter().enumerate() {
            d.validate(index)?;
        }
        policy.validate()?;
        Ok(Self {
            disruptions,
            policy,
        })
    }

    /// Whether the profile disturbs nothing.
    pub fn is_perfect(&self) -> bool {
        self.disruptions.is_empty()
    }

    /// The disruptions, in profile order.
    pub fn disruptions(&self) -> &[Disruption] {
        &self.disruptions
    }

    /// The client policy.
    pub fn policy(&self) -> &FeedPolicy {
        &self.policy
    }

    /// Parses the compact spec DSL: `;`-separated clauses of the form
    /// `kind:key=value,...`. Whitespace around clauses is ignored; empty
    /// clauses are skipped (so trailing `;` is fine).
    ///
    /// ```text
    /// outage:feed=price,dc=0,start=50,end=80
    /// drop:feed=price,p=0.4,start=0,end=500
    /// timeout:feed=avail,dc=1,p=0.5,start=100,end=200
    /// delay:feed=price,slots=4,start=0,end=500
    /// reorder:feed=avail,window=3,p=0.5,start=0,end=240
    /// corrupt:feed=price,mode=nan,p=0.25,start=0,end=100
    /// corrupt:feed=avail,mode=spike,factor=8,p=0.1,start=0,end=100
    /// policy:retries=3,deadline_ms=40,estimator=diurnal,seed=7
    /// ```
    ///
    /// # Errors
    /// [`FeedProfileError`] with the offending clause and key on any syntax
    /// or range problem (including a duplicate `policy:` clause).
    pub fn parse(spec: &str) -> Result<Self, FeedProfileError> {
        let mut disruptions = Vec::new();
        let mut policy: Option<FeedPolicy> = None;
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if clause.starts_with("policy:") || clause == "policy" {
                if policy.is_some() {
                    return Err(FeedProfileError::new("duplicate `policy:` clause"));
                }
                policy = Some(parse_policy_clause(clause)?);
            } else {
                disruptions.push(parse_disruption_clause(clause)?);
            }
        }
        Self::new(disruptions, policy.unwrap_or_default())
    }

    /// The canonical one-line spec: disruption clauses in profile order,
    /// then the full `policy:` clause.
    /// `FeedProfile::parse(&profile.spec())` reproduces the profile exactly.
    pub fn spec(&self) -> String {
        let mut clauses: Vec<String> = self.disruptions.iter().map(Disruption::spec).collect();
        clauses.push(self.policy.spec());
        clauses.join(";")
    }

    /// Checks every targeted data center against a concrete system shape.
    ///
    /// # Errors
    /// [`FeedProfileError`] naming the first disruption whose data center
    /// is out of range.
    pub fn validate_for(&self, num_dcs: usize) -> Result<(), FeedProfileError> {
        for (index, d) in self.disruptions.iter().enumerate() {
            if let Some(dc) = d.dc {
                if dc >= num_dcs {
                    return Err(FeedProfileError::new(format!(
                        "disruption {index} ({}): data center {dc} out of range (system has {num_dcs})",
                        d.label()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Disruptions whose window starts exactly at `slot`.
    pub fn starting_at(&self, slot: u64) -> impl Iterator<Item = &Disruption> {
        self.disruptions.iter().filter(move |d| d.start == slot)
    }

    /// A conservative bound, in slots, on how stale any feed's estimate can
    /// get under this profile — the *admissible staleness* the degraded
    /// Theorem 1(a) certificate is stated against (see
    /// `grefar_core::theory::TheoryBounds::stale_queue_bound`).
    ///
    /// Worst case per feed: every fetch inside the longest merged window of
    /// failure-capable disruptions fails (staleness grows across the whole
    /// span), the breaker then stays open for one more `cooldown` before the
    /// half-open probe recovers, and the recovering record itself lags by
    /// the largest delay/reorder age. Zero for a perfect profile.
    pub fn staleness_bound(&self, num_dcs: usize) -> u64 {
        let mut lag = 0u64; // worst delay/reorder age of any served record
        for d in &self.disruptions {
            match d.kind {
                DisruptionKind::Delay { slots } => lag = lag.max(slots),
                DisruptionKind::Reorder { window, .. } => lag = lag.max(window),
                _ => {}
            }
        }
        let mut worst_span = 0u64;
        let feeds = all_feeds(num_dcs);
        for (kind, dc) in feeds {
            let mut windows: Vec<(u64, u64)> = self
                .disruptions
                .iter()
                .filter(|d| d.can_fail_fetch() && d.matches(kind, dc))
                .map(|d| (d.start, d.end))
                .collect();
            if windows.is_empty() {
                continue;
            }
            windows.sort_unstable();
            let (mut start, mut end) = windows[0];
            for &(s, e) in &windows[1..] {
                if s <= end {
                    end = end.max(e);
                } else {
                    worst_span = worst_span.max(end - start);
                    (start, end) = (s, e);
                }
            }
            worst_span = worst_span.max(end - start);
        }
        if worst_span == 0 && lag == 0 {
            return 0;
        }
        worst_span + lag + self.policy.cooldown + 1
    }
}

/// Every feed of a system with `num_dcs` data centers: per-DC price and
/// availability feeds plus the global arrivals feed.
pub(crate) fn all_feeds(num_dcs: usize) -> Vec<(FeedKind, Option<usize>)> {
    let mut feeds = Vec::with_capacity(2 * num_dcs + 1);
    for i in 0..num_dcs {
        feeds.push((FeedKind::Price, Some(i)));
    }
    for i in 0..num_dcs {
        feeds.push((FeedKind::Availability, Some(i)));
    }
    feeds.push((FeedKind::Arrivals, None));
    feeds
}

struct Clause<'a> {
    name: &'a str,
    text: &'a str,
    keys: Vec<(&'a str, &'a str)>,
}

impl<'a> Clause<'a> {
    fn split(clause: &'a str) -> Result<Self, FeedProfileError> {
        let err = |msg: String| FeedProfileError::new(format!("clause {clause:?}: {msg}"));
        let (name, rest) = clause
            .split_once(':')
            .ok_or_else(|| err("expected `kind:key=value,...`".into()))?;
        let mut keys: Vec<(&str, &str)> = Vec::new();
        for pair in rest.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key=value`, got {pair:?}")))?;
            let key = key.trim();
            if keys.iter().any(|(k, _)| *k == key) {
                return Err(err(format!("duplicate key `{key}`")));
            }
            keys.push((key, value.trim()));
        }
        Ok(Self {
            name: name.trim(),
            text: clause,
            keys,
        })
    }

    fn err(&self, msg: String) -> FeedProfileError {
        FeedProfileError::new(format!("clause {:?}: {msg}", self.text))
    }

    fn take(&self, key: &str) -> Option<&'a str> {
        self.keys.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn int(&self, key: &str) -> Result<u64, FeedProfileError> {
        let raw = self
            .take(key)
            .ok_or_else(|| self.err(format!("missing key `{key}`")))?;
        raw.parse()
            .map_err(|_| self.err(format!("key `{key}`: expected an integer, got {raw:?}")))
    }

    fn float(&self, key: &str) -> Result<f64, FeedProfileError> {
        let raw = self
            .take(key)
            .ok_or_else(|| self.err(format!("missing key `{key}`")))?;
        raw.parse()
            .map_err(|_| self.err(format!("key `{key}`: expected a number, got {raw:?}")))
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), FeedProfileError> {
        if let Some((key, _)) = self.keys.iter().find(|(k, _)| !known.contains(k)) {
            return Err(self.err(format!("unknown key `{key}`")));
        }
        Ok(())
    }
}

fn parse_disruption_clause(clause: &str) -> Result<Disruption, FeedProfileError> {
    let c = Clause::split(clause)?;
    let known: &[&str] = match c.name {
        "outage" => &["feed", "dc", "start", "end"],
        "drop" | "timeout" => &["feed", "dc", "p", "start", "end"],
        "delay" => &["feed", "dc", "slots", "start", "end"],
        "reorder" => &["feed", "dc", "window", "p", "start", "end"],
        "corrupt" => &["feed", "dc", "p", "mode", "factor", "start", "end"],
        other => return Err(c.err(format!("unknown disruption kind `{other}`"))),
    };
    c.reject_unknown(known)?;
    let feed = match c
        .take("feed")
        .ok_or_else(|| c.err("missing key `feed`".into()))?
    {
        "price" => FeedKind::Price,
        "avail" => FeedKind::Availability,
        "arrivals" => FeedKind::Arrivals,
        other => {
            return Err(c.err(format!(
                "key `feed`: expected price|avail|arrivals, got {other:?}"
            )))
        }
    };
    let dc = match c.take("dc") {
        Some(_) => Some(c.int("dc")? as usize),
        None => None,
    };
    let kind = match c.name {
        "outage" => DisruptionKind::Outage,
        "drop" => DisruptionKind::Drop { p: c.float("p")? },
        "timeout" => DisruptionKind::Timeout { p: c.float("p")? },
        "delay" => DisruptionKind::Delay {
            slots: c.int("slots")?,
        },
        "reorder" => DisruptionKind::Reorder {
            window: c.int("window")?,
            p: c.float("p")?,
        },
        "corrupt" => {
            let mode = match c
                .take("mode")
                .ok_or_else(|| c.err("missing key `mode`".into()))?
            {
                "nan" => CorruptMode::Nan,
                "negative" => CorruptMode::Negative,
                "spike" => CorruptMode::Spike {
                    factor: c.float("factor")?,
                },
                other => {
                    return Err(c.err(format!(
                        "key `mode`: expected nan|negative|spike, got {other:?}"
                    )))
                }
            };
            if !matches!(mode, CorruptMode::Spike { .. }) && c.take("factor").is_some() {
                return Err(c.err("key `factor` only applies to mode=spike".into()));
            }
            DisruptionKind::Corrupt {
                p: c.float("p")?,
                mode,
            }
        }
        _ => unreachable!("kind validated above"),
    };
    Ok(Disruption {
        kind,
        feed,
        dc,
        start: c.int("start")?,
        end: c.int("end")?,
    })
}

fn parse_policy_clause(clause: &str) -> Result<FeedPolicy, FeedProfileError> {
    let c = Clause::split(clause)?;
    c.reject_unknown(&[
        "retries",
        "backoff_ms",
        "timeout_ms",
        "deadline_ms",
        "breaker_window",
        "breaker_fails",
        "cooldown",
        "max_stale",
        "estimator",
        "seed",
    ])?;
    let mut policy = FeedPolicy::default();
    let set = |field: &mut u64, key: &str| -> Result<(), FeedProfileError> {
        if c.take(key).is_some() {
            *field = c.int(key)?;
        }
        Ok(())
    };
    set(&mut policy.retries, "retries")?;
    set(&mut policy.backoff_ms, "backoff_ms")?;
    set(&mut policy.timeout_ms, "timeout_ms")?;
    set(&mut policy.deadline_ms, "deadline_ms")?;
    set(&mut policy.breaker_window, "breaker_window")?;
    set(&mut policy.breaker_fails, "breaker_fails")?;
    set(&mut policy.cooldown, "cooldown")?;
    set(&mut policy.max_stale, "max_stale")?;
    set(&mut policy.seed, "seed")?;
    if let Some(est) = c.take("estimator") {
        policy.estimator = match est {
            "hold" => Estimator::HoldLast,
            "diurnal" => Estimator::DiurnalPrior,
            other => {
                return Err(c.err(format!(
                    "key `estimator`: expected hold|diurnal, got {other:?}"
                )))
            }
        };
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_roundtrip() {
        let spec = "outage:feed=price,dc=0,start=50,end=80;drop:feed=price,p=0.4,start=0,end=500;\
                    timeout:feed=avail,dc=1,p=0.5,start=100,end=200;\
                    delay:feed=price,slots=4,start=0,end=500;\
                    reorder:feed=avail,window=3,p=0.5,start=0,end=240;\
                    corrupt:feed=price,dc=0,p=0.25,mode=nan,start=0,end=100;\
                    corrupt:feed=avail,p=0.1,mode=spike,factor=8,start=0,end=100;\
                    policy:retries=3,deadline_ms=40,estimator=diurnal,seed=7";
        let profile = FeedProfile::parse(spec).unwrap();
        assert_eq!(profile.disruptions().len(), 7);
        assert_eq!(profile.policy().retries, 3);
        assert_eq!(profile.policy().deadline_ms, 40);
        assert_eq!(profile.policy().estimator, Estimator::DiurnalPrior);
        assert_eq!(profile.policy().seed, 7);
        // Unset policy keys keep their defaults.
        assert_eq!(
            profile.policy().backoff_ms,
            FeedPolicy::default().backoff_ms
        );
        assert_eq!(FeedProfile::parse(&profile.spec()).unwrap(), profile);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "meteor:feed=price,start=0,end=1",
            "outage:feed=price,start=2,end=2",
            "outage:feed=widgets,start=0,end=1",
            "outage:start=0,end=1",
            "drop:feed=price,p=1.5,start=0,end=1",
            "drop:feed=price,p=nope,start=0,end=1",
            "delay:feed=price,slots=0,start=0,end=1",
            "reorder:feed=price,window=0,p=0.5,start=0,end=1",
            "corrupt:feed=price,p=0.5,mode=wild,start=0,end=1",
            "corrupt:feed=price,p=0.5,mode=spike,factor=-1,start=0,end=1",
            "corrupt:feed=price,p=0.5,mode=nan,factor=2,start=0,end=1",
            "outage:feed=arrivals,dc=0,start=0,end=1",
            "outage:feed=price,dc=0,dc=1,start=0,end=1",
            "outage:feed=price,job=1,start=0,end=1",
            "policy:breaker_window=0",
            "policy:breaker_fails=9,breaker_window=8",
            "policy:deadline_ms=0",
            "policy:estimator=psychic",
            "policy:retries=1;policy:retries=2",
            "outage feed=price",
        ] {
            assert!(FeedProfile::parse(bad).is_err(), "{bad:?} parsed");
        }
        // Trailing separators and whitespace are tolerated.
        assert!(FeedProfile::parse(" drop:feed=price,p=0.5,start=0,end=9 ; ").is_ok());
        assert!(FeedProfile::parse("").unwrap().is_perfect());
    }

    #[test]
    fn validate_for_checks_dc_range() {
        let p = FeedProfile::parse("outage:feed=price,dc=2,start=0,end=5").unwrap();
        assert!(p.validate_for(3).is_ok());
        assert!(p.validate_for(2).is_err());
    }

    #[test]
    fn matching_honors_feed_and_dc() {
        let p = FeedProfile::parse(
            "drop:feed=price,p=0.5,start=0,end=9;outage:feed=avail,dc=1,start=0,end=9",
        )
        .unwrap();
        let d = p.disruptions();
        assert!(d[0].matches(FeedKind::Price, Some(0)));
        assert!(d[0].matches(FeedKind::Price, Some(7)));
        assert!(!d[0].matches(FeedKind::Availability, Some(0)));
        assert!(d[1].matches(FeedKind::Availability, Some(1)));
        assert!(!d[1].matches(FeedKind::Availability, Some(0)));
    }

    #[test]
    fn staleness_bound_merges_windows_and_adds_lag_and_cooldown() {
        // Perfect profile: nothing can go stale.
        assert_eq!(FeedProfile::perfect().staleness_bound(3), 0);
        // Pure delay: just the lag (no failure span, no breaker episode).
        let p = FeedProfile::parse("delay:feed=price,slots=4,start=0,end=100").unwrap();
        assert_eq!(p.staleness_bound(2), 4 + FeedPolicy::default().cooldown + 1);
        // Two overlapping failure windows on the same feed merge: [10,30)
        // and [20,50) span 40 slots; cooldown 6 + 1 on top.
        let p = FeedProfile::parse(
            "outage:feed=price,dc=0,start=10,end=30;drop:feed=price,p=0.5,start=20,end=50",
        )
        .unwrap();
        assert_eq!(p.staleness_bound(2), 40 + 6 + 1);
        // Disjoint windows on *different* feeds do not merge.
        let p = FeedProfile::parse(
            "outage:feed=price,dc=0,start=0,end=10;outage:feed=avail,dc=1,start=5,end=40",
        )
        .unwrap();
        assert_eq!(p.staleness_bound(2), 35 + 6 + 1);
        // Spike corruption passes validation, so it cannot fail a fetch.
        let p = FeedProfile::parse("corrupt:feed=price,p=1,mode=spike,factor=2,start=0,end=100")
            .unwrap();
        assert_eq!(p.staleness_bound(1), 0);
    }
}
