//! The scheduler-facing estimate: a [`SystemState`] assembled from
//! possibly-degraded feed reads, with per-field staleness and provenance.

use grefar_types::SystemState;

/// Where a field's current estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A record for this very slot arrived and validated.
    Fresh,
    /// A record arrived this slot but describes an older slot (delivery
    /// delay / out-of-order arrival).
    Delayed,
    /// No record arrived; the last-known-good cache is serving (zero-order
    /// hold).
    HeldLast,
    /// No record arrived; the diurnal prior (same hour of day, most recent
    /// observation) is serving.
    DiurnalPrior,
    /// The estimate exceeded the policy's `max_stale` budget. It is still
    /// served — the scheduler must act every slot — but downstream
    /// consumers should treat the field as unreliable.
    Expired,
    /// The feed has never delivered a valid record; a conservative
    /// zero prior is serving (zero availability, zero price).
    Prior,
}

impl Provenance {
    /// A short machine label (used in `state.stale` telemetry).
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Fresh => "fresh",
            Provenance::Delayed => "delayed",
            Provenance::HeldLast => "held_last",
            Provenance::DiurnalPrior => "diurnal_prior",
            Provenance::Expired => "expired",
            Provenance::Prior => "prior",
        }
    }

    /// Whether the field reflects the current slot exactly.
    pub fn is_fresh(self) -> bool {
        matches!(self, Provenance::Fresh)
    }
}

/// Staleness and provenance of one estimated field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldEstimate {
    /// How many slots old the serving record is (0 when fresh; for a
    /// never-seen feed, one past the current slot index).
    pub age: u64,
    /// Where the value came from.
    pub provenance: Provenance,
}

impl FieldEstimate {
    /// A fresh, current-slot field.
    pub fn fresh() -> Self {
        Self {
            age: 0,
            provenance: Provenance::Fresh,
        }
    }
}

/// The state estimate `x̂(t)` the scheduler acts on, with per-field
/// staleness/provenance: per-data-center price and availability estimates
/// plus the (telemetry-only) arrivals estimate.
///
/// Built by `FeedHarness::observe`; consumed by
/// `grefar_core::stale::decide_estimated`, which runs the scheduler on
/// [`state`](EstimatedState::state) and repairs the resulting decision
/// against the *true* state.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedState {
    state: SystemState,
    price: Vec<FieldEstimate>,
    avail: Vec<FieldEstimate>,
    arrivals_prev: Vec<f64>,
    arrivals_meta: FieldEstimate,
}

impl EstimatedState {
    /// Assembles an estimate. `price`/`avail` carry one entry per data
    /// center of `state`; `arrivals_prev` is the estimated previous-slot
    /// arrival vector.
    ///
    /// # Panics
    /// Panics if the per-field vectors do not match the state's data-center
    /// count.
    pub fn new(
        state: SystemState,
        price: Vec<FieldEstimate>,
        avail: Vec<FieldEstimate>,
        arrivals_prev: Vec<f64>,
        arrivals_meta: FieldEstimate,
    ) -> Self {
        assert_eq!(
            price.len(),
            state.num_data_centers(),
            "one price estimate per data center"
        );
        assert_eq!(
            avail.len(),
            state.num_data_centers(),
            "one availability estimate per data center"
        );
        Self {
            state,
            price,
            avail,
            arrivals_prev,
            arrivals_meta,
        }
    }

    /// An estimate that *is* the truth: every field fresh (what a perfect
    /// profile produces).
    pub fn fresh(state: SystemState, arrivals_prev: Vec<f64>) -> Self {
        let n = state.num_data_centers();
        Self::new(
            state,
            vec![FieldEstimate::fresh(); n],
            vec![FieldEstimate::fresh(); n],
            arrivals_prev,
            FieldEstimate::fresh(),
        )
    }

    /// The estimated system state `x̂(t)` (what the scheduler sees).
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// The price estimate metadata for data center `i`.
    pub fn price_estimate(&self, i: usize) -> FieldEstimate {
        self.price[i]
    }

    /// The availability estimate metadata for data center `i`.
    pub fn avail_estimate(&self, i: usize) -> FieldEstimate {
        self.avail[i]
    }

    /// The estimated previous-slot arrivals (telemetry only; GreFar's
    /// decisions never read arrivals — §II).
    pub fn arrivals_prev(&self) -> &[f64] {
        &self.arrivals_prev
    }

    /// The arrivals feed's estimate metadata.
    pub fn arrivals_estimate(&self) -> FieldEstimate {
        self.arrivals_meta
    }

    /// All per-field estimates: every price and availability entry, then
    /// the arrivals entry.
    pub fn fields(&self) -> impl Iterator<Item = FieldEstimate> + '_ {
        self.price
            .iter()
            .chain(self.avail.iter())
            .copied()
            .chain(core::iter::once(self.arrivals_meta))
    }

    /// Number of fields that are not fresh.
    pub fn stale_field_count(&self) -> usize {
        self.fields().filter(|f| !f.provenance.is_fresh()).count()
    }

    /// The largest age across all fields (0 when everything is fresh).
    pub fn max_age(&self) -> u64 {
        self.fields().map(|f| f.age).max().unwrap_or(0)
    }

    /// Whether every field is fresh (the estimate equals the truth).
    pub fn is_fresh(&self) -> bool {
        self.fields().all(|f| f.provenance.is_fresh())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterState, Tariff};

    fn state() -> SystemState {
        SystemState::new(
            3,
            vec![
                DataCenterState::new(vec![10.0], Tariff::flat(0.5)),
                DataCenterState::new(vec![4.0], Tariff::flat(0.9)),
            ],
        )
    }

    #[test]
    fn fresh_estimate_has_no_stale_fields() {
        let est = EstimatedState::fresh(state(), vec![2.0]);
        assert!(est.is_fresh());
        assert_eq!(est.stale_field_count(), 0);
        assert_eq!(est.max_age(), 0);
        assert_eq!(est.arrivals_prev(), &[2.0]);
    }

    #[test]
    fn staleness_aggregates_across_fields() {
        let est = EstimatedState::new(
            state(),
            vec![
                FieldEstimate::fresh(),
                FieldEstimate {
                    age: 5,
                    provenance: Provenance::HeldLast,
                },
            ],
            vec![
                FieldEstimate {
                    age: 2,
                    provenance: Provenance::Delayed,
                },
                FieldEstimate::fresh(),
            ],
            vec![0.0],
            FieldEstimate {
                age: 30,
                provenance: Provenance::Expired,
            },
        );
        assert!(!est.is_fresh());
        assert_eq!(est.stale_field_count(), 3);
        assert_eq!(est.max_age(), 30);
        assert_eq!(est.price_estimate(1).provenance, Provenance::HeldLast);
        assert_eq!(est.avail_estimate(0).age, 2);
        assert_eq!(est.arrivals_estimate().provenance.label(), "expired");
    }

    #[test]
    #[should_panic(expected = "one price estimate per data center")]
    fn shape_mismatch_panics() {
        let _ = EstimatedState::new(
            state(),
            vec![FieldEstimate::fresh()],
            vec![FieldEstimate::fresh(); 2],
            vec![],
            FieldEstimate::fresh(),
        );
    }
}
