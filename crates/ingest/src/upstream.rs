//! The seeded unreliable upstream: serves wire records for each feed out of
//! the frozen truth, disturbed per the profile's clauses.
//!
//! Fully deterministic: every coin flip is a pure hash of
//! `(seed, slot, feed, attempt, clause, purpose)` — no RNG state, no wall
//! clock — so identical seeds replay identical disturbance schedules and a
//! resumed run can reconstruct the feed layer exactly.

use crate::profile::{CorruptMode, DisruptionKind, FeedKind, FeedProfile};
use grefar_types::{SystemState, Tariff};

/// Simulated cost of a successful (or fast-failing) fetch attempt, in the
/// same synthetic milliseconds as the policy's deadline budget.
pub(crate) const FETCH_COST_MS: u64 = 2;

/// What came over the wire — *before* validation, so it can carry garbage
/// (NaN rates, negative availability) that a real feed could emit.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WirePayload {
    /// A price quote: the raw base rate plus the full tariff when the quote
    /// is representable (`None` when corruption produced an invalid rate).
    Price {
        /// The quoted base rate (may be NaN or negative on the wire).
        rate: f64,
        /// The tariff, when the quote is well-formed.
        tariff: Option<Tariff>,
    },
    /// A level vector: per-class availability, or per-class arrivals.
    Levels(Vec<f64>),
}

/// One wire record: the slot it describes plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WireRecord {
    pub slot: u64,
    pub payload: WirePayload,
}

/// A failed fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FetchFailure {
    /// The upstream is hard-down (`outage:` clause).
    Outage,
    /// The attempt failed fast (`drop:` clause).
    Drop,
    /// The attempt timed out, burning `timeout_ms` of deadline budget.
    Timeout,
}

impl FetchFailure {
    pub(crate) fn reason(self) -> &'static str {
        match self {
            FetchFailure::Outage => "outage",
            FetchFailure::Drop => "drop",
            FetchFailure::Timeout => "timeout",
        }
    }

    /// Budget the attempt burned, in simulated milliseconds.
    pub(crate) fn cost_ms(self, timeout_ms: u64) -> u64 {
        match self {
            FetchFailure::Timeout => timeout_ms,
            FetchFailure::Outage | FetchFailure::Drop => FETCH_COST_MS,
        }
    }
}

/// A validated record, safe to hand to `grefar_types` constructors.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum GoodPayload {
    Price(Tariff),
    Levels(Vec<f64>),
}

/// Validates a wire payload (the NaN/negative-price guards). Spiked records
/// are well-formed and pass — detecting *plausible but wrong* data is
/// exactly what validation cannot do.
pub(crate) fn validate(payload: WirePayload) -> Result<GoodPayload, &'static str> {
    match payload {
        WirePayload::Price { rate, tariff } => {
            if !rate.is_finite() {
                return Err("non_finite_rate");
            }
            if rate < 0.0 {
                return Err("negative_rate");
            }
            tariff.map(GoodPayload::Price).ok_or("malformed_tariff")
        }
        WirePayload::Levels(values) => {
            if values.iter().any(|v| !v.is_finite()) {
                return Err("non_finite_level");
            }
            if values.iter().any(|v| *v < 0.0) {
                return Err("negative_level");
            }
            Ok(GoodPayload::Levels(values))
        }
    }
}

// Hash-roll purposes: each independent coin flip salts the hash with a
// distinct purpose code so outcomes do not correlate across clauses.
const PURPOSE_DROP: u64 = 1;
const PURPOSE_TIMEOUT: u64 = 2;
const PURPOSE_REORDER_HIT: u64 = 3;
const PURPOSE_REORDER_AGE: u64 = 4;
const PURPOSE_CORRUPT_HIT: u64 = 5;
const PURPOSE_CORRUPT_IDX: u64 = 6;
pub(crate) const PURPOSE_JITTER: u64 = 7;

/// SplitMix64 (the same mixer as `grefar_faults`): small, well-mixed, no
/// external RNG dependency, no ambient entropy.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A pure hash of the seed and the roll coordinates.
pub(crate) fn hash_roll(seed: u64, slot: u64, feed_idx: u64, attempt: u64, salt: u64) -> u64 {
    let mut state = seed ^ 0x6a09_e667_f3bc_c908;
    let mut out = 0u64;
    for part in [slot, feed_idx, attempt, salt] {
        state ^= part ^ out;
        out = splitmix64(&mut state);
    }
    out
}

/// Maps a hash to a uniform fraction in `[0, 1)`.
fn as_fraction(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// The unreliable upstream for one slot-fetch session: borrows the frozen
/// truth and the profile, and answers fetch attempts.
pub(crate) struct Upstream<'a> {
    profile: &'a FeedProfile,
    states: &'a [SystemState],
    arrivals: &'a [Vec<f64>],
}

impl<'a> Upstream<'a> {
    pub(crate) fn new(
        profile: &'a FeedProfile,
        states: &'a [SystemState],
        arrivals: &'a [Vec<f64>],
    ) -> Self {
        Self {
            profile,
            states,
            arrivals,
        }
    }

    /// One fetch attempt against feed `(kind, dc)` at slot `t`.
    /// `feed_idx` is the feed's stable hash index; `attempt` is 0-based so
    /// retries re-roll every disturbance (a retry can dodge a drop — or
    /// fetch a *different* corrupt record).
    pub(crate) fn fetch(
        &self,
        kind: FeedKind,
        dc: Option<usize>,
        feed_idx: u64,
        t: u64,
        attempt: u64,
    ) -> Result<WireRecord, FetchFailure> {
        let seed = self.profile.policy().seed;
        let active = || {
            self.profile
                .disruptions()
                .iter()
                .enumerate()
                .filter(move |(_, d)| d.active_at(t) && d.matches(kind, dc))
        };
        let salt = |purpose: u64, clause: usize| (purpose << 32) | clause as u64;
        let hit = |purpose: u64, clause: usize, p: f64| {
            as_fraction(hash_roll(seed, t, feed_idx, attempt, salt(purpose, clause))) < p
        };

        // 1. Connection-level failures.
        for (index, d) in active() {
            match d.kind {
                DisruptionKind::Outage => return Err(FetchFailure::Outage),
                DisruptionKind::Drop { p } if hit(PURPOSE_DROP, index, p) => {
                    return Err(FetchFailure::Drop);
                }
                DisruptionKind::Timeout { p } if hit(PURPOSE_TIMEOUT, index, p) => {
                    return Err(FetchFailure::Timeout);
                }
                _ => {}
            }
        }

        // 2. Which slot's record is served: delivery delay plus possible
        // out-of-order arrival.
        let mut lag = 0u64;
        for (index, d) in active() {
            match d.kind {
                DisruptionKind::Delay { slots } => lag = lag.max(slots),
                DisruptionKind::Reorder { window, p } if hit(PURPOSE_REORDER_HIT, index, p) => {
                    let age =
                        1 + hash_roll(seed, t, feed_idx, attempt, salt(PURPOSE_REORDER_AGE, index))
                            % window;
                    lag = lag.max(age);
                }
                _ => {}
            }
        }
        let slot = t.saturating_sub(lag);
        let mut payload = self.payload_at(kind, dc, slot);

        // 3. Corruption on the wire.
        for (index, d) in active() {
            if let DisruptionKind::Corrupt { p, mode } = d.kind {
                if hit(PURPOSE_CORRUPT_HIT, index, p) {
                    let pick =
                        hash_roll(seed, t, feed_idx, attempt, salt(PURPOSE_CORRUPT_IDX, index));
                    payload = corrupt(payload, mode, pick);
                }
            }
        }
        Ok(WireRecord { slot, payload })
    }

    /// The truthful payload of feed `(kind, dc)` for slot `slot`.
    fn payload_at(&self, kind: FeedKind, dc: Option<usize>, slot: u64) -> WirePayload {
        let state = &self.states[slot as usize];
        match kind {
            FeedKind::Price => {
                let d = state.data_center(dc.expect("price feeds are per data center"));
                WirePayload::Price {
                    rate: d.price(),
                    tariff: Some(d.tariff().clone()),
                }
            }
            FeedKind::Availability => {
                let d = state.data_center(dc.expect("availability feeds are per data center"));
                WirePayload::Levels(d.available_slice().to_vec())
            }
            FeedKind::Arrivals => {
                // The arrivals counter reports the *previous* slot's
                // realized arrivals; at slot 0 nothing has arrived yet.
                if slot == 0 {
                    WirePayload::Levels(vec![0.0; self.arrivals[0].len()])
                } else {
                    WirePayload::Levels(self.arrivals[slot as usize - 1].clone())
                }
            }
        }
    }
}

/// Mangles a payload per the corrupt mode. `pick` selects the poisoned
/// entry of a level vector.
fn corrupt(payload: WirePayload, mode: CorruptMode, pick: u64) -> WirePayload {
    match payload {
        WirePayload::Price { rate, tariff } => match mode {
            CorruptMode::Nan => WirePayload::Price {
                rate: f64::NAN,
                tariff: None,
            },
            CorruptMode::Negative => WirePayload::Price {
                rate: -(rate.abs() + 1.0),
                tariff: None,
            },
            CorruptMode::Spike { factor } => WirePayload::Price {
                rate: rate * factor,
                tariff: tariff.map(|t| t.scaled(factor)),
            },
        },
        WirePayload::Levels(mut values) => {
            if values.is_empty() {
                return WirePayload::Levels(values);
            }
            let idx = (pick % values.len() as u64) as usize;
            match mode {
                CorruptMode::Nan => values[idx] = f64::NAN,
                CorruptMode::Negative => values[idx] = -(values[idx].abs() + 1.0),
                CorruptMode::Spike { factor } => {
                    for v in values.iter_mut() {
                        *v *= factor;
                    }
                }
            }
            WirePayload::Levels(values)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::DataCenterState;

    fn truth(slots: usize) -> (Vec<SystemState>, Vec<Vec<f64>>) {
        let states = (0..slots)
            .map(|t| {
                SystemState::new(
                    t as u64,
                    vec![DataCenterState::new(
                        vec![10.0, 4.0],
                        Tariff::flat(0.1 * (t as f64 + 1.0)),
                    )],
                )
            })
            .collect();
        let arrivals = (0..slots).map(|t| vec![t as f64]).collect();
        (states, arrivals)
    }

    #[test]
    fn perfect_profile_serves_fresh_truth() {
        let (states, arrivals) = truth(5);
        let profile = FeedProfile::perfect();
        let up = Upstream::new(&profile, &states, &arrivals);
        let rec = up.fetch(FeedKind::Price, Some(0), 0, 3, 0).unwrap();
        assert_eq!(rec.slot, 3);
        match rec.payload {
            WirePayload::Price { rate, tariff } => {
                assert!((rate - 0.4).abs() < 1e-12);
                assert!(tariff.is_some());
            }
            other => panic!("unexpected payload {other:?}"),
        }
        // Arrivals report the previous slot; slot 0 reports zeros.
        let rec = up.fetch(FeedKind::Arrivals, None, 2, 3, 0).unwrap();
        assert_eq!(rec.payload, WirePayload::Levels(vec![2.0]));
        let rec = up.fetch(FeedKind::Arrivals, None, 2, 0, 0).unwrap();
        assert_eq!(rec.payload, WirePayload::Levels(vec![0.0]));
    }

    #[test]
    fn outage_fails_and_delay_ages_records() {
        let (states, arrivals) = truth(10);
        let profile = FeedProfile::parse(
            "outage:feed=price,start=2,end=4;delay:feed=avail,slots=3,start=0,end=10",
        )
        .unwrap();
        let up = Upstream::new(&profile, &states, &arrivals);
        assert_eq!(
            up.fetch(FeedKind::Price, Some(0), 0, 2, 0),
            Err(FetchFailure::Outage)
        );
        assert!(up.fetch(FeedKind::Price, Some(0), 0, 4, 0).is_ok());
        let rec = up.fetch(FeedKind::Availability, Some(0), 1, 7, 0).unwrap();
        assert_eq!(rec.slot, 4);
        // Delay clamps at slot 0 early in the horizon.
        let rec = up.fetch(FeedKind::Availability, Some(0), 1, 1, 0).unwrap();
        assert_eq!(rec.slot, 0);
    }

    #[test]
    fn drops_are_deterministic_and_roughly_calibrated() {
        let (states, arrivals) = truth(1000);
        let profile = FeedProfile::parse("drop:feed=price,p=0.3,start=0,end=1000").unwrap();
        let up = Upstream::new(&profile, &states, &arrivals);
        let outcomes: Vec<bool> = (0..1000)
            .map(|t| up.fetch(FeedKind::Price, Some(0), 0, t, 0).is_err())
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|t| up.fetch(FeedKind::Price, Some(0), 0, t, 0).is_err())
            .collect();
        assert_eq!(outcomes, again, "identical rolls must replay identically");
        let dropped = outcomes.iter().filter(|d| **d).count();
        assert!(
            (200..400).contains(&dropped),
            "p=0.3 over 1000 slots dropped {dropped}"
        );
        // A different attempt number re-rolls.
        let retry_differs = (0..1000).any(|t| {
            up.fetch(FeedKind::Price, Some(0), 0, t, 0).is_err()
                != up.fetch(FeedKind::Price, Some(0), 0, t, 1).is_err()
        });
        assert!(retry_differs, "retries must re-roll the drop");
    }

    #[test]
    fn corruption_modes_mangle_and_validation_catches_detectable_ones() {
        let (states, arrivals) = truth(4);
        let profile = FeedProfile::parse("corrupt:feed=price,p=1,mode=nan,start=0,end=4").unwrap();
        let up = Upstream::new(&profile, &states, &arrivals);
        let rec = up.fetch(FeedKind::Price, Some(0), 0, 1, 0).unwrap();
        assert!(validate(rec.payload).is_err());

        let profile =
            FeedProfile::parse("corrupt:feed=avail,p=1,mode=negative,start=0,end=4").unwrap();
        let up = Upstream::new(&profile, &states, &arrivals);
        let rec = up.fetch(FeedKind::Availability, Some(0), 1, 1, 0).unwrap();
        assert_eq!(validate(rec.payload), Err("negative_level"));

        // Spikes pass validation but skew the value.
        let profile =
            FeedProfile::parse("corrupt:feed=price,p=1,mode=spike,factor=5,start=0,end=4").unwrap();
        let up = Upstream::new(&profile, &states, &arrivals);
        let rec = up.fetch(FeedKind::Price, Some(0), 0, 1, 0).unwrap();
        match validate(rec.payload).unwrap() {
            GoodPayload::Price(tariff) => assert!((tariff.base_rate() - 1.0).abs() < 1e-12),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn reorder_serves_records_within_the_window() {
        let (states, arrivals) = truth(200);
        let profile =
            FeedProfile::parse("reorder:feed=price,window=4,p=1,start=0,end=200").unwrap();
        let up = Upstream::new(&profile, &states, &arrivals);
        let mut seen_old = false;
        for t in 10..200 {
            let rec = up.fetch(FeedKind::Price, Some(0), 0, t, 0).unwrap();
            assert!(
                rec.slot < t && t - rec.slot <= 4,
                "slot {} at t {t}",
                rec.slot
            );
            if t - rec.slot > 1 {
                seen_old = true;
            }
        }
        assert!(seen_old, "window=4 should produce ages beyond 1");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let (states, arrivals) = truth(500);
        let a = FeedProfile::parse("drop:feed=price,p=0.5,start=0,end=500").unwrap();
        let b = FeedProfile::parse("drop:feed=price,p=0.5,start=0,end=500;policy:seed=9").unwrap();
        let ua = Upstream::new(&a, &states, &arrivals);
        let ub = Upstream::new(&b, &states, &arrivals);
        let differs = (0..500).any(|t| {
            ua.fetch(FeedKind::Price, Some(0), 0, t, 0).is_err()
                != ub.fetch(FeedKind::Price, Some(0), 0, t, 0).is_err()
        });
        assert!(differs);
    }
}
