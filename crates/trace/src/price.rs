//! Electricity-price processes `φ_i(t)` (§III-A.2, Fig. 1, Table I).
//!
//! "Due to the deregulation of electricity markets, electricity prices
//! stochastically vary over time (e.g., every hour or 15 minutes) and across
//! different locations." The main model here — [`DiurnalPriceModel`] —
//! superimposes mean-reverting AR(1) noise and occasional spikes on a daily
//! sinusoidal profile, which matches the qualitative shape of the paper's
//! Fig. 1 and can be calibrated to Table I's per-location averages.

use crate::rng::{uniform, GaussianSampler};
use grefar_types::{Slot, Tariff};
use rand::RngCore;

/// A stochastic process producing one data center's tariff per slot.
pub trait PriceProcess {
    /// Samples the tariff `φ_i(slot)`.
    fn sample(&mut self, slot: Slot, rng: &mut dyn RngCore) -> Tariff;
}

/// A constant flat price — the simplest stationary baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantPrice(pub f64);

impl PriceProcess for ConstantPrice {
    fn sample(&mut self, _slot: Slot, _rng: &mut dyn RngCore) -> Tariff {
        Tariff::flat(self.0)
    }
}

/// Replays a recorded sequence of flat prices, cycling when exhausted.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPrice {
    values: Vec<f64>,
}

impl ReplayPrice {
    /// Creates the replay from recorded per-slot prices.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains a negative/non-finite price.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "replay trace must be non-empty");
        for &v in &values {
            assert!(
                v.is_finite() && v >= 0.0,
                "prices must be non-negative and finite, got {v}"
            );
        }
        Self { values }
    }

    /// The recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl PriceProcess for ReplayPrice {
    fn sample(&mut self, slot: Slot, _rng: &mut dyn RngCore) -> Tariff {
        Tariff::flat(self.values[(slot as usize) % self.values.len()])
    }
}

/// Diurnal profile + mean-reverting AR(1) noise + occasional spikes:
///
/// ```text
/// φ(t) = max(floor, mean + amplitude · sin(2π (t − phase)/period) + x_t) · spike_t
/// x_t  = ar · x_{t−1} + σ · ε_t,          ε_t ~ N(0, 1)
/// spike_t = spike_multiplier with probability spike_probability, else 1
/// ```
///
/// # Example
/// ```
/// use grefar_trace::{DiurnalPriceModel, PriceProcess};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut m = DiurnalPriceModel::new(0.45, 0.08, 24.0, 9.0)
///     .with_noise(0.7, 0.02)
///     .with_spikes(0.01, 1.8)
///     .with_floor(0.05);
/// let mut rng = StdRng::seed_from_u64(1);
/// for t in 0..100 {
///     assert!(m.sample(t, &mut rng).base_rate() >= 0.05);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalPriceModel {
    mean: f64,
    amplitude: f64,
    period: f64,
    phase: f64,
    ar: f64,
    sigma: f64,
    floor: f64,
    spike_probability: f64,
    spike_multiplier: f64,
    state: f64,
    gauss: GaussianSampler,
}

impl DiurnalPriceModel {
    /// Creates the model with a daily sinusoid of the given `mean`,
    /// `amplitude`, `period` (slots per day) and `phase` (slot of the
    /// *upward zero crossing*; the daily peak is at `phase + period/4`).
    /// Noise and spikes are off until configured.
    ///
    /// # Panics
    /// Panics if `mean < 0`, `amplitude < 0` or `period <= 0`.
    pub fn new(mean: f64, amplitude: f64, period: f64, phase: f64) -> Self {
        assert!(mean >= 0.0 && mean.is_finite(), "mean must be non-negative");
        assert!(
            amplitude >= 0.0 && amplitude.is_finite(),
            "amplitude must be non-negative"
        );
        assert!(period > 0.0, "period must be positive");
        Self {
            mean,
            amplitude,
            period,
            phase,
            ar: 0.0,
            sigma: 0.0,
            floor: 0.0,
            spike_probability: 0.0,
            spike_multiplier: 1.0,
            state: 0.0,
            gauss: GaussianSampler::new(),
        }
    }

    /// Enables mean-reverting AR(1) noise with coefficient `ar ∈ [0, 1)` and
    /// innovation standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `ar ∉ [0, 1)` or `sigma < 0`.
    #[must_use]
    pub fn with_noise(mut self, ar: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&ar), "ar must lie in [0, 1)");
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        self.ar = ar;
        self.sigma = sigma;
        self
    }

    /// Enables price spikes: with probability `probability` per slot the
    /// price is multiplied by `multiplier`.
    ///
    /// # Panics
    /// Panics if `probability ∉ [0, 1]` or `multiplier < 1`.
    #[must_use]
    pub fn with_spikes(mut self, probability: f64, multiplier: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability in [0, 1]");
        assert!(multiplier >= 1.0, "spike multiplier must be >= 1");
        self.spike_probability = probability;
        self.spike_multiplier = multiplier;
        self
    }

    /// Sets a hard price floor (default 0).
    ///
    /// # Panics
    /// Panics if `floor < 0`.
    #[must_use]
    pub fn with_floor(mut self, floor: f64) -> Self {
        assert!(
            floor >= 0.0 && floor.is_finite(),
            "floor must be non-negative"
        );
        self.floor = floor;
        self
    }

    /// The deterministic long-run mean of the model.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// A model calibrated to the paper's data center `index ∈ {0, 1, 2}`:
    /// Table I average prices (0.392 / 0.433 / 0.548) with the hourly
    /// variation and phase offsets visible in Fig. 1.
    ///
    /// # Panics
    /// Panics if `index > 2`.
    pub fn table_one(index: usize) -> Self {
        // Means from Table I; amplitudes read off Fig. 1 (daily swing
        // roughly ±20 % of the mean). The locations sit in different
        // regions, so their daily peaks are hours apart — this cross-
        // location phase spread is exactly the "price variations across
        // time and locations" GreFar arbitrages (§I).
        let (mean, amplitude, phase) = match index {
            0 => (0.392, 0.085, 6.0),
            1 => (0.433, 0.100, 11.0),
            2 => (0.548, 0.130, 16.0),
            _ => panic!("the paper's scenario has exactly three data centers"),
        };
        // Spikes reproduce the short price excursions of Fig. 1 (DC #3
        // touches ≈ 0.75 there); they are what makes price-blind
        // scheduling expensive.
        Self::new(mean, amplitude, 24.0, phase)
            .with_noise(0.6, 0.030)
            .with_spikes(0.02, 1.45)
            .with_floor(0.25 * mean)
    }
}

impl PriceProcess for DiurnalPriceModel {
    fn sample(&mut self, slot: Slot, rng: &mut dyn RngCore) -> Tariff {
        let angle = 2.0 * core::f64::consts::PI * (slot as f64 - self.phase) / self.period;
        self.state = self.ar * self.state + self.sigma * self.gauss.sample(rng);
        let mut price = self.mean + self.amplitude * angle.sin() + self.state;
        if self.spike_probability > 0.0 && uniform(rng) < self.spike_probability {
            price *= self.spike_multiplier;
        }
        Tariff::flat(price.max(self.floor))
    }
}

/// Wraps any price process to produce *convex tiered* tariffs (the convex
/// usage-dependent cost extension of §III-A.2): the first `cheap_capacity`
/// units of energy cost the base price; everything above costs
/// `premium_factor ×` the base price.
#[derive(Debug)]
pub struct TieredPrice<P> {
    inner: P,
    cheap_capacity: f64,
    premium_factor: f64,
}

impl<P: PriceProcess> TieredPrice<P> {
    /// Wraps `inner` with a two-tier convex tariff.
    ///
    /// # Panics
    /// Panics if `cheap_capacity <= 0` or `premium_factor < 1`.
    pub fn new(inner: P, cheap_capacity: f64, premium_factor: f64) -> Self {
        assert!(cheap_capacity > 0.0, "cheap capacity must be positive");
        assert!(premium_factor >= 1.0, "premium factor must be >= 1");
        Self {
            inner,
            cheap_capacity,
            premium_factor,
        }
    }
}

impl<P: PriceProcess> PriceProcess for TieredPrice<P> {
    fn sample(&mut self, slot: Slot, rng: &mut dyn RngCore) -> Tariff {
        let base = self.inner.sample(slot, rng).base_rate();
        Tariff::convex(vec![
            (self.cheap_capacity, base),
            (f64::INFINITY, base * self.premium_factor),
        ])
        .expect("two increasing segments always form a valid convex tariff")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn constant_price() {
        let mut p = ConstantPrice(0.4);
        let mut r = rng();
        assert_eq!(p.sample(0, &mut r).flat_rate(), Some(0.4));
        assert_eq!(p.sample(99, &mut r).flat_rate(), Some(0.4));
    }

    #[test]
    fn replay_cycles() {
        let mut p = ReplayPrice::new(vec![0.1, 0.2, 0.3]);
        let mut r = rng();
        assert_eq!(p.sample(0, &mut r).base_rate(), 0.1);
        assert_eq!(p.sample(4, &mut r).base_rate(), 0.2);
        assert_eq!(p.values().len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn replay_rejects_empty() {
        let _ = ReplayPrice::new(vec![]);
    }

    #[test]
    fn diurnal_mean_matches_configuration() {
        let mut p = DiurnalPriceModel::table_one(0);
        let mut r = rng();
        let n = 24 * 400;
        let mean: f64 = (0..n).map(|t| p.sample(t, &mut r).base_rate()).sum::<f64>() / n as f64;
        // Spikes push the mean slightly above 0.392.
        assert!((mean - 0.392).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn diurnal_peaks_daytime() {
        let mut p = DiurnalPriceModel::new(0.4, 0.1, 24.0, 6.0);
        let mut r = rng();
        // Peak at phase + period/4 = hour 12, trough at hour 0.
        let peak = p.sample(12, &mut r).base_rate();
        let trough = p.sample(24, &mut r).base_rate();
        assert!((peak - 0.5).abs() < 1e-9);
        assert!((trough - 0.3).abs() < 1e-9);
    }

    #[test]
    fn floor_is_respected() {
        let mut p = DiurnalPriceModel::new(0.1, 0.0, 24.0, 0.0)
            .with_noise(0.0, 10.0)
            .with_floor(0.05);
        let mut r = rng();
        for t in 0..500 {
            assert!(p.sample(t, &mut r).base_rate() >= 0.05);
        }
    }

    #[test]
    fn spikes_raise_extremes() {
        let base = DiurnalPriceModel::new(0.4, 0.0, 24.0, 0.0);
        let mut spiky = base.clone().with_spikes(0.5, 2.0);
        let mut r = rng();
        let max = (0..200)
            .map(|t| spiky.sample(t, &mut r).base_rate())
            .fold(0.0f64, f64::max);
        assert!((max - 0.8).abs() < 1e-9, "max {max}");
    }

    #[test]
    fn table_one_ordering_of_means() {
        let mut r = rng();
        let mut means = [0.0; 3];
        for (i, mean) in means.iter_mut().enumerate() {
            let mut p = DiurnalPriceModel::table_one(i);
            *mean = (0..2000)
                .map(|t| p.sample(t, &mut r).base_rate())
                .sum::<f64>()
                / 2000.0;
        }
        assert!(means[0] < means[1] && means[1] < means[2], "{means:?}");
    }

    #[test]
    fn tiered_prices_are_convex() {
        let mut p = TieredPrice::new(ConstantPrice(0.4), 10.0, 2.0);
        let mut r = rng();
        let tariff = p.sample(0, &mut r);
        assert!(!tariff.is_flat());
        assert!((tariff.cost(15.0) - (10.0 * 0.4 + 5.0 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn ar_noise_is_mean_reverting() {
        let mut p = DiurnalPriceModel::new(0.5, 0.0, 24.0, 0.0).with_noise(0.8, 0.05);
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|t| p.sample(t, &mut r).base_rate()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
