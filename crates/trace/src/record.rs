//! Materialized traces: generate once, replay many times.
//!
//! Fair algorithm comparisons (e.g. GreFar vs "Always", Fig. 4) require
//! every scheduler to see the *same* realization of prices and arrivals.
//! These containers freeze one realization of the stochastic processes.

use crate::price::PriceProcess;
use crate::workload::ArrivalProcess;
use grefar_types::{Slot, Tariff};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A frozen electricity-price trace: one tariff per (data center, slot).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTrace {
    /// per_dc[i][t] = tariff of data center i during slot t.
    per_dc: Vec<Vec<Tariff>>,
}

impl PriceTrace {
    /// Samples `slots` slots from one process per data center, all driven by
    /// a single seed (fully reproducible).
    ///
    /// # Panics
    /// Panics if `models` is empty or `slots == 0`.
    pub fn generate(models: &mut [Box<dyn PriceProcess + Send>], slots: usize, seed: u64) -> Self {
        assert!(!models.is_empty(), "at least one price process is required");
        assert!(slots > 0, "trace must cover at least one slot");
        let mut rng = StdRng::seed_from_u64(seed);
        let per_dc = models
            .iter_mut()
            .map(|m| (0..slots).map(|t| m.sample(t as Slot, &mut rng)).collect())
            .collect();
        Self { per_dc }
    }

    /// Builds a trace directly from per-DC flat price rows.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rates(rates: Vec<Vec<f64>>) -> Self {
        assert!(!rates.is_empty(), "at least one data center is required");
        let len = rates[0].len();
        assert!(len > 0, "trace must cover at least one slot");
        assert!(
            rates.iter().all(|r| r.len() == len),
            "price rows must be rectangular"
        );
        Self {
            per_dc: rates
                .into_iter()
                .map(|row| row.into_iter().map(Tariff::flat).collect())
                .collect(),
        }
    }

    /// Number of data centers.
    pub fn num_data_centers(&self) -> usize {
        self.per_dc.len()
    }

    /// Number of slots recorded.
    pub fn num_slots(&self) -> usize {
        self.per_dc[0].len()
    }

    /// The tariff of data center `i` during slot `t` (cycling past the end).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn tariff(&self, i: usize, t: Slot) -> &Tariff {
        let row = &self.per_dc[i];
        &row[(t as usize) % row.len()]
    }

    /// The scalar base prices of data center `i` across the trace.
    pub fn rates(&self, i: usize) -> Vec<f64> {
        self.per_dc[i].iter().map(Tariff::base_rate).collect()
    }

    /// Time-average base price of data center `i` (Table I "Avg. Price").
    pub fn mean_rate(&self, i: usize) -> f64 {
        let row = &self.per_dc[i];
        row.iter().map(Tariff::base_rate).sum::<f64>() / row.len() as f64
    }

    /// Minimum and maximum base price of data center `i`.
    pub fn rate_range(&self, i: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in &self.per_dc[i] {
            lo = lo.min(t.base_rate());
            hi = hi.max(t.base_rate());
        }
        (lo, hi)
    }
}

/// A frozen arrival trace: `a_j(t)` for every slot and job type.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// rows[t][j] = a_j(t).
    rows: Vec<Vec<f64>>,
}

impl WorkloadTrace {
    /// Samples `slots` slots from the arrival process, driven by `seed`.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn generate(model: &mut dyn ArrivalProcess, slots: usize, seed: u64) -> Self {
        assert!(slots > 0, "trace must cover at least one slot");
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..slots)
            .map(|t| model.sample(t as Slot, &mut rng))
            .collect();
        Self { rows }
    }

    /// Builds a trace directly from rows (`rows[t][j] = a_j(t)`).
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "trace must cover at least one slot");
        let j = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == j),
            "arrival rows must be rectangular"
        );
        Self { rows }
    }

    /// Number of slots recorded.
    pub fn num_slots(&self) -> usize {
        self.rows.len()
    }

    /// Number of job types `J`.
    pub fn num_job_types(&self) -> usize {
        self.rows[0].len()
    }

    /// The arrival vector `a(t)` (cycling past the end).
    pub fn arrivals(&self, t: Slot) -> &[f64] {
        &self.rows[(t as usize) % self.rows.len()]
    }

    /// Time-average arrivals of job type `j`.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn mean_arrivals(&self, j: usize) -> f64 {
        assert!(j < self.num_job_types(), "job type {j} out of range");
        self.rows.iter().map(|r| r[j]).sum::<f64>() / self.rows.len() as f64
    }

    /// Work arriving per slot: entry `t` is `Σ_j a_j(t) · work[j]`.
    ///
    /// # Panics
    /// Panics if `work.len()` differs from the job-type count.
    pub fn work_per_slot(&self, work: &[f64]) -> Vec<f64> {
        assert_eq!(work.len(), self.num_job_types(), "work vector mismatch");
        self.rows
            .iter()
            .map(|r| r.iter().zip(work).map(|(a, d)| a * d).sum())
            .collect()
    }

    /// Work arriving per slot, grouped by account: entry `[t][m]` is the
    /// work from account `m` during slot `t`. `account_of[j]` maps job type
    /// to account, `num_accounts` is `M`. This is the bottom panel of Fig. 1.
    ///
    /// # Panics
    /// Panics on dimension mismatches or out-of-range account indices.
    pub fn work_by_account(
        &self,
        work: &[f64],
        account_of: &[usize],
        num_accounts: usize,
    ) -> Vec<Vec<f64>> {
        assert_eq!(work.len(), self.num_job_types(), "work vector mismatch");
        assert_eq!(
            account_of.len(),
            self.num_job_types(),
            "account map mismatch"
        );
        assert!(
            account_of.iter().all(|&m| m < num_accounts),
            "account index out of range"
        );
        self.rows
            .iter()
            .map(|r| {
                let mut per = vec![0.0; num_accounts];
                for ((a, d), &m) in r.iter().zip(work).zip(account_of) {
                    per[m] += a * d;
                }
                per
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price::ConstantPrice;
    use crate::workload::ConstantWorkload;

    #[test]
    fn price_trace_generation_and_stats() {
        let mut models: Vec<Box<dyn PriceProcess + Send>> =
            vec![Box::new(ConstantPrice(0.4)), Box::new(ConstantPrice(0.6))];
        let trace = PriceTrace::generate(&mut models, 10, 1);
        assert_eq!(trace.num_data_centers(), 2);
        assert_eq!(trace.num_slots(), 10);
        assert!((trace.mean_rate(0) - 0.4).abs() < 1e-12);
        assert_eq!(trace.rate_range(1), (0.6, 0.6));
        assert_eq!(trace.tariff(0, 25).base_rate(), 0.4); // cycles
        assert_eq!(trace.rates(1).len(), 10);
    }

    #[test]
    fn from_rates_builds_flat_tariffs() {
        let trace = PriceTrace::from_rates(vec![vec![0.1, 0.2]]);
        assert_eq!(trace.tariff(0, 1).flat_rate(), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn from_rates_rejects_ragged() {
        let _ = PriceTrace::from_rates(vec![vec![0.1], vec![0.2, 0.3]]);
    }

    #[test]
    fn workload_trace_stats() {
        let mut w = ConstantWorkload::new(vec![2.0, 3.0]);
        let trace = WorkloadTrace::generate(&mut w, 5, 1);
        assert_eq!(trace.num_slots(), 5);
        assert_eq!(trace.num_job_types(), 2);
        assert_eq!(trace.mean_arrivals(1), 3.0);
        assert_eq!(trace.arrivals(7), &[2.0, 3.0]); // cycles
        assert_eq!(trace.work_per_slot(&[1.0, 2.0]), vec![8.0; 5]);
    }

    #[test]
    fn work_by_account_groups_correctly() {
        let trace = WorkloadTrace::from_rows(vec![vec![1.0, 2.0, 3.0]]);
        let grouped = trace.work_by_account(&[1.0, 1.0, 2.0], &[0, 1, 0], 2);
        assert_eq!(grouped, vec![vec![1.0 + 6.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn work_by_account_checks_indices() {
        let trace = WorkloadTrace::from_rows(vec![vec![1.0]]);
        let _ = trace.work_by_account(&[1.0], &[5], 2);
    }
}
