//! Typed errors for trace import, with file positions.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a trace CSV could not be loaded. Every data-dependent variant
/// carries the 1-based line number (and, where it applies, the 1-based
/// column) of the offending cell, so a user fixing a multi-thousand-row
/// trace export is pointed at the exact row.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be opened or read.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file is completely empty — not even a header line.
    MissingHeader {
        /// The file involved.
        path: PathBuf,
    },
    /// The file has a header but no data rows.
    NoDataRows {
        /// The file involved.
        path: PathBuf,
    },
    /// A cell failed to parse as a number.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// The unparsable cell text.
        cell: String,
    },
    /// A row has the wrong number of cells (a truncated or ragged file).
    Ragged {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// Cells the header promises.
        expected: usize,
        /// Cells the row has.
        found: usize,
    },
    /// A cell parsed but its value is invalid for the trace being loaded
    /// (negative or non-finite price / arrival count).
    InvalidValue {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// What the cell is supposed to be ("price", "arrival count").
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl TraceError {
    /// The 1-based line number, for variants anchored to one.
    pub fn line(&self) -> Option<usize> {
        match self {
            TraceError::Parse { line, .. }
            | TraceError::Ragged { line, .. }
            | TraceError::InvalidValue { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            TraceError::MissingHeader { path } => {
                write!(f, "{}: empty file (no header line)", path.display())
            }
            TraceError::NoDataRows { path } => {
                write!(f, "{}: header only, no data rows", path.display())
            }
            TraceError::Parse {
                path,
                line,
                column,
                cell,
            } => write!(
                f,
                "{}:{line}: column {column}: {cell:?} is not a number",
                path.display()
            ),
            TraceError::Ragged {
                path,
                line,
                expected,
                found,
            } => write!(
                f,
                "{}:{line}: expected {expected} cells, found {found}",
                path.display()
            ),
            TraceError::InvalidValue {
                path,
                line,
                column,
                what,
                value,
            } => write!(
                f,
                "{}:{line}: column {column}: invalid {what} {value}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Back-compatibility with callers treating trace loading as I/O:
/// non-I/O variants map to [`io::ErrorKind::InvalidData`] keeping the full
/// positioned message.
impl From<TraceError> for io::Error {
    fn from(err: TraceError) -> Self {
        match err {
            TraceError::Io { source, .. } => source,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = TraceError::InvalidValue {
            path: PathBuf::from("p.csv"),
            line: 7,
            column: 2,
            what: "price",
            value: -0.5,
        };
        assert_eq!(e.line(), Some(7));
        let text = e.to_string();
        assert!(text.contains("p.csv:7"), "{text}");
        assert!(text.contains("column 2"), "{text}");
    }

    #[test]
    fn io_error_conversion_keeps_the_message() {
        let e = TraceError::Ragged {
            path: PathBuf::from("w.csv"),
            line: 3,
            expected: 4,
            found: 2,
        };
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("w.csv:3"));
    }
}
