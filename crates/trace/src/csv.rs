//! Minimal CSV import/export for traces and experiment outputs.
//!
//! Numeric-only, comma-separated, one header line. Deliberately tiny: the
//! workspace's pre-approved dependency list has no CSV crate, and traces
//! need nothing fancier.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a numeric table as CSV: one header line, then one line per row.
///
/// # Errors
/// Any I/O error from creating or writing the file.
///
/// # Panics
/// Panics if a row's length differs from the header length.
///
/// # Example
/// ```no_run
/// grefar_trace::csv::write_csv(
///     "out.csv",
///     &["slot", "price"],
///     [vec![0.0, 0.4], vec![1.0, 0.42]],
/// )?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_csv<P, R>(path: P, headers: &[&str], rows: R) -> io::Result<()>
where
    P: AsRef<Path>,
    R: IntoIterator<Item = Vec<f64>>,
{
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "{}", headers.join(","))?;
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row length {} does not match header count {}",
            row.len(),
            headers.len()
        );
        let line = row
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// Reads a numeric CSV written by [`write_csv`]: returns the header names
/// and the data rows.
///
/// # Errors
/// I/O errors, or [`io::ErrorKind::InvalidData`] if a cell fails to parse
/// as `f64` or a row has the wrong width.
pub fn read_csv<P: AsRef<Path>>(path: P) -> io::Result<(Vec<String>, Vec<Vec<f64>>)> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv file"))??;
    let headers: Vec<String> = header_line
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let mut rows = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line
            .split(',')
            .map(|cell| cell.trim().parse::<f64>())
            .collect();
        let row = row.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 2),
            )
        })?;
        if row.len() != headers.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} cells, found {}",
                    lineno + 2,
                    headers.len(),
                    row.len()
                ),
            ));
        }
        rows.push(row);
    }
    Ok((headers, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("grefar-csv-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let path = temp_path("roundtrip.csv");
        write_csv(&path, &["a", "b"], [vec![1.0, 2.5], vec![-3.0, 0.125]]).unwrap();
        let (headers, rows) = read_csv(&path).unwrap();
        assert_eq!(headers, vec!["a", "b"]);
        assert_eq!(rows, vec![vec![1.0, 2.5], vec![-3.0, 0.125]]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_cells() {
        let path = temp_path("bad.csv");
        std::fs::write(&path, "a,b\n1,notanumber\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_ragged_rows() {
        let path = temp_path("ragged.csv");
        std::fs::write(&path, "a,b\n1\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn skips_blank_lines() {
        let path = temp_path("blank.csv");
        std::fs::write(&path, "a\n1\n\n2\n").unwrap();
        let (_, rows) = read_csv(&path).unwrap();
        assert_eq!(rows, vec![vec![1.0], vec![2.0]]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "does not match header count")]
    fn write_checks_row_width() {
        let path = temp_path("width.csv");
        let _ = write_csv(&path, &["a", "b"], [vec![1.0]]);
    }
}
