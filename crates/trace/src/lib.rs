//! Electricity-price and batch-workload trace generation.
//!
//! The paper's evaluation (§VI-A) drives the simulator with (a) hourly
//! electricity prices "from \[FERC\] in locations with proximity to our
//! considered data centers" and (b) a proprietary job trace from Microsoft
//! Cosmos. Neither asset is public, so this crate generates synthetic
//! equivalents that reproduce the features the algorithm actually exploits
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`price`] — mean-reverting AR(1) noise around a diurnal profile, with
//!   optional price spikes, calibrated per location to Table I / Fig. 1;
//!   plus constant, replayed and convex-tier variants.
//! * [`workload`] — a Cosmos-like non-stationary arrival process: diurnal
//!   rate modulation, sporadic bursty submissions per organization, bounded
//!   arrivals `a_j(t) ≤ a_j^max` (eq. (1)); plus constant and replayed
//!   variants.
//! * [`record`] — materialized traces (generate once, replay many times so
//!   every scheduler sees the *same* randomness), with statistics helpers
//!   and CSV import/export via [`csv`].
//!
//! Everything is seeded and reproducible.
//!
//! # Example
//!
//! ```
//! use grefar_trace::{DiurnalPriceModel, PriceProcess};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut model = DiurnalPriceModel::table_one(0); // calibrated to DC #1
//! let mut rng = StdRng::seed_from_u64(7);
//! let tariff = model.sample(0, &mut rng);
//! assert!(tariff.base_rate() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod error;
pub mod import;
pub mod price;
pub mod record;
mod rng;
pub mod workload;

pub use error::TraceError;
pub use price::{ConstantPrice, DiurnalPriceModel, PriceProcess, ReplayPrice, TieredPrice};
pub use record::{PriceTrace, WorkloadTrace};
pub use rng::GaussianSampler;
pub use workload::{
    ArrivalProcess, ConstantWorkload, CosmosLikeWorkload, JobArrivalSpec, ReplayWorkload,
};

/// Convenience alias used by the facade crate's prelude.
pub use price::PriceProcess as PriceModel;
/// Convenience alias used by the facade crate's prelude.
pub use workload::ArrivalProcess as WorkloadModel;
