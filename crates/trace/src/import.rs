//! Loading and saving traces as CSV — the bridge to *real* market data.
//!
//! The paper drives its simulator with FERC/CAISO hourly prices and a
//! Microsoft Cosmos job trace. Users with access to such feeds can export
//! them as plain numeric CSV (one row per hour) and replay them here
//! instead of the synthetic processes; the schedulers cannot tell the
//! difference.
//!
//! Formats:
//!
//! * **price CSV** — header `dc1,dc2,…`, one price per data center per row;
//! * **workload CSV** — header `job1,job2,…`, one arrival count per job
//!   type per row.

use crate::csv::write_csv;
use crate::error::TraceError;
use crate::record::{PriceTrace, WorkloadTrace};
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Data rows, each tagged with its 1-based line number in the source file.
type PositionedRows = Vec<(usize, Vec<f64>)>;

/// Reads a numeric CSV with full position tracking: returns the headers
/// and data rows, where each row carries its 1-based line number in the
/// file (blank lines are skipped, so numbers need not be contiguous).
fn read_positioned_csv(path: &Path) -> Result<(Vec<String>, PositionedRows), TraceError> {
    let trace_io = |source| TraceError::Io {
        path: path.to_path_buf(),
        source,
    };
    let file = std::fs::File::open(path).map_err(trace_io)?;
    let mut lines = BufReader::new(file).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| TraceError::MissingHeader {
            path: path.to_path_buf(),
        })?
        .map_err(trace_io)?;
    let headers: Vec<String> = header_line
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let mut rows = Vec::new();
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2; // 1-based, after the header
        let line = line.map_err(trace_io)?;
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::with_capacity(headers.len());
        for (column, cell) in line.split(',').enumerate() {
            let value = cell.trim().parse::<f64>().map_err(|_| TraceError::Parse {
                path: path.to_path_buf(),
                line: lineno,
                column: column + 1,
                cell: cell.trim().to_string(),
            })?;
            row.push(value);
        }
        if row.len() != headers.len() {
            return Err(TraceError::Ragged {
                path: path.to_path_buf(),
                line: lineno,
                expected: headers.len(),
                found: row.len(),
            });
        }
        rows.push((lineno, row));
    }
    if rows.is_empty() {
        return Err(TraceError::NoDataRows {
            path: path.to_path_buf(),
        });
    }
    Ok((headers, rows))
}

/// Loads a price trace from CSV (columns = data centers, rows = slots).
///
/// # Errors
/// [`TraceError`], positioned at the offending line/column: I/O failures,
/// an empty or header-only file, ragged rows, unparsable cells, and
/// negative or non-finite prices.
pub fn load_price_trace<P: AsRef<Path>>(path: P) -> Result<PriceTrace, TraceError> {
    let path = path.as_ref();
    let (headers, rows) = read_positioned_csv(path)?;
    let dcs = headers.len();
    let mut per_dc = vec![Vec::with_capacity(rows.len()); dcs];
    for (lineno, row) in &rows {
        for (i, &price) in row.iter().enumerate() {
            if !price.is_finite() || price < 0.0 {
                return Err(TraceError::InvalidValue {
                    path: path.to_path_buf(),
                    line: *lineno,
                    column: i + 1,
                    what: "price",
                    value: price,
                });
            }
            per_dc[i].push(price);
        }
    }
    Ok(PriceTrace::from_rates(per_dc))
}

/// Saves a price trace to CSV (flat base rates only).
///
/// # Errors
/// Any I/O error from writing the file.
pub fn save_price_trace<P: AsRef<Path>>(path: P, trace: &PriceTrace) -> io::Result<()> {
    let dcs = trace.num_data_centers();
    let headers: Vec<String> = (1..=dcs).map(|i| format!("dc{i}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let columns: Vec<Vec<f64>> = (0..dcs).map(|i| trace.rates(i)).collect();
    let rows = (0..trace.num_slots()).map(|t| columns.iter().map(|c| c[t]).collect());
    write_csv(path, &header_refs, rows)
}

/// Loads a workload trace from CSV (columns = job types, rows = slots).
///
/// # Errors
/// [`TraceError`], positioned at the offending line/column: I/O failures,
/// an empty or header-only file, ragged rows, unparsable cells, and
/// negative or non-finite arrival counts.
pub fn load_workload_trace<P: AsRef<Path>>(path: P) -> Result<WorkloadTrace, TraceError> {
    let path = path.as_ref();
    let (_, rows) = read_positioned_csv(path)?;
    for (lineno, row) in &rows {
        for (column, &a) in row.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(TraceError::InvalidValue {
                    path: path.to_path_buf(),
                    line: *lineno,
                    column: column + 1,
                    what: "arrival count",
                    value: a,
                });
            }
        }
    }
    Ok(WorkloadTrace::from_rows(
        rows.into_iter().map(|(_, row)| row).collect(),
    ))
}

/// Saves a workload trace to CSV.
///
/// # Errors
/// Any I/O error from writing the file.
pub fn save_workload_trace<P: AsRef<Path>>(path: P, trace: &WorkloadTrace) -> io::Result<()> {
    let j = trace.num_job_types();
    let headers: Vec<String> = (1..=j).map(|idx| format!("job{idx}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows = (0..trace.num_slots()).map(|t| trace.arrivals(t as u64).to_vec());
    write_csv(path, &header_refs, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("grefar-import-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn price_trace_roundtrip() {
        let path = temp_path("prices.csv");
        let trace = PriceTrace::from_rates(vec![vec![0.4, 0.5], vec![0.3, 0.35]]);
        save_price_trace(&path, &trace).unwrap();
        let loaded = load_price_trace(&path).unwrap();
        assert_eq!(loaded.num_data_centers(), 2);
        assert_eq!(loaded.num_slots(), 2);
        assert_eq!(loaded.rates(0), vec![0.4, 0.5]);
        assert_eq!(loaded.rates(1), vec![0.3, 0.35]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn workload_trace_roundtrip() {
        let path = temp_path("work.csv");
        let trace = WorkloadTrace::from_rows(vec![vec![1.0, 2.0], vec![3.0, 0.0]]);
        save_workload_trace(&path, &trace).unwrap();
        let loaded = load_workload_trace(&path).unwrap();
        assert_eq!(loaded.num_job_types(), 2);
        assert_eq!(loaded.arrivals(1), &[3.0, 0.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_negative_prices_with_position() {
        let path = temp_path("bad-prices.csv");
        std::fs::write(&path, "dc1,dc2\n0.4,0.5\n0.3,-0.5\n").unwrap();
        match load_price_trace(&path).unwrap_err() {
            TraceError::InvalidValue {
                line,
                column,
                what,
                value,
                ..
            } => {
                assert_eq!((line, column), (3, 2));
                assert_eq!(what, "price");
                assert_eq!(value, -0.5);
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_nan_prices_with_position() {
        let path = temp_path("nan-prices.csv");
        // "NaN" parses as an f64, so this exercises the value check, not
        // the parser.
        std::fs::write(&path, "dc1\n0.4\nNaN\n").unwrap();
        match load_price_trace(&path).unwrap_err() {
            TraceError::InvalidValue { line, value, .. } => {
                assert_eq!(line, 3);
                assert!(value.is_nan());
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_rows_with_position() {
        let path = temp_path("truncated.csv");
        // The last row was cut off mid-write: 1 cell instead of 3.
        std::fs::write(&path, "dc1,dc2,dc3\n0.1,0.2,0.3\n0.1\n").unwrap();
        match load_price_trace(&path).unwrap_err() {
            TraceError::Ragged {
                line,
                expected,
                found,
                ..
            } => {
                assert_eq!(line, 3);
                assert_eq!((expected, found), (3, 1));
            }
            other => panic!("expected Ragged, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unparsable_cells_with_position() {
        let path = temp_path("garbage.csv");
        std::fs::write(&path, "job1\n3\ntwo\n").unwrap();
        match load_workload_trace(&path).unwrap_err() {
            TraceError::Parse { line, cell, .. } => {
                assert_eq!(line, 3);
                assert_eq!(cell, "two");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_negative_arrival_counts() {
        let path = temp_path("neg-work.csv");
        std::fs::write(&path, "job1,job2\n2,3\n1,-4\n").unwrap();
        match load_workload_trace(&path).unwrap_err() {
            TraceError::InvalidValue {
                line, column, what, ..
            } => {
                assert_eq!((line, column), (3, 2));
                assert_eq!(what, "arrival count");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_header_only_and_empty_files() {
        let path = temp_path("header-only.csv");
        std::fs::write(&path, "dc1\n").unwrap();
        assert!(matches!(
            load_price_trace(&path).unwrap_err(),
            TraceError::NoDataRows { .. }
        ));
        assert!(matches!(
            load_workload_trace(&path).unwrap_err(),
            TraceError::NoDataRows { .. }
        ));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            load_price_trace(&path).unwrap_err(),
            TraceError::MissingHeader { .. }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("does-not-exist.csv");
        assert!(matches!(
            load_price_trace(&path).unwrap_err(),
            TraceError::Io { .. }
        ));
    }

    #[test]
    fn loaded_traces_drive_replay() {
        use crate::price::PriceProcess;
        let path = temp_path("replay.csv");
        std::fs::write(&path, "dc1\n0.25\n0.75\n").unwrap();
        let trace = load_price_trace(&path).unwrap();
        let mut replay = crate::price::ReplayPrice::new(trace.rates(0));
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        assert_eq!(replay.sample(0, &mut rng).base_rate(), 0.25);
        assert_eq!(replay.sample(3, &mut rng).base_rate(), 0.75);
        std::fs::remove_file(path).ok();
    }
}
